//! The sweep engine must be a pure parallelization: worker count and
//! scheduling may change *who* runs a scenario, but never its result.
//!
//! Bit-identical waveforms across 1/2/8 workers hold because every
//! scenario gets its own instance of one shared compiled model — the
//! initial LU factors are computed once at compile time, so no run's
//! numerical path depends on which worker (or how many) executed it.

use std::sync::Arc;

use amsim::{CompiledModel, Simulation, SolverKind, StepControl};
use amsvp_core::circuits::{diode_clamp, rc_ladder, PiecewiseConstant};
use obs::{Obs, Report};
use sweep::{
    run_ams_sweep, run_ams_sweep_batched, AmsScenario, ScenarioBudget, ScenarioOutcome,
    SweepEngine, SweepOutcome,
};

const DIODE: &str = "module dio(in, out);
   input in; output out;
   electrical in, out, gnd;
   ground gnd;
   branch (in, out) r;
   branch (out, gnd) d;
   analog begin
     V(r) <+ 1k * I(r);
     I(d) <+ 1e-9 * (exp(V(d) / 0.1) - 1);
   end
 endmodule";

fn compile(source: &str, dt: f64) -> Arc<CompiledModel> {
    compile_with(source, dt, SolverKind::Auto)
}

fn compile_with(source: &str, dt: f64, kind: SolverKind) -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(source).unwrap();
    Simulation::new(&module)
        .dt(dt)
        .output("V(out)")
        .solver(kind)
        .compile()
        .unwrap()
}

/// A mixed bag of scenarios: random stimuli, several tolerance choices.
/// `hi` bounds the drive. The diode uses the soft-exponential variant
/// (VT = 0.1 V): plain Newton on the stiff 25.85 mV diode can exceed the
/// iteration cap on arbitrary level jumps, which is a solver property,
/// not a scheduling one.
fn scenarios(n: usize, steps: usize, hold: f64, hi: f64) -> Vec<AmsScenario> {
    (0..n)
        .map(|i| AmsScenario {
            name: format!("s{i}"),
            stim: Box::new(PiecewiseConstant::seeded(
                1 + i as u64,
                6,
                hold,
                0.0,
                if i % 2 == 0 { hi } else { 0.8 * hi },
            )),
            steps,
            newton_tol: match i % 3 {
                0 => None,
                1 => Some(1e-9),
                _ => Some(1e-6),
            },
            step_control: None,
        })
        .collect()
}

/// Merged counters with the scheduling-dependent `sweep.*` family
/// stripped: everything left must not depend on the worker count.
fn solver_counters(report: &Report) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("sweep."))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

type AmsOutcome = SweepOutcome<ScenarioOutcome<sweep::AmsRun, amsim::AmsError>>;

fn waveform_bits(outcome: &AmsOutcome) -> Vec<Vec<u64>> {
    outcome
        .results
        .iter()
        .map(|r| {
            let run = r.ok().expect("healthy scenarios complete");
            run.waveform.iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

#[test]
fn worker_count_never_changes_results() {
    for (label, source, dt, steps, hi) in [
        ("RC1", rc_ladder(1), 1e-6, 300, 1.0),
        ("diode", DIODE.to_string(), 1e-6, 200, 0.75),
    ] {
        let model = compile(&source, dt);
        let runs: Vec<AmsOutcome> = [1usize, 2, 8]
            .into_iter()
            .map(|w| {
                let engine = SweepEngine::new().workers(w);
                run_ams_sweep(
                    &engine,
                    &model,
                    &scenarios(12, steps, 40.0 * dt, hi),
                    &ScenarioBudget::unlimited(),
                )
                .unwrap()
            })
            .collect();

        let reference_waves = waveform_bits(&runs[0]);
        let reference_counters = solver_counters(&runs[0].report);
        for run in &runs[1..] {
            assert_eq!(
                waveform_bits(run),
                reference_waves,
                "{label}: waveforms must be bit-identical for any worker count"
            );
            assert_eq!(
                solver_counters(&run.report),
                reference_counters,
                "{label}: merged solver counters must not depend on scheduling"
            );
        }
        // The scenarios genuinely differ from each other (the sweep is
        // not comparing twelve copies of one run).
        assert_ne!(reference_waves[0], reference_waves[1]);
    }
}

#[test]
fn model_is_compiled_once_no_matter_the_sweep_size() {
    let source = rc_ladder(1);
    let builds_for = |n_scenarios: usize| {
        let obs = Obs::recording();
        let module = vams_parser::parse_module(&source).unwrap();
        let model = Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .collector(obs.clone())
            .compile()
            .unwrap();
        let engine = SweepEngine::new().workers(4);
        let out = run_ams_sweep(
            &engine,
            &model,
            &scenarios(n_scenarios, 50, 2e-5, 1.0),
            &ScenarioBudget::unlimited(),
        )
        .unwrap();
        let mut merged = obs.report().unwrap();
        merged.merge(&out.report);
        merged.counter("amsim.jacobian.builds")
    };
    let one = builds_for(1);
    let many = builds_for(64);
    assert_eq!(one, 1, "a single-scenario sweep compiles the model once");
    assert_eq!(
        many, one,
        "64 scenarios must not trigger any additional Jacobian builds"
    );
}

/// Determinism must survive the sparse backend: a 30-stage ladder (150
/// unknowns, above the sparse threshold) swept scalar and 8-lane-batched
/// at 1/2/8 workers produces one bit-exact answer. The sparse pivot
/// sequence and fill pattern are frozen per compiled model, so neither
/// lane packing nor scheduling can perturb the elimination order.
#[test]
fn sparse_backend_sweeps_are_deterministic() {
    let model = compile_with(&rc_ladder(30), 1e-3, SolverKind::Auto);
    assert_eq!(
        model.solver_kind(),
        SolverKind::Sparse,
        "RC30 must auto-select the sparse backend for this test to mean anything"
    );
    // 12 scenarios over 8-wide lanes: one full lane block plus an uneven
    // 4-lane remainder.
    let scen = scenarios(12, 100, 25e-3, 1.0);

    let reference = run_ams_sweep(
        &SweepEngine::new().workers(1),
        &model,
        &scen,
        &ScenarioBudget::unlimited(),
    )
    .unwrap();
    let reference_waves = waveform_bits(&reference);
    let reference_counters = solver_counters(&reference.report);
    assert_ne!(reference_waves[0], reference_waves[1]);

    for workers in [1usize, 2, 8] {
        let engine = SweepEngine::new().workers(workers);
        let scalar = run_ams_sweep(&engine, &model, &scen, &ScenarioBudget::unlimited()).unwrap();
        assert_eq!(
            waveform_bits(&scalar),
            reference_waves,
            "sparse scalar sweep at {workers} workers drifted"
        );
        assert_eq!(
            solver_counters(&scalar.report),
            reference_counters,
            "sparse solver counters at {workers} workers drifted"
        );

        let batched =
            run_ams_sweep_batched(&engine, &model, &scen, 8, &ScenarioBudget::unlimited()).unwrap();
        assert_eq!(
            waveform_bits(&batched),
            reference_waves,
            "8-lane sparse batched sweep at {workers} workers drifted from the scalar path"
        );
    }
}

/// The factorization backend is an implementation detail of the linear
/// solve: swapping it must not change how the simulation *works* — same
/// steps, same Newton iterations, same number of factorizations — only
/// how each factorization is carried out. The sparse run additionally
/// reports its own `linalg.sparse.*` counters; the dense run reports
/// none.
#[test]
fn factorization_backend_conserves_solver_counters() {
    let scen = scenarios(8, 100, 25e-3, 1.0);
    let run = |kind: SolverKind| {
        let model = compile_with(&rc_ladder(30), 1e-3, kind);
        assert_eq!(model.solver_kind(), kind);
        run_ams_sweep(
            &SweepEngine::new().workers(2),
            &model,
            &scen,
            &ScenarioBudget::unlimited(),
        )
        .unwrap()
    };
    let dense = run(SolverKind::Dense);
    let sparse = run(SolverKind::Sparse);

    let amsim_counters = |r: &Report| {
        r.counters
            .iter()
            .filter(|(k, _)| k.starts_with("amsim."))
            .map(|(k, v)| (k.clone(), *v))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        amsim_counters(&dense.report),
        amsim_counters(&sparse.report),
        "amsim.* counters must be conserved across factorization backends"
    );

    assert_eq!(
        dense.report.counter("linalg.sparse.refactor"),
        0,
        "the dense backend must not report sparse counters"
    );
    assert_eq!(
        sparse.report.counter("linalg.sparse.refactor"),
        sparse.report.counter("amsim.lu.factorizations"),
        "every run-time factorization on the sparse path is a pattern-reusing refactor"
    );
    assert_eq!(
        sparse.report.counter("linalg.sparse.analyze"),
        0,
        "instances inherit the frozen symbolic analysis; no run-time re-analysis on a \
         fixed-pattern ladder"
    );
}

/// The stiff diode clamp under adaptive stepping, forced onto the sparse
/// backend despite its small dimension: Newton retries, dt backoff, and
/// refactor-on-stall all route through `SparseLu::refactor`, and the
/// waveform stays within rounding of the dense reference.
#[test]
fn sparse_backend_handles_nonlinear_adaptive_stepping() {
    let src = diode_clamp();
    let dt = 1e-4;
    let steps = 60;
    let stim = PiecewiseConstant::seeded(3, 5, 6.0 * dt, 0.0, 0.8);
    let waveform = |kind: SolverKind| {
        let model = compile_with(&src, dt, kind);
        assert_eq!(model.solver_kind(), kind);
        let mut inst = model
            .instance_builder()
            .step_control(StepControl::new(1e-9).max_retries(20))
            .build()
            .unwrap();
        (0..steps)
            .map(|k| {
                inst.try_step(&[stim.value(k as f64 * dt)]).unwrap();
                inst.output(0)
            })
            .collect::<Vec<f64>>()
    };
    let dense = waveform(SolverKind::Dense);
    let sparse = waveform(SolverKind::Sparse);
    let err = {
        let sum_sq: f64 = dense
            .iter()
            .zip(&sparse)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (sum_sq / dense.len() as f64).sqrt()
    };
    assert!(
        err <= 1e-12,
        "diode clamp: dense vs sparse RMSE {err:.3e} exceeds 1e-12"
    );
}
