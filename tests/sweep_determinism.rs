//! The sweep engine must be a pure parallelization: worker count and
//! scheduling may change *who* runs a scenario, but never its result.
//!
//! Bit-identical waveforms across 1/2/8 workers hold because every
//! scenario gets its own instance of one shared compiled model — the
//! initial LU factors are computed once at compile time, so no run's
//! numerical path depends on which worker (or how many) executed it.

use std::sync::Arc;

use amsim::{CompiledModel, Simulation};
use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use obs::{Obs, Report};
use sweep::{
    run_ams_sweep, AmsScenario, ScenarioBudget, ScenarioOutcome, SweepEngine, SweepOutcome,
};

const DIODE: &str = "module dio(in, out);
   input in; output out;
   electrical in, out, gnd;
   ground gnd;
   branch (in, out) r;
   branch (out, gnd) d;
   analog begin
     V(r) <+ 1k * I(r);
     I(d) <+ 1e-9 * (exp(V(d) / 0.1) - 1);
   end
 endmodule";

fn compile(source: &str, dt: f64) -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(source).unwrap();
    Simulation::new(&module)
        .dt(dt)
        .output("V(out)")
        .compile()
        .unwrap()
}

/// A mixed bag of scenarios: random stimuli, several tolerance choices.
/// `hi` bounds the drive. The diode uses the soft-exponential variant
/// (VT = 0.1 V): plain Newton on the stiff 25.85 mV diode can exceed the
/// iteration cap on arbitrary level jumps, which is a solver property,
/// not a scheduling one.
fn scenarios(n: usize, steps: usize, hold: f64, hi: f64) -> Vec<AmsScenario> {
    (0..n)
        .map(|i| AmsScenario {
            name: format!("s{i}"),
            stim: Box::new(PiecewiseConstant::seeded(
                1 + i as u64,
                6,
                hold,
                0.0,
                if i % 2 == 0 { hi } else { 0.8 * hi },
            )),
            steps,
            newton_tol: match i % 3 {
                0 => None,
                1 => Some(1e-9),
                _ => Some(1e-6),
            },
            step_control: None,
        })
        .collect()
}

/// Merged counters with the scheduling-dependent `sweep.*` family
/// stripped: everything left must not depend on the worker count.
fn solver_counters(report: &Report) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("sweep."))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

type AmsOutcome = SweepOutcome<ScenarioOutcome<sweep::AmsRun, amsim::AmsError>>;

fn waveform_bits(outcome: &AmsOutcome) -> Vec<Vec<u64>> {
    outcome
        .results
        .iter()
        .map(|r| {
            let run = r.ok().expect("healthy scenarios complete");
            run.waveform.iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

#[test]
fn worker_count_never_changes_results() {
    for (label, source, dt, steps, hi) in [
        ("RC1", rc_ladder(1), 1e-6, 300, 1.0),
        ("diode", DIODE.to_string(), 1e-6, 200, 0.75),
    ] {
        let model = compile(&source, dt);
        let runs: Vec<AmsOutcome> = [1usize, 2, 8]
            .into_iter()
            .map(|w| {
                let engine = SweepEngine::new().workers(w);
                run_ams_sweep(
                    &engine,
                    &model,
                    &scenarios(12, steps, 40.0 * dt, hi),
                    &ScenarioBudget::unlimited(),
                )
                .unwrap()
            })
            .collect();

        let reference_waves = waveform_bits(&runs[0]);
        let reference_counters = solver_counters(&runs[0].report);
        for run in &runs[1..] {
            assert_eq!(
                waveform_bits(run),
                reference_waves,
                "{label}: waveforms must be bit-identical for any worker count"
            );
            assert_eq!(
                solver_counters(&run.report),
                reference_counters,
                "{label}: merged solver counters must not depend on scheduling"
            );
        }
        // The scenarios genuinely differ from each other (the sweep is
        // not comparing twelve copies of one run).
        assert_ne!(reference_waves[0], reference_waves[1]);
    }
}

#[test]
fn model_is_compiled_once_no_matter_the_sweep_size() {
    let source = rc_ladder(1);
    let builds_for = |n_scenarios: usize| {
        let obs = Obs::recording();
        let module = vams_parser::parse_module(&source).unwrap();
        let model = Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .collector(obs.clone())
            .compile()
            .unwrap();
        let engine = SweepEngine::new().workers(4);
        let out = run_ams_sweep(
            &engine,
            &model,
            &scenarios(n_scenarios, 50, 2e-5, 1.0),
            &ScenarioBudget::unlimited(),
        )
        .unwrap();
        let mut merged = obs.report().unwrap();
        merged.merge(&out.report);
        merged.counter("amsim.jacobian.builds")
    };
    let one = builds_for(1);
    let many = builds_for(64);
    assert_eq!(one, 1, "a single-scenario sweep compiles the model once");
    assert_eq!(
        many, one,
        "64 scenarios must not trigger any additional Jacobian builds"
    );
}
