//! Acceptance battery for fleet execution: a 100-device fleet — shared
//! compiled RC model, shared monitor firmware, per-device seeded stimuli
//! — must produce bit-identical results (every device's waveform by
//! `f64::to_bits`, UART byte stream, and instruction count, plus the
//! scheduling-independent merged counters) across worker counts
//! {1, 2, 8} × lane widths {1, 8}; and a one-device fleet must be
//! bit-identical to `run_fast_platform` on the scalar instance engine.

use std::sync::Arc;

use amsim::{CompiledModel, Simulation};
use amsvp_core::circuits::{rc_ladder, PiecewiseConstant, SquareWave};
use obs::Report;
use vp::{
    monitor_firmware, run_fast_platform, run_fleet, DeviceScenario, Firmware, FleetConfig,
    FleetOutcome, PlatformConfig,
};

const DT: f64 = 1e-6;
const STEPS: usize = 300;
const N: usize = 100;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const LANE_WIDTHS: [usize; 2] = [1, 8];

fn compile_rc1() -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
    Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .unwrap()
}

fn seeded(i: usize) -> PiecewiseConstant {
    PiecewiseConstant::seeded(i as u64 + 1, 5, 12.0 * DT, 0.0, 1.0)
}

/// 100 devices with mixed stimuli: mostly seeded piecewise-constant
/// waves, every seventh device on a square wave.
fn devices() -> Vec<DeviceScenario> {
    (0..N)
        .map(|i| {
            if i % 7 == 3 {
                DeviceScenario::new(
                    format!("dev{i}"),
                    SquareWave {
                        period: 100.0 * DT,
                        high: 1.0,
                        low: 0.0,
                    },
                    STEPS,
                )
            } else {
                DeviceScenario::new(format!("dev{i}"), seeded(i), STEPS)
            }
        })
        .collect()
}

fn config() -> FleetConfig {
    FleetConfig::new(Firmware::from(monitor_firmware()))
}

/// The comparable payload of one device: waveform bit patterns, UART
/// bytes, and the retired instruction count.
#[derive(PartialEq, Eq, Debug)]
struct DeviceBits {
    waveform: Vec<u64>,
    uart: Vec<u8>,
    instructions: u64,
}

fn device_bits(out: &FleetOutcome) -> Vec<DeviceBits> {
    out.devices
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let run = r.ok().unwrap_or_else(|| panic!("device {i} faulted"));
            DeviceBits {
                waveform: run.waveform.iter().map(|v| v.to_bits()).collect(),
                uart: run.report.uart.clone(),
                instructions: run.report.instructions,
            }
        })
        .collect()
}

/// Merged counters minus the run-shape families: `sweep.workers` /
/// `sweep.worker.*` depend on the worker count and `sweep.batch.blocks`
/// on the lane width; everything else — solver work, fleet tallies,
/// per-device platform counters — must be bit-identical across every
/// configuration.
fn stable_counters(report: &Report) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("sweep.worker") && k.as_str() != "sweep.batch.blocks")
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

#[test]
fn hundred_device_fleet_is_bit_identical_across_workers_and_lane_widths() {
    let model = compile_rc1();
    let reference = run_fleet(&model, &config().workers(1).lane_width(1), &devices()).unwrap();
    let reference_bits = device_bits(&reference);
    assert_eq!(reference_bits.len(), N);
    let reference_counters = stable_counters(&reference.report);

    for workers in WORKER_COUNTS {
        for lane_width in LANE_WIDTHS {
            let out = run_fleet(
                &model,
                &config().workers(workers).lane_width(lane_width),
                &devices(),
            )
            .unwrap();
            assert_eq!(
                device_bits(&out),
                reference_bits,
                "{workers} workers / lane width {lane_width}: device payloads drifted"
            );
            assert_eq!(
                stable_counters(&out.report),
                reference_counters,
                "{workers} workers / lane width {lane_width}: merged counters drifted"
            );

            // Device conservation: every slot accounted for, exactly once.
            let tally = out.tally();
            assert_eq!(tally.ok, N as u64);
            assert_eq!(tally.total(), N as u64);
            assert_eq!(out.report.counter("fleet.devices"), N as u64);
            assert_eq!(out.report.counter("fleet.devices.ok"), N as u64);
            assert_eq!(out.report.counter("sweep.scenarios"), N as u64);
            let per_worker: u64 = (0..workers)
                .map(|w| out.report.counter(&format!("sweep.worker.{w}.scenarios")))
                .sum();
            assert_eq!(per_worker, N as u64, "worker shard conservation");

            // Compile-once: the shared linear model is compiled by the
            // caller; no device rebuilds a Jacobian or refactors away
            // from the shared zero-state factors.
            assert_eq!(out.report.counter("amsim.jacobian.builds"), 0);
            assert_eq!(out.report.counter("amsim.lu.factorizations"), 0);
        }
    }
}

#[test]
fn one_device_fleet_matches_run_fast_platform_bit_for_bit() {
    let model = compile_rc1();
    let fleet_devices = vec![DeviceScenario::new("solo", seeded(0), STEPS)];
    let out = run_fleet(&model, &config().workers(1).lane_width(1), &fleet_devices).unwrap();
    let run = out.devices[0].ok().expect("healthy device");

    let platform_config = PlatformConfig::with_stimulus(monitor_firmware(), seeded(0));
    let fast = run_fast_platform(model.instance(), &platform_config, STEPS as f64 * DT);

    assert_eq!(run.report, fast, "fleet device vs fast platform report");
    assert_eq!(
        run.report.final_output.to_bits(),
        fast.final_output.to_bits(),
        "final analog sample must match bit for bit"
    );
    assert_eq!(
        run.waveform.last().map(|v| v.to_bits()),
        Some(fast.final_output.to_bits()),
        "fleet waveform tail vs fast platform output"
    );
    assert_eq!(run.waveform.len(), STEPS);
}

#[test]
fn fleet_shares_one_firmware_image_across_devices() {
    // Cloning the fleet's firmware handle per device bumps a refcount
    // rather than copying the image — the digital twin of the shared
    // Arc<CompiledModel>.
    let fw = Firmware::from(monitor_firmware());
    let config = FleetConfig::new(fw.clone());
    assert!(config.firmware.shares_image(&fw));
    let per_device = config.firmware.clone();
    assert!(per_device.shares_image(&fw));
}
