//! Fault isolation at fleet scale: a 64-device fleet with two injected
//! faults — device 13 boots a panicking stimulus, device 37 an analog
//! lane that diverges under fixed dt — must finish with 62 healthy
//! devices bit-identical to the no-fault run plus 2 typed fault records
//! in the right slots, for any worker count. A separate case injects
//! firmware with an illegal opcode into one device and expects the CPU
//! panic to retire only that device.

use std::sync::Arc;

use amsim::{AmsError, CompiledModel, Simulation, StepControl};
use amsvp_core::circuits::{diode_clamp, PiecewiseConstant, SquareWave, Stimulus};
use de::SimTime;
use obs::Report;
use sweep::ScenarioOutcome;
use vp::{monitor_firmware, run_fleet, DeviceScenario, Firmware, FleetConfig, FleetOutcome};

const DT: f64 = 1e-4;
const STEPS: usize = 30;
const N: usize = 64;
const PANIC_AT: usize = 13;
const DIVERGE_AT: usize = 37;
const LANE_WIDTH: usize = 8;

/// Stimulus that blows up mid-run: drives 0.8 V, then panics once the
/// requested time is reached — simulating a buggy user waveform.
struct PanicAt(f64);

impl Stimulus for PanicAt {
    fn value(&self, t: f64) -> f64 {
        assert!(t < self.0, "injected stimulus failure at t = {t}");
        0.8
    }
}

fn compile_clamp() -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(&diode_clamp()).unwrap();
    Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .unwrap()
}

fn healthy_device(i: usize) -> DeviceScenario {
    let mut d = DeviceScenario::new(
        format!("dev{i}"),
        PiecewiseConstant::seeded(i as u64 + 1, 5, 6.0 * DT, 0.0, 0.8),
        STEPS,
    );
    d.step_control = Some(StepControl::new(1e-9).max_retries(20));
    d
}

/// 64 devices; with `inject` the two fault vectors replace the healthy
/// configuration at slots 13 and 37 — every other slot is identical in
/// both variants, which is what makes the survivor comparison valid.
fn devices(inject: bool) -> Vec<DeviceScenario> {
    (0..N)
        .map(|i| {
            if inject && i == PANIC_AT {
                let mut d = DeviceScenario::new(format!("dev{i}-panic"), PanicAt(5.0 * DT), STEPS);
                d.step_control = Some(StepControl::new(1e-9).max_retries(20));
                d
            } else if inject && i == DIVERGE_AT {
                // Fixed-dt (no step control) against a full-scale edge:
                // deterministic NoConvergence on the first step.
                DeviceScenario::new(
                    format!("dev{i}-diverge"),
                    SquareWave {
                        period: 20.0 * DT,
                        high: 1.0,
                        low: 0.8,
                    },
                    STEPS,
                )
            } else {
                healthy_device(i)
            }
        })
        .collect()
}

fn config() -> FleetConfig {
    // Slow the CPU clock relative to the coarse analog dt so a device
    // retires ~100 instructions per analog step, not 5000.
    FleetConfig::new(Firmware::from(monitor_firmware()))
        .cpu_period(SimTime::from_seconds(1e-6))
        .lane_width(LANE_WIDTH)
}

/// Healthy devices' comparable payload, keyed by slot index.
fn survivor_bits(out: &FleetOutcome) -> Vec<(usize, Vec<u64>, Vec<u8>, u64)> {
    out.devices
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            r.ok().map(|run| {
                (
                    i,
                    run.waveform.iter().map(|v| v.to_bits()).collect(),
                    run.report.uart.clone(),
                    run.report.instructions,
                )
            })
        })
        .collect()
}

fn stable_counters(report: &Report) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("sweep.worker"))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

#[test]
fn two_faults_sixty_two_survivors_any_worker_count() {
    let model = compile_clamp();
    let baseline = run_fleet(&model, &config().workers(1), &devices(false)).unwrap();
    assert_eq!(baseline.tally().ok, N as u64, "baseline fleet is healthy");
    // Survivor payloads from the no-fault run, restricted to the slots
    // that stay healthy when the faults go in.
    let baseline_survivors: Vec<_> = survivor_bits(&baseline)
        .into_iter()
        .filter(|(i, ..)| *i != PANIC_AT && *i != DIVERGE_AT)
        .collect();

    let runs: Vec<FleetOutcome> = [1usize, 2, 8]
        .into_iter()
        .map(|w| run_fleet(&model, &config().workers(w), &devices(true)).unwrap())
        .collect();

    for (run, w) in runs.iter().zip([1usize, 2, 8]) {
        assert_eq!(run.devices.len(), N, "{w} workers: no lost devices");
        // Typed fault records land exactly where they were injected.
        match &run.devices[PANIC_AT] {
            ScenarioOutcome::Panicked(msg) => assert!(
                msg.contains("injected stimulus failure"),
                "{w} workers: panic payload lost: {msg}"
            ),
            other => panic!("{w} workers, device {PANIC_AT}: want Panicked, got {other:?}"),
        }
        match &run.devices[DIVERGE_AT] {
            ScenarioOutcome::Failed {
                error:
                    AmsError::NoConvergence {
                        residual_norm, dt, ..
                    },
                ..
            } => {
                assert!(residual_norm.is_finite() && *residual_norm > 0.0);
                assert_eq!(*dt, DT);
            }
            other => panic!("{w} workers, device {DIVERGE_AT}: want NoConvergence, got {other:?}"),
        }
        // Tallies and conservation: every device accounted for once.
        let tally = run.tally();
        assert_eq!(tally.ok, (N - 2) as u64);
        assert_eq!(tally.failed, 1);
        assert_eq!(tally.panicked, 1);
        assert_eq!(tally.total(), N as u64);
        assert_eq!(run.report.counter("fleet.devices"), N as u64);
        assert_eq!(run.report.counter("fleet.devices.ok"), (N - 2) as u64);
        assert_eq!(run.report.counter("fleet.devices.failed"), 1);
        assert_eq!(run.report.counter("fleet.devices.panicked"), 1);
        assert_eq!(run.report.counter("fleet.devices.budget"), 0);
        let per_worker: u64 = (0..w)
            .map(|i| run.report.counter(&format!("sweep.worker.{i}.scenarios")))
            .sum();
        assert_eq!(per_worker, N as u64, "{w} workers: device conservation");

        // The 62 healthy devices — including the faulted devices'
        // lane-block siblings — are bit-identical to the no-fault run.
        assert_eq!(
            survivor_bits(run),
            baseline_survivors,
            "{w} workers: survivors perturbed by the injected faults"
        );
    }

    // Scheduling-independent merged counters agree across worker counts,
    // fault tallies and the aggregated vp.device.* family included.
    let reference = stable_counters(&runs[0].report);
    for run in &runs[1..] {
        assert_eq!(stable_counters(&run.report), reference);
    }
}

#[test]
fn illegal_opcode_firmware_retires_only_its_device() {
    let model = compile_clamp();
    let mut devs: Vec<DeviceScenario> = (0..4).map(healthy_device).collect();
    // Device 2 boots its own image whose first word is a reserved
    // encoding (opcode 0x3f): the CPU panics on the first retired
    // instruction, and the fault must stay inside that device.
    devs[2].firmware = Some(Firmware::new(vec![0xFC00_0000]));
    let out = run_fleet(&model, &config().lane_width(4), &devs).unwrap();
    match &out.devices[2] {
        ScenarioOutcome::Panicked(msg) => assert!(
            msg.contains("unsupported opcode"),
            "panic payload lost: {msg}"
        ),
        other => panic!("device 2: want Panicked, got {other:?}"),
    }
    for (i, r) in out.devices.iter().enumerate() {
        if i != 2 {
            let run = r.ok().unwrap_or_else(|| panic!("device {i} faulted"));
            assert_eq!(run.waveform.len(), STEPS, "device {i} ran to completion");
        }
    }
    assert_eq!(out.tally().ok, 3);
    assert_eq!(out.tally().panicked, 1);
    // The shared image is untouched by the override.
    assert_eq!(out.report.counter("fleet.devices"), 4);
}
