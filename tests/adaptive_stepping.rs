//! Satellite coverage for the stiff path: the diode clamp provably fails
//! Newton at the nominal `dt = 1e-4` (the full-scale edge overshoots far
//! up the exponential), completes under adaptive retry/backoff, and the
//! adaptive waveform matches a fine-`dt` reference to ≤1e-5 NRMSE.
//!
//! Both runs discretize with backward Euler; the clamp's time constant
//! (R·C = 1 µs) is far below the nominal step, so at every nominal
//! boundary both trajectories sit at the settled operating point — the
//! comparison checks the adaptive machinery lands on the same solution,
//! not that two step sizes share truncation error.

use amsim::{AmsError, Simulation, StepControl};
use amsvp_core::circuits::{diode_clamp, SquareWave};
use obs::Obs;

const NOMINAL_DT: f64 = 1e-4;
/// Fine reference step: `NOMINAL_DT / 1000`, small enough that the
/// capacitor companion conductance keeps the first Newton iterate below
/// the clamp voltage even on full-scale edges.
const FINE_DT: f64 = 1e-7;
const REFINE: usize = 1000;
const STEPS: usize = 60;

fn stimulus() -> SquareWave {
    // Period = 40 nominal steps: edges at k = 20, 40 re-excite the clamp.
    // The low level keeps the diode conducting — with the clamp off, a
    // single nominal backward-Euler step legitimately leaves a
    // `1/(1 + dt/τ)` decay residue (~1%) that is truncation error, not a
    // solver fault, and would swamp the NRMSE budget.
    SquareWave {
        period: 40.0 * NOMINAL_DT,
        high: 1.0,
        low: 0.8,
    }
}

#[test]
fn fixed_dt_provably_fails_on_the_clamp() {
    let m = vams_parser::parse_module(&diode_clamp()).unwrap();
    let mut sim = Simulation::new(&m)
        .dt(NOMINAL_DT)
        .output("V(out)")
        .build()
        .unwrap();
    match sim.try_step(&[1.0]) {
        Err(AmsError::NoConvergence {
            time,
            iterations,
            residual_norm,
            dt,
        }) => {
            assert_eq!(time, 0.0);
            assert!(iterations > 0);
            assert!(
                residual_norm.is_finite() && residual_norm > 0.0,
                "best residual norm must be a usable diagnostic, got {residual_norm}"
            );
            assert_eq!(dt, NOMINAL_DT, "error must carry the failing step");
        }
        other => panic!("want NoConvergence at fixed dt, got {other:?}"),
    }
    // The failed step left the simulator at its initial state.
    assert_eq!(sim.time(), 0.0);
}

#[test]
fn adaptive_run_matches_fine_reference_within_nrmse() {
    let m = vams_parser::parse_module(&diode_clamp()).unwrap();
    let stim = stimulus();

    // Adaptive run at the failing nominal step.
    let obs = Obs::recording();
    let mut adaptive = Simulation::new(&m)
        .dt(NOMINAL_DT)
        .output("V(out)")
        .step_control(StepControl::new(1e-9).max_retries(20))
        .collector(obs.clone())
        .build()
        .unwrap();
    let mut wave = Vec::with_capacity(STEPS);
    for k in 0..STEPS {
        let u = stim.value(k as f64 * NOMINAL_DT);
        adaptive
            .try_step(&[u])
            .unwrap_or_else(|e| panic!("adaptive step {k} failed: {e}"));
        wave.push(adaptive.output(0));
    }
    assert!(
        (adaptive.time() - STEPS as f64 * NOMINAL_DT).abs() < 1e-12,
        "adaptive run must close every nominal interval exactly"
    );
    assert!(adaptive.steps_rejected() > 0, "clamp edges must reject");
    assert!(adaptive.step_retries() > 0);
    assert!(adaptive.dt_shrinks() > 0);
    assert!(
        adaptive.dt_grows() > 0,
        "dt must regrow toward nominal between edges"
    );
    drop(adaptive);
    let report = obs.report().unwrap();
    assert!(report.counter("amsim.step.rejected") > 0);
    assert!(report.counter("amsim.step.dt_shrink") > 0);
    assert!(report.counter("amsim.step.dt_grow") > 0);
    assert!(
        report.timers["amsim.dt"].count > STEPS as u64,
        "sub-stepping must accept more sub-steps than nominal steps"
    );

    // Fine-dt reference, inputs held per *nominal* index (zero-order
    // hold, exactly the drive the adaptive run saw).
    let mut reference = Simulation::new(&m)
        .dt(FINE_DT)
        .output("V(out)")
        .build()
        .unwrap();
    let mut ref_wave = Vec::with_capacity(STEPS);
    for kf in 0..STEPS * REFINE {
        let u = stim.value((kf / REFINE) as f64 * NOMINAL_DT);
        reference
            .try_step(&[u])
            .unwrap_or_else(|e| panic!("reference step {kf} failed: {e}"));
        if (kf + 1) % REFINE == 0 {
            ref_wave.push(reference.output(0));
        }
    }

    let scale = ref_wave.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    assert!(
        scale > 0.05,
        "reference waveform suspiciously small: {scale}"
    );
    let mse = wave
        .iter()
        .zip(&ref_wave)
        .map(|(a, r)| (a - r) * (a - r))
        .sum::<f64>()
        / STEPS as f64;
    let nrmse = mse.sqrt() / scale;
    assert!(
        nrmse <= 1e-5,
        "adaptive vs fine-dt reference NRMSE {nrmse:.3e} exceeds 1e-5"
    );
}
