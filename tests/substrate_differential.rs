//! Differential battery across simulation substrates.
//!
//! Every Table 1 circuit is driven with the *same* seeded-random
//! piecewise-constant stimulus on five substrates:
//!
//! * `sfm` — the abstracted [`amsvp_core::SignalFlowModel`] stepped in a
//!   plain loop (the exact semantics of the generated C++ class, which
//!   `tests/generated_cpp_compiles.rs` proves sample-identical);
//! * `de`  — the same model wrapped in a DE process inside the kernel;
//! * `tdf` — the same model inside a statically scheduled TDF cluster;
//! * `eln` — the hand-built electrical-linear-network MNA solver;
//! * `ams` — the conservative Verilog-AMS reference simulator.
//!
//! The first three share the model recurrence and must agree to rounding
//! (NRMSE ≤ 1e-12: only scheduling differs, not arithmetic). The last two
//! are independent implementations sharing only the backward-Euler
//! discretization, so they must agree to solver tolerance (NRMSE ≤ 1e-5).

use amsim::{Simulation, SolverKind};
use amsvp_core::circuits::{paper_benchmarks, rc_ladder, PiecewiseConstant};
use amsvp_core::Abstraction;
use de::{Kernel, SimTime};
use eln::{ElnNetwork, Method, NodeId, SourceId, Transient};
use vp::{new_bridge, opamp_eln, rc_ladder_eln, two_inputs_eln, CompiledAnalog};

const STEPS: usize = 2500;

/// Per-circuit time step: the paper's 50 ns for the fast circuits, and a
/// coarser step for RC20 (τ/6 per stage; every substrate shares it), whose
/// 20-stage delay line barely responds within 2500 × 50 ns.
fn dt_for(label: &str) -> f64 {
    if label == "RC20" {
        20e-6
    } else {
        50e-9
    }
}

/// Root-mean-square error normalized by the value range of both
/// waveforms (falls back to absolute RMSE for all-flat signals).
fn nrmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "waveform lengths differ");
    assert!(!a.is_empty());
    let mut sum_sq = 0.0;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (&x, &y) in a.iter().zip(b) {
        sum_sq += (x - y) * (x - y);
        lo = lo.min(x.min(y));
        hi = hi.max(x.max(y));
    }
    let rmse = (sum_sq / a.len() as f64).sqrt();
    let range = hi - lo;
    if range > 1e-12 {
        rmse / range
    } else {
        rmse
    }
}

fn stim_for(circuit_index: usize, dt: f64) -> PiecewiseConstant {
    // 160 steps per level: long enough for the stiff opamp to settle,
    // short enough to exercise many transitions per run.
    PiecewiseConstant::seeded(0xC0FFEE + circuit_index as u64, 12, 160.0 * dt, -0.5, 1.0)
}

fn sfm_waveform(source: &str, n_inputs: usize, dt: f64, stim: &PiecewiseConstant) -> Vec<f64> {
    let module = vams_parser::parse_module(source).unwrap();
    let mut model = Abstraction::new(&module)
        .dt(dt)
        .output("V(out)")
        .build()
        .unwrap();
    let mut buf = vec![0.0; n_inputs];
    (0..STEPS)
        .map(|k| {
            let u = stim.value(k as f64 * dt);
            buf.iter_mut().for_each(|v| *v = u);
            model.step(&buf);
            model.output(0)
        })
        .collect()
}

fn de_waveform(source: &str, dt: f64, stim: &PiecewiseConstant) -> Vec<f64> {
    let module = vams_parser::parse_module(source).unwrap();
    let model = Abstraction::new(&module)
        .dt(dt)
        .output("V(out)")
        .build()
        .unwrap();
    let bridge = new_bridge();
    let mut kernel = Kernel::new();
    kernel.register(CompiledAnalog::new(model, bridge.clone(), stim.clone()));
    (0..STEPS)
        .map(|k| {
            // Half a step past activation k: the event at k·dt has fired,
            // the one at (k+1)·dt has not.
            kernel
                .run_until(SimTime::from_seconds((k as f64 + 0.5) * dt))
                .unwrap();
            bridge.borrow().aout
        })
        .collect()
}

fn tdf_waveform(source: &str, dt: f64, stim: &PiecewiseConstant) -> Vec<f64> {
    let module = vams_parser::parse_module(source).unwrap();
    let model = Abstraction::new(&module)
        .dt(dt)
        .output("V(out)")
        .build()
        .unwrap();
    let bridge = new_bridge();
    let mut exec = vp::build_tdf_cluster(model, bridge.clone(), stim.clone()).unwrap();
    (0..STEPS)
        .map(|_| {
            exec.run_iteration();
            bridge.borrow().aout
        })
        .collect()
}

fn eln_waveform(
    net: &ElnNetwork,
    sources: &[SourceId],
    out: NodeId,
    dt: f64,
    stim: &PiecewiseConstant,
) -> Vec<f64> {
    let mut solver = Transient::new(net)
        .dt(dt)
        .method(Method::BackwardEuler)
        .build()
        .unwrap();
    (0..STEPS)
        .map(|k| {
            let u = stim.value(k as f64 * dt);
            for &s in sources {
                solver.set_source(s, u);
            }
            solver.try_step().unwrap();
            solver.node_voltage(out)
        })
        .collect()
}

fn ams_waveform(source: &str, n_inputs: usize, dt: f64, stim: &PiecewiseConstant) -> Vec<f64> {
    let module = vams_parser::parse_module(source).unwrap();
    let mut sim = Simulation::new(&module)
        .dt(dt)
        .output("V(out)")
        .build()
        .unwrap();
    let mut buf = vec![0.0; n_inputs];
    (0..STEPS)
        .map(|k| {
            let u = stim.value(k as f64 * dt);
            buf.iter_mut().for_each(|v| *v = u);
            sim.step(&buf);
            sim.output(0)
        })
        .collect()
}

#[test]
fn substrates_agree_pairwise_on_table1_circuits() {
    type Fixture = (ElnNetwork, Vec<SourceId>, NodeId);
    let eln_fixtures: Vec<(&str, Fixture)> = {
        let (n2, s2, o2) = two_inputs_eln();
        let (nr1, sr1, or1) = rc_ladder_eln(1);
        let (nr20, sr20, or20) = rc_ladder_eln(20);
        let (noa, soa, ooa) = opamp_eln();
        vec![
            ("2IN", (n2, s2, o2)),
            ("RC1", (nr1, vec![sr1], or1)),
            ("RC20", (nr20, vec![sr20], or20)),
            ("OA", (noa, vec![soa], ooa)),
        ]
    };

    for (i, ((label, source, n_inputs), (elabel, (net, srcs, out)))) in
        paper_benchmarks().into_iter().zip(eln_fixtures).enumerate()
    {
        assert_eq!(label, elabel, "fixture order must match Table 1");
        let dt = dt_for(label);
        let stim = stim_for(i, dt);

        let waves = [
            ("sfm", sfm_waveform(&source, n_inputs, dt, &stim)),
            ("de", de_waveform(&source, dt, &stim)),
            ("tdf", tdf_waveform(&source, dt, &stim)),
            ("eln", eln_waveform(&net, &srcs, out, dt, &stim)),
            ("ams", ams_waveform(&source, n_inputs, dt, &stim)),
        ];

        // The model-sharing substrates differ only in scheduling.
        const EXACT: f64 = 1e-12;
        // Independent solvers share only the discretization scheme.
        const CROSS: f64 = 1e-5;
        let family = |name: &str| matches!(name, "sfm" | "de" | "tdf");

        for (ai, (an, aw)) in waves.iter().enumerate() {
            for (bn, bw) in waves.iter().skip(ai + 1) {
                let tol = if family(an) && family(bn) {
                    EXACT
                } else {
                    CROSS
                };
                let err = nrmse(aw, bw);
                assert!(
                    err <= tol,
                    "{label}: {an} vs {bn} NRMSE {err:.3e} exceeds {tol:.0e}"
                );
            }
        }

        // Sanity: the random stimulus actually moved the circuit.
        let (lo, hi) = waves[0]
            .1
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        assert!(
            hi - lo > 0.1,
            "{label}: stimulus produced a nearly flat response ({lo}..{hi})"
        );
    }
}

/// Run the conservative AMS simulator with an explicit factorization
/// backend, returning the waveform and the backend the compile actually
/// selected.
fn ams_waveform_with(
    source: &str,
    n_inputs: usize,
    dt: f64,
    steps: usize,
    output: &str,
    stim: &PiecewiseConstant,
    kind: SolverKind,
) -> (Vec<f64>, SolverKind) {
    let module = vams_parser::parse_module(source).unwrap();
    let model = Simulation::new(&module)
        .dt(dt)
        .output(output)
        .solver(kind)
        .compile()
        .unwrap();
    let mut inst = model.instance();
    let mut buf = vec![0.0; n_inputs];
    let wave = (0..steps)
        .map(|k| {
            let u = stim.value(k as f64 * dt);
            buf.iter_mut().for_each(|v| *v = u);
            inst.try_step(&buf).unwrap();
            inst.output(0)
        })
        .collect();
    (wave, model.solver_kind())
}

/// The AMS simulator must produce the same waveform (to rounding) no
/// matter which factorization backend solves its Newton systems: dense
/// Gaussian elimination and the sparse pattern-reusing LU differ only in
/// elimination order, never in the system being solved.
#[test]
fn factorization_backends_agree_on_table1_circuits() {
    const EXACT: f64 = 1e-12;
    for (i, (label, source, n_inputs)) in paper_benchmarks().into_iter().enumerate() {
        let dt = dt_for(label);
        let stim = stim_for(i, dt);
        let (dense, dk) = ams_waveform_with(
            &source,
            n_inputs,
            dt,
            STEPS,
            "V(out)",
            &stim,
            SolverKind::Dense,
        );
        let (sparse, sk) = ams_waveform_with(
            &source,
            n_inputs,
            dt,
            STEPS,
            "V(out)",
            &stim,
            SolverKind::Sparse,
        );
        assert_eq!(dk, SolverKind::Dense, "{label}: forced Dense not honored");
        assert_eq!(sk, SolverKind::Sparse, "{label}: forced Sparse not honored");
        let err = nrmse(&dense, &sparse);
        assert!(
            err <= EXACT,
            "{label}: dense vs sparse backend NRMSE {err:.3e} exceeds {EXACT:.0e}"
        );
        if label == "2IN" {
            // The auto heuristic keeps small dense systems on the dense path.
            let (auto, ak) = ams_waveform_with(
                &source,
                n_inputs,
                dt,
                STEPS,
                "V(out)",
                &stim,
                SolverKind::Auto,
            );
            assert_eq!(ak, SolverKind::Dense, "2IN: Auto must resolve to Dense");
            assert_eq!(
                nrmse(&auto, &dense),
                0.0,
                "2IN: Auto and Dense must be the same path bit-for-bit"
            );
        }
    }
}

/// Dense-vs-sparse differential on the RC ladder family, where the
/// sparse backend is the one `SolverKind::Auto` actually selects. The
/// release build runs the paper-scale RC500 (2500 unknowns); the debug
/// build substitutes an 80-stage ladder because symbolic compilation of
/// RC500 — unrelated to the factorization backend — dominates unoptimized
/// runtime. `V(n3)` near the driven end responds well within the window,
/// making the comparison numerically meaningful.
#[test]
fn factorization_backends_agree_on_rc_ladder() {
    const EXACT: f64 = 1e-12;
    let stages = if cfg!(debug_assertions) { 80 } else { 500 };
    let steps = 400;
    let dt = 50e-6;
    let source = rc_ladder(stages);
    // Faster level switching than `stim_for`: 25 steps (1.25 ms) per level
    // so the 400-step window sees 16 levels and `V(n3)` swings visibly.
    let stim = PiecewiseConstant::seeded(0xC0FFEE + 7, 16, 25.0 * dt, -0.5, 1.0);
    let (dense, dk) = ams_waveform_with(&source, 1, dt, steps, "V(n3)", &stim, SolverKind::Dense);
    let (sparse, sk) = ams_waveform_with(&source, 1, dt, steps, "V(n3)", &stim, SolverKind::Auto);
    assert_eq!(
        dk,
        SolverKind::Dense,
        "RC{stages}: forced Dense not honored"
    );
    assert_eq!(
        sk,
        SolverKind::Sparse,
        "RC{stages}: Auto must resolve to Sparse above the size threshold"
    );
    let err = nrmse(&dense, &sparse);
    assert!(
        err <= EXACT,
        "RC{stages}: dense vs sparse backend NRMSE {err:.3e} exceeds {EXACT:.0e}"
    );
    // Sanity: the observed net actually moved.
    let (lo, hi) = dense
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    assert!(
        hi - lo > 0.1,
        "RC{stages}: V(n3) nearly flat ({lo}..{hi}); comparison is vacuous"
    );
}

/// The ELN solver's backend seam: forced sparse and dense factorization
/// of the same MNA system agree to rounding under both integration
/// methods, and the copy-on-toggle switch path refactors correctly on
/// the sparse backend too.
#[test]
fn eln_backends_agree_on_rc_ladder() {
    const EXACT: f64 = 1e-12;
    let (net, src, out) = rc_ladder_eln(20);
    let dt = dt_for("RC20");
    let stim = stim_for(2, dt);
    for method in [Method::BackwardEuler, Method::Trapezoidal] {
        let mut waves = Vec::new();
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            let compiled = Transient::new(&net)
                .dt(dt)
                .method(method)
                .solver(kind)
                .compile()
                .unwrap();
            assert_eq!(compiled.solver_kind(), kind, "forced backend not honored");
            let mut solver = compiled.instance();
            let wave: Vec<f64> = (0..STEPS)
                .map(|k| {
                    let u = stim.value(k as f64 * dt);
                    solver.set_source(src, u);
                    solver.try_step().unwrap();
                    solver.node_voltage(out)
                })
                .collect();
            waves.push(wave);
        }
        let err = nrmse(&waves[0], &waves[1]);
        assert!(
            err <= EXACT,
            "eln {method:?}: dense vs sparse NRMSE {err:.3e} exceeds {EXACT:.0e}"
        );
    }
}
