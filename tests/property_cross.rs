//! Property-based cross-validation: on *randomly generated* RC ladders
//! (random depth, per-stage element values and stimulus), the abstraction
//! pipeline and the independent conservative reference simulator must
//! produce the same trajectory.
//!
//! Uses a seeded xorshift generator instead of a property-testing crate,
//! so the cases are random-looking but fully reproducible offline.

use amsim::Simulation;
use amsvp_core::Abstraction;

/// Deterministic xorshift64* generator for reproducible "random" cases.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    /// Log-uniform in `[lo, hi)` — matches how component values spread.
    fn log_range(&mut self, lo: f64, hi: f64) -> f64 {
        (lo.ln() + (hi.ln() - lo.ln()) * self.unit()).exp()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// Builds a Verilog-AMS RC ladder with per-stage values.
fn ladder_source(stages: &[(f64, f64)]) -> String {
    use std::fmt::Write as _;
    let n = stages.len();
    let mut src = String::new();
    let _ = writeln!(src, "module lad(in, out);");
    let _ = writeln!(src, "  input in; output out;");
    let mut nets = vec!["in".to_string()];
    for i in 1..n {
        nets.push(format!("n{i}"));
    }
    nets.push("out".into());
    nets.push("gnd".into());
    let _ = writeln!(src, "  electrical {};", nets.join(", "));
    let _ = writeln!(src, "  ground gnd;");
    for i in 0..n {
        let _ = writeln!(src, "  branch ({}, {}) r{i};", nets[i], nets[i + 1]);
        let _ = writeln!(src, "  branch ({}, gnd) c{i};", nets[i + 1]);
    }
    let _ = writeln!(src, "  analog begin");
    for (i, (r, c)) in stages.iter().enumerate() {
        let _ = writeln!(src, "    V(r{i}) <+ {r} * I(r{i});");
        let _ = writeln!(src, "    I(c{i}) <+ {c} * ddt(V(c{i}));");
    }
    let _ = writeln!(src, "  end");
    let _ = writeln!(src, "endmodule");
    src
}

#[test]
fn random_ladders_cross_validate() {
    let mut rng = Rng::new(0x1acc_01ad);
    for _case in 0..16 {
        let depth = rng.usize_in(1, 5);
        let stages: Vec<(f64, f64)> = (0..depth)
            .map(|_| (rng.log_range(1e2, 1e5), rng.log_range(1e-9, 1e-6)))
            .collect();
        let drive: Vec<f64> = (0..8).map(|_| rng.range(-2.0, 2.0)).collect();

        let source = ladder_source(&stages);
        let module = vams_parser::parse_module(&source).unwrap();
        // Step at a hundredth of the fastest time constant to stay in a
        // well-conditioned regime for both solvers.
        let tau_min = stages
            .iter()
            .map(|&(r, c)| r * c)
            .fold(f64::INFINITY, f64::min);
        let dt = tau_min / 100.0;

        let mut reference = Simulation::new(&module)
            .dt(dt)
            .output("V(out)")
            .build()
            .unwrap();
        let mut abstracted = Abstraction::new(&module)
            .dt(dt)
            .output("V(out)")
            .build()
            .unwrap();

        let mut worst: f64 = 0.0;
        for &u in drive.iter().cycle().take(200) {
            // Piecewise-constant pseudo-random stimulus.
            reference.step(&[u]);
            abstracted.step(&[u]);
            worst = worst.max((reference.output(0) - abstracted.output(0)).abs());
        }
        assert!(
            worst < 1e-6,
            "random ladder deviated by {worst:.2e}:\n{source}"
        );
    }
}

#[test]
fn random_divider_chains_cross_validate() {
    let mut rng = Rng::new(0xd1f1_d3e5);
    for _case in 0..16 {
        let n = rng.usize_in(2, 6);
        let resistors: Vec<f64> = (0..n).map(|_| rng.log_range(1e2, 1e6)).collect();
        let u = rng.range(0.1, 10.0);

        // Pure resistive chain to ground: static, exactly solvable.
        use std::fmt::Write as _;
        let mut src = String::new();
        let _ = writeln!(src, "module div(in, out);");
        let _ = writeln!(src, "  input in; output out;");
        let mut nets = vec!["in".to_string()];
        for i in 1..n {
            nets.push(format!("n{i}"));
        }
        nets.push("out".into());
        nets.push("gnd".into());
        let _ = writeln!(src, "  electrical {};", nets.join(", "));
        let _ = writeln!(src, "  ground gnd;");
        for i in 0..n {
            let _ = writeln!(src, "  branch ({}, {}) r{i};", nets[i], nets[i + 1]);
        }
        // Load to ground so the divider is well-posed.
        let _ = writeln!(src, "  branch (out, gnd) rl;");
        let _ = writeln!(src, "  analog begin");
        for (i, r) in resistors.iter().enumerate() {
            let _ = writeln!(src, "    V(r{i}) <+ {r} * I(r{i});");
        }
        let _ = writeln!(src, "    V(rl) <+ 10k * I(rl);");
        let _ = writeln!(src, "  end");
        let _ = writeln!(src, "endmodule");

        let module = vams_parser::parse_module(&src).unwrap();
        let mut model = Abstraction::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        model.step(&[u]);
        // Analytic divider: out = u · Rl / (ΣR + Rl).
        let total: f64 = resistors.iter().sum::<f64>() + 10e3;
        let expect = u * 10e3 / total;
        assert!(
            (model.output(0) - expect).abs() < 1e-9 * expect.abs().max(1.0),
            "divider: {} vs {expect}",
            model.output(0)
        );
    }
}
