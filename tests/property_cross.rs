//! Property-based cross-validation: on *randomly generated* RC ladders
//! (random depth, per-stage element values and stimulus), the abstraction
//! pipeline and the independent conservative reference simulator must
//! produce the same trajectory.

use proptest::prelude::*;

use amsvp_core::Abstraction;
use amsim::AmsSimulator;

/// Builds a Verilog-AMS RC ladder with per-stage values.
fn ladder_source(stages: &[(f64, f64)]) -> String {
    use std::fmt::Write as _;
    let n = stages.len();
    let mut src = String::new();
    let _ = writeln!(src, "module lad(in, out);");
    let _ = writeln!(src, "  input in; output out;");
    let mut nets = vec!["in".to_string()];
    for i in 1..n {
        nets.push(format!("n{i}"));
    }
    nets.push("out".into());
    nets.push("gnd".into());
    let _ = writeln!(src, "  electrical {};", nets.join(", "));
    let _ = writeln!(src, "  ground gnd;");
    for i in 0..n {
        let _ = writeln!(src, "  branch ({}, {}) r{i};", nets[i], nets[i + 1]);
        let _ = writeln!(src, "  branch ({}, gnd) c{i};", nets[i + 1]);
    }
    let _ = writeln!(src, "  analog begin");
    for (i, (r, c)) in stages.iter().enumerate() {
        let _ = writeln!(src, "    V(r{i}) <+ {r} * I(r{i});");
        let _ = writeln!(src, "    I(c{i}) <+ {c} * ddt(V(c{i}));");
    }
    let _ = writeln!(src, "  end");
    let _ = writeln!(src, "endmodule");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_ladders_cross_validate(
        stages in proptest::collection::vec(
            ((1e2f64..1e5), (1e-9f64..1e-6)),
            1..5
        ),
        drive in proptest::collection::vec(-2.0f64..2.0, 8),
    ) {
        let source = ladder_source(&stages);
        let module = vams_parser::parse_module(&source).unwrap();
        // Step at a hundredth of the fastest time constant to stay in a
        // well-conditioned regime for both solvers.
        let tau_min = stages
            .iter()
            .map(|&(r, c)| r * c)
            .fold(f64::INFINITY, f64::min);
        let dt = tau_min / 100.0;

        let mut reference = AmsSimulator::new(&module, dt, &["V(out)"]).unwrap();
        let mut abstracted = Abstraction::new(&module)
            .dt(dt)
            .output("V(out)")
            .build()
            .unwrap();

        let mut worst: f64 = 0.0;
        for (k, &u) in drive.iter().cycle().take(200).enumerate() {
            // Piecewise-constant pseudo-random stimulus.
            let _ = k;
            reference.step(&[u]);
            abstracted.step(&[u]);
            worst = worst.max((reference.output(0) - abstracted.output(0)).abs());
        }
        prop_assert!(
            worst < 1e-6,
            "random ladder deviated by {worst:.2e}:\n{source}"
        );
    }

    #[test]
    fn random_divider_chains_cross_validate(
        resistors in proptest::collection::vec(1e2f64..1e6, 2..6),
        u in 0.1f64..10.0,
    ) {
        // Pure resistive chain to ground: static, exactly solvable.
        use std::fmt::Write as _;
        let n = resistors.len();
        let mut src = String::new();
        let _ = writeln!(src, "module div(in, out);");
        let _ = writeln!(src, "  input in; output out;");
        let mut nets = vec!["in".to_string()];
        for i in 1..n {
            nets.push(format!("n{i}"));
        }
        nets.push("out".into());
        nets.push("gnd".into());
        let _ = writeln!(src, "  electrical {};", nets.join(", "));
        let _ = writeln!(src, "  ground gnd;");
        for i in 0..n {
            let _ = writeln!(src, "  branch ({}, {}) r{i};", nets[i], nets[i + 1]);
        }
        // Load to ground so the divider is well-posed.
        let _ = writeln!(src, "  branch (out, gnd) rl;");
        let _ = writeln!(src, "  analog begin");
        for (i, r) in resistors.iter().enumerate() {
            let _ = writeln!(src, "    V(r{i}) <+ {r} * I(r{i});");
        }
        let _ = writeln!(src, "    V(rl) <+ 10k * I(rl);");
        let _ = writeln!(src, "  end");
        let _ = writeln!(src, "endmodule");

        let module = vams_parser::parse_module(&src).unwrap();
        let mut model = Abstraction::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        model.step(&[u]);
        // Analytic divider: out = u · Rl / (ΣR + Rl).
        let total: f64 = resistors.iter().sum::<f64>() + 10e3;
        let expect = u * 10e3 / total;
        prop_assert!(
            (model.output(0) - expect).abs() < 1e-9 * expect.abs().max(1.0),
            "divider: {} vs {expect}",
            model.output(0)
        );
    }
}
