//! Golden-waveform corpus: the six benchmark circuits (Table I's 2IN,
//! RC1, RC20, OA, the stiff diode clamp, plus a 30-stage RC ladder that
//! exercises the sparse factorization backend) simulated on the scalar
//! path with fixed seeds, serialized to `tests/golden/*.json`, and held
//! bit-exact forever after.
//!
//! Every execution mode must reproduce the checked-in bits *exactly* —
//! f64 bit patterns, not tolerances:
//!
//! * the scalar [`amsim::Instance`] loop (the path that produced the
//!   corpus),
//! * a lane-batched [`amsim::BatchInstance`] carrying all scenarios of a
//!   circuit at once,
//! * [`sweep::run_ams_sweep`] at 1, 2, and 8 workers,
//! * [`sweep::run_ams_sweep_batched`] at 1, 2, and 8 workers with a
//!   lane width that splits the scenarios unevenly.
//!
//! A drift in any of them — an optimization that reorders IEEE ops, a
//! scheduling leak into numerics, a solver change that silently alters
//! results — fails this test before it reaches users.
//!
//! # Regenerating the corpus
//!
//! When a waveform change is *intended* (e.g. a deliberate solver
//! change), bless new goldens from the scalar path and commit the diff:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test --test golden_waveforms
//! ```
//!
//! Review the diff of `tests/golden/*.json` like source: every changed
//! bit pattern is a changed simulation result.
//!
//! Waveforms are stored as 16-digit hex IEEE-754 bit patterns (not
//! decimal) so the corpus is exact by construction and diffs are
//! byte-stable across platforms and float-formatting changes.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use amsim::{CompiledModel, Simulation, StepControl};
use amsvp_core::circuits::{
    diode_clamp, opamp, rc_ladder, two_inputs, PiecewiseConstant, SquareWave,
};
use sweep::{run_ams_sweep, run_ams_sweep_tree, AmsScenario, ScenarioBudget, SweepEngine};
use vp::{monitor_firmware, run_fleet, DeviceScenario, Firmware, FleetConfig};

const STEPS: usize = 60;
const N_SCENARIOS: usize = 4;
/// Splits 4 scenarios as 3 + 1 — deliberately uneven.
const LANE_WIDTH: usize = 3;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

struct Circuit {
    label: &'static str,
    src: String,
    dt: f64,
    /// Upper bound of the seeded piecewise-constant drive.
    hi: f64,
    /// Adaptive stepping for the stiff clamp; fixed dt elsewhere.
    step_control: Option<StepControl>,
}

fn corpus() -> Vec<Circuit> {
    let clamp_ctrl = StepControl::new(1e-9).max_retries(20);
    vec![
        Circuit {
            label: "2IN",
            src: two_inputs(),
            dt: 1e-6,
            hi: 1.0,
            step_control: None,
        },
        Circuit {
            label: "RC1",
            src: rc_ladder(1),
            dt: 1e-6,
            hi: 1.0,
            step_control: None,
        },
        Circuit {
            label: "RC20",
            src: rc_ladder(20),
            dt: 1e-6,
            hi: 1.0,
            step_control: None,
        },
        Circuit {
            label: "OA",
            src: opamp(),
            dt: 1e-6,
            hi: 1.0,
            step_control: None,
        },
        Circuit {
            label: "CLAMP",
            src: diode_clamp(),
            dt: 1e-4,
            hi: 0.8,
            step_control: Some(clamp_ctrl),
        },
        // 30 stages → 150 unknowns, above the sparse threshold: under
        // `SolverKind::Auto` every execution mode below runs the sparse
        // backend, pinning its pivot sequence bit-exactly. dt is coarse
        // (1 ms vs the ~56 ms ladder diffusion time) so `V(out)` resolves
        // visibly within the 60-step window.
        Circuit {
            label: "RC30",
            src: rc_ladder(30),
            dt: 1e-3,
            hi: 1.0,
            step_control: None,
        },
    ]
}

fn compile(c: &Circuit) -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(&c.src).unwrap();
    Simulation::new(&module)
        .dt(c.dt)
        .output("V(out)")
        .compile()
        .unwrap()
}

fn stim(c: &Circuit, i: usize) -> PiecewiseConstant {
    PiecewiseConstant::seeded(i as u64 + 1, 5, 6.0 * c.dt, 0.0, c.hi)
}

fn scenarios(c: &Circuit) -> Vec<AmsScenario> {
    (0..N_SCENARIOS)
        .map(|i| AmsScenario {
            name: format!("{}/{i}", c.label),
            stim: Box::new(stim(c, i)),
            steps: STEPS,
            newton_tol: None,
            step_control: c.step_control,
        })
        .collect()
}

/// The scalar reference path: one [`amsim::Instance`] per scenario, the
/// stimulus broadcast to every model input — exactly the arithmetic
/// `run_ams_sweep` performs per scenario.
fn scalar_waveforms(c: &Circuit, model: &Arc<CompiledModel>) -> Vec<Vec<u64>> {
    let n_inputs = model.input_names().len();
    (0..N_SCENARIOS)
        .map(|i| {
            let mut builder = model.instance_builder();
            if let Some(ctrl) = c.step_control {
                builder = builder.step_control(ctrl);
            }
            let mut inst = builder.build().unwrap();
            let s = stim(c, i);
            let mut wave = Vec::with_capacity(STEPS);
            for k in 0..STEPS {
                let u = s.value(k as f64 * c.dt);
                inst.try_step(&vec![u; n_inputs]).unwrap();
                wave.push(inst.output(0).to_bits());
            }
            wave
        })
        .collect()
}

/// All scenarios of a circuit in one [`amsim::BatchInstance`]; lane `l`
/// carries scenario `l`.
fn batched_waveforms(c: &Circuit, model: &Arc<CompiledModel>) -> Vec<Vec<u64>> {
    let n_inputs = model.input_names().len();
    let mut builder = model.batch_instance_builder(N_SCENARIOS);
    if let Some(ctrl) = c.step_control {
        builder = builder.step_control(ctrl);
    }
    let mut batch = builder.build().unwrap();
    let stims: Vec<PiecewiseConstant> = (0..N_SCENARIOS).map(|i| stim(c, i)).collect();
    let mut waves: Vec<Vec<u64>> = (0..N_SCENARIOS)
        .map(|_| Vec::with_capacity(STEPS))
        .collect();
    let mut inputs = vec![0.0; n_inputs * N_SCENARIOS];
    for k in 0..STEPS {
        for (l, s) in stims.iter().enumerate() {
            let u = s.value(k as f64 * c.dt);
            for i in 0..n_inputs {
                inputs[i * N_SCENARIOS + l] = u;
            }
        }
        assert_eq!(batch.try_step(&inputs), N_SCENARIOS);
        for (l, wave) in waves.iter_mut().enumerate() {
            wave.push(batch.output(0, l).to_bits());
        }
    }
    waves
}

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{label}.json"))
}

fn render_golden(c: &Circuit, waves: &[Vec<u64>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"circuit\": \"{}\",", c.label);
    let _ = writeln!(s, "  \"dt_bits\": \"{:016x}\",", c.dt.to_bits());
    let _ = writeln!(s, "  \"steps\": {STEPS},");
    let _ = writeln!(s, "  \"scenarios\": [");
    for (i, wave) in waves.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"seed\": {},", i + 1);
        let _ = writeln!(s, "      \"waveform_bits\": [");
        for (k, bits) in wave.iter().enumerate() {
            let comma = if k + 1 < wave.len() { "," } else { "" };
            let _ = writeln!(s, "        \"{bits:016x}\"{comma}");
        }
        let _ = writeln!(s, "      ]");
        let comma = if i + 1 < waves.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Minimal parser for the corpus files this test writes: one waveform
/// per `"waveform_bits"` array, entries as 16-digit hex bit patterns.
fn parse_golden(text: &str) -> Vec<Vec<u64>> {
    fn hex_strings(chunk: &str) -> Vec<u64> {
        // Quoted 16-hex-digit tokens up to the closing bracket.
        let body = chunk.split(']').next().unwrap_or("");
        body.split('"')
            .filter(|t| t.len() == 16 && t.bytes().all(|b| b.is_ascii_hexdigit()))
            .map(|t| u64::from_str_radix(t, 16).unwrap())
            .collect()
    }
    text.split("\"waveform_bits\"")
        .skip(1)
        .map(hex_strings)
        .collect()
}

fn assert_waves_eq(label: &str, mode: &str, got: &[Vec<u64>], golden: &[Vec<u64>]) {
    assert_eq!(
        got.len(),
        golden.len(),
        "{label}/{mode}: scenario count drifted from the golden corpus"
    );
    for (i, (g, want)) in got.iter().zip(golden).enumerate() {
        assert_eq!(g.len(), want.len(), "{label}/{mode}: scenario {i} length");
        for (k, (a, b)) in g.iter().zip(want).enumerate() {
            assert_eq!(
                a, b,
                "{label}/{mode}: scenario {i} sample {k}: {a:#018x} vs golden {b:#018x} \
                 (bit-exact waveform reproduction violated; if this change is intended, \
                 regenerate with BLESS_GOLDEN=1 and commit the corpus diff)"
            );
        }
    }
}

#[test]
fn all_execution_modes_reproduce_the_golden_corpus() {
    let bless = std::env::var("BLESS_GOLDEN").is_ok_and(|v| v == "1");
    for c in corpus() {
        let model = compile(&c);
        let scalar = scalar_waveforms(&c, &model);

        let path = golden_path(c.label);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, render_golden(&c, &scalar)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: golden file missing ({e}); generate the corpus with \
                 BLESS_GOLDEN=1 cargo test --test golden_waveforms",
                path.display()
            )
        });
        let golden = parse_golden(&text);
        assert_eq!(golden.len(), N_SCENARIOS, "{}: corpus shape", c.label);

        assert_waves_eq(c.label, "scalar", &scalar, &golden);
        assert_waves_eq(c.label, "batch", &batched_waveforms(&c, &model), &golden);

        for workers in WORKER_COUNTS {
            let engine = SweepEngine::new().workers(workers);
            let swept = run_ams_sweep(
                &engine,
                &model,
                &scenarios(&c),
                &ScenarioBudget::unlimited(),
            )
            .unwrap();
            let waves: Vec<Vec<u64>> = swept
                .results
                .iter()
                .map(|r| {
                    r.ok()
                        .unwrap_or_else(|| panic!("{}: sweep scenario failed", c.label))
                        .waveform
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect();
            assert_waves_eq(c.label, &format!("sweep/w{workers}"), &waves, &golden);

            let batched = sweep::run_ams_sweep_batched(
                &engine,
                &model,
                &scenarios(&c),
                LANE_WIDTH,
                &ScenarioBudget::unlimited(),
            )
            .unwrap();
            let waves: Vec<Vec<u64>> = batched
                .results
                .iter()
                .map(|r| {
                    r.ok()
                        .unwrap_or_else(|| panic!("{}: batched sweep scenario failed", c.label))
                        .waveform
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect();
            assert_waves_eq(
                c.label,
                &format!("batched-sweep/w{workers}"),
                &waves,
                &golden,
            );
        }
    }
}

/// Each scenario as a two-segment chain (20-step root, 40-step child
/// sampling the same stimulus at absolute time): every path crosses one
/// snapshot/fork boundary, so this pins the checkpoint/fork machinery —
/// including the sparse RC30 path and the adaptive CLAMP — to the same
/// golden bits as the uninterrupted runs.
fn chain_split_tree(c: &Circuit) -> sweep::ScenarioTree {
    const SPLIT: usize = 20;
    sweep::ScenarioTree {
        roots: (0..N_SCENARIOS)
            .map(|i| sweep::TreeScenario {
                newton_tol: None,
                step_control: c.step_control,
                segment: sweep::ScenarioSegment {
                    name: format!("{}/{i}/prefix", c.label),
                    stim: Box::new(stim(c, i)),
                    steps: SPLIT,
                    children: vec![sweep::ScenarioSegment {
                        name: format!("{}/{i}", c.label),
                        stim: Box::new(stim(c, i)),
                        steps: STEPS - SPLIT,
                        children: Vec::new(),
                    }],
                },
            })
            .collect(),
    }
}

#[test]
fn tree_sweep_modes_reproduce_the_golden_corpus() {
    for c in corpus() {
        let model = compile(&c);
        let path = golden_path(c.label);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: golden file missing ({e})", path.display()));
        let golden = parse_golden(&text);

        for workers in WORKER_COUNTS {
            let engine = SweepEngine::new().workers(workers);
            // Depth-1 conversion: the tree API degenerating to the flat
            // batched sweep.
            let flat_tree = sweep::ScenarioTree::from(scenarios(&c));
            // Chain-split: every path forks once mid-transient.
            for (mode, tree) in [
                ("tree-flat", flat_tree),
                ("tree-split", chain_split_tree(&c)),
            ] {
                let swept = run_ams_sweep_tree(
                    &engine,
                    &model,
                    &tree,
                    LANE_WIDTH,
                    &ScenarioBudget::unlimited(),
                )
                .unwrap();
                let waves: Vec<Vec<u64>> = swept
                    .results
                    .iter()
                    .map(|r| {
                        r.ok()
                            .unwrap_or_else(|| panic!("{}: {mode} scenario failed", c.label))
                            .waveform
                            .iter()
                            .map(|v| v.to_bits())
                            .collect()
                    })
                    .collect();
                assert_waves_eq(c.label, &format!("{mode}/w{workers}"), &waves, &golden);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fleet fixture: FLEET8 — eight full virtual platforms (CPU + firmware +
// UART + analog bridge) over one shared RC model, mixed square-wave and
// seeded piecewise-constant stimuli. Pins the *whole device payload* —
// waveform bits AND the firmware's UART byte stream — across worker
// counts and lane widths, so a numerics drift anywhere in the
// CPU/analog interleaving shows up as a corpus mismatch.
// ---------------------------------------------------------------------

const FLEET_LABEL: &str = "FLEET8";
const FLEET_DEVICES: usize = 8;
const FLEET_STEPS: usize = 200;
const FLEET_DT: f64 = 2e-6;
/// Splits 8 devices as 3 + 3 + 2 — deliberately uneven.
const FLEET_LANE_WIDTHS: [usize; 3] = [1, 3, 8];

fn fleet_model() -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
    Simulation::new(&module)
        .dt(FLEET_DT)
        .output("V(out)")
        .compile()
        .unwrap()
}

/// Even devices ride a slow square wave that crosses the monitor
/// firmware's 0.5 V threshold (so the UART stream is non-trivial); odd
/// devices get seeded piecewise-constant waves.
fn fleet_devices() -> Vec<DeviceScenario> {
    (0..FLEET_DEVICES)
        .map(|d| {
            if d % 2 == 0 {
                DeviceScenario::new(
                    format!("dev{d}"),
                    SquareWave {
                        period: 200.0 * FLEET_DT,
                        high: 1.0,
                        low: 0.0,
                    },
                    FLEET_STEPS,
                )
            } else {
                DeviceScenario::new(
                    format!("dev{d}"),
                    PiecewiseConstant::seeded(d as u64 + 1, 5, 25.0 * FLEET_DT, 0.0, 1.0),
                    FLEET_STEPS,
                )
            }
        })
        .collect()
}

/// One fleet run's comparable payload: per device, the waveform bit
/// patterns and the UART bytes the firmware emitted.
fn fleet_payload(workers: usize, lane_width: usize) -> Vec<(Vec<u64>, Vec<u8>)> {
    let model = fleet_model();
    let config = FleetConfig::new(Firmware::from(monitor_firmware()))
        .workers(workers)
        .lane_width(lane_width);
    let out = run_fleet(&model, &config, &fleet_devices()).unwrap();
    out.devices
        .iter()
        .enumerate()
        .map(|(d, r)| {
            let run = r.ok().unwrap_or_else(|| panic!("fleet device {d} faulted"));
            (
                run.waveform.iter().map(|v| v.to_bits()).collect(),
                run.report.uart.clone(),
            )
        })
        .collect()
}

fn render_fleet_golden(payload: &[(Vec<u64>, Vec<u8>)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"circuit\": \"{FLEET_LABEL}\",");
    let _ = writeln!(s, "  \"dt_bits\": \"{:016x}\",", FLEET_DT.to_bits());
    let _ = writeln!(s, "  \"steps\": {FLEET_STEPS},");
    let _ = writeln!(s, "  \"devices\": [");
    for (d, (wave, uart)) in payload.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"device\": {d},");
        let uart_hex: String = uart.iter().map(|b| format!("{b:02x}")).collect();
        let _ = writeln!(s, "      \"uart_hex\": \"{uart_hex}\",");
        let _ = writeln!(s, "      \"waveform_bits\": [");
        for (k, bits) in wave.iter().enumerate() {
            let comma = if k + 1 < wave.len() { "," } else { "" };
            let _ = writeln!(s, "        \"{bits:016x}\"{comma}");
        }
        let _ = writeln!(s, "      ]");
        let comma = if d + 1 < payload.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Companion to [`parse_golden`] for the fleet fixture: one UART byte
/// string per `"uart_hex"` field (possibly empty).
fn parse_fleet_uart(text: &str) -> Vec<Vec<u8>> {
    text.split("\"uart_hex\"")
        .skip(1)
        .map(|chunk| {
            let hex = chunk.split('"').nth(1).unwrap_or("");
            hex.as_bytes()
                .chunks(2)
                .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
                .collect()
        })
        .collect()
}

#[test]
fn fleet_reproduces_the_golden_corpus() {
    let bless = std::env::var("BLESS_GOLDEN").is_ok_and(|v| v == "1");
    let reference = fleet_payload(1, 1);
    let path = golden_path(FLEET_LABEL);
    if bless {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, render_fleet_golden(&reference)).unwrap();
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: golden file missing ({e}); generate the corpus with \
             BLESS_GOLDEN=1 cargo test --test golden_waveforms",
            path.display()
        )
    });
    let golden_waves = parse_golden(&text);
    let golden_uart = parse_fleet_uart(&text);
    assert_eq!(golden_waves.len(), FLEET_DEVICES, "corpus shape");
    assert_eq!(golden_uart.len(), FLEET_DEVICES, "corpus shape");
    // At least one device must exercise the UART path, or the fixture
    // pins nothing about the digital half.
    assert!(
        golden_uart.iter().any(|u| !u.is_empty()),
        "FLEET8 fixture carries no UART traffic"
    );

    for workers in WORKER_COUNTS {
        for lane_width in FLEET_LANE_WIDTHS {
            let payload = fleet_payload(workers, lane_width);
            let mode = format!("fleet/w{workers}/l{lane_width}");
            let waves: Vec<Vec<u64>> = payload.iter().map(|(w, _)| w.clone()).collect();
            assert_waves_eq(FLEET_LABEL, &mode, &waves, &golden_waves);
            for (d, (_, uart)) in payload.iter().enumerate() {
                assert_eq!(
                    uart, &golden_uart[d],
                    "{FLEET_LABEL}/{mode}: device {d} UART stream drifted from the corpus"
                );
            }
        }
    }
}

#[test]
fn fleet_golden_file_is_well_formed() {
    let path = golden_path(FLEET_LABEL);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: unreadable golden file: {e}", path.display()));
    assert!(
        text.contains(&format!("\"circuit\": \"{FLEET_LABEL}\"")),
        "{}: circuit label missing",
        path.display()
    );
    assert!(
        text.contains(&format!("\"dt_bits\": \"{:016x}\"", FLEET_DT.to_bits())),
        "{}: dt drifted from the corpus",
        path.display()
    );
    let waves = parse_golden(&text);
    assert_eq!(waves.len(), FLEET_DEVICES, "{}", path.display());
    for (d, w) in waves.iter().enumerate() {
        assert_eq!(w.len(), FLEET_STEPS, "{}: device {d}", path.display());
    }
    assert_eq!(parse_fleet_uart(&text).len(), FLEET_DEVICES);
}

#[test]
fn golden_corpus_files_are_well_formed() {
    // Independent of simulation: the six files exist, parse, and carry
    // the expected shape — so corpus corruption is reported as such
    // rather than as a waveform mismatch.
    for c in corpus() {
        let path = golden_path(c.label);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: unreadable golden file: {e}", path.display()));
        assert!(
            text.contains(&format!("\"circuit\": \"{}\"", c.label)),
            "{}: circuit label missing",
            path.display()
        );
        assert!(
            text.contains(&format!("\"dt_bits\": \"{:016x}\"", c.dt.to_bits())),
            "{}: dt drifted from the corpus",
            path.display()
        );
        let waves = parse_golden(&text);
        assert_eq!(waves.len(), N_SCENARIOS, "{}", path.display());
        for (i, w) in waves.iter().enumerate() {
            assert_eq!(w.len(), STEPS, "{}: scenario {i}", path.display());
        }
    }
}
