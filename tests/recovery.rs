//! Acceptance tests for the recovery ladder (ISSUE 9): recovered
//! scenarios must be bit-identical to from-`t=0` reruns on the rung's
//! configuration at any worker count and lane width, the ladder must be
//! bit-transparent when disabled, and failed scenarios must carry their
//! attempt trail.
//!
//! The injection-driven tests are gated on the `fault-inject` feature
//! (`cargo test --features fault-inject --test recovery`); the
//! transparency and trail tests run in every configuration.

use std::sync::Arc;

use amsim::{AmsError, CompiledModel, RecoveryPolicy, Simulation, StepControl};
use amsvp_core::circuits::{diode_clamp, PiecewiseConstant, SquareWave};
use obs::Report;
use sweep::{
    run_ams_sweep_batched, run_ams_sweep_recovering, AmsScenario, Recovery, ScenarioBudget,
    ScenarioOutcome, SweepEngine, SweepOutcome,
};

const DT: f64 = 1e-4;
const STEPS: usize = 40;
const N: usize = 24;

fn compile_clamp(kind: amsim::SolverKind) -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(&diode_clamp()).unwrap();
    Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .solver(kind)
        .compile()
        .unwrap()
}

fn healthy_scenarios() -> Vec<AmsScenario> {
    (0..N)
        .map(|i| AmsScenario {
            name: format!("s{i}"),
            stim: Box::new(PiecewiseConstant::seeded(
                i as u64 + 1,
                5,
                6.0 * DT,
                0.0,
                0.8,
            )),
            steps: STEPS,
            newton_tol: None,
            step_control: Some(StepControl::new(1e-9).max_retries(20)),
        })
        .collect()
}

#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
type ClampOutcome = SweepOutcome<ScenarioOutcome<sweep::AmsRun, AmsError>>;

/// Merged counters minus the scheduling-dependent `sweep.worker*` family.
fn stable_counters(report: &Report) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("sweep.worker"))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Runs one scenario from `t = 0` on `model` with the policy-tightened
/// step control — the reference a `Recovered` waveform must match bit
/// for bit (the ladder's own replay path is deliberately not reused).
#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
fn reference_run(
    model: &Arc<CompiledModel>,
    sc: &AmsScenario,
    policy: &RecoveryPolicy,
) -> Vec<u64> {
    let mut builder = model.instance_builder();
    if let Some(tol) = sc.newton_tol {
        builder = builder.newton_tol(tol);
    }
    if let Some(ctrl) = sc.step_control {
        builder = builder.step_control(ctrl);
    }
    let mut inst = builder.build().unwrap();
    inst.set_step_control(policy.tightened(inst.step_control()))
        .unwrap();
    let n_inputs = model.input_names().len();
    let dt = model.dt();
    let mut wave = Vec::with_capacity(sc.steps);
    for k in 0..sc.steps {
        let u = sc.stim.value(k as f64 * dt);
        inst.try_step(&vec![u; n_inputs]).unwrap();
        wave.push(inst.output(0).to_bits());
    }
    wave
}

/// Disabled ladder (`max_recoveries: 0`) is bit-transparent: results and
/// merged counters are indistinguishable from the plain batched sweep.
#[test]
fn disabled_ladder_is_bit_transparent() {
    let model = compile_clamp(amsim::SolverKind::Auto);
    let engine = SweepEngine::new().workers(4);
    let budget = ScenarioBudget::unlimited();
    let plain = run_ams_sweep_batched(&engine, &model, &healthy_scenarios(), 8, &budget).unwrap();
    let recovery = Recovery {
        policy: RecoveryPolicy {
            max_recoveries: 0,
            ..RecoveryPolicy::default()
        },
        ..Recovery::default()
    };
    let laddered =
        run_ams_sweep_recovering(&engine, &model, &healthy_scenarios(), 8, &budget, &recovery)
            .unwrap();

    assert_eq!(plain.results.len(), laddered.results.len());
    for (a, b) in plain.results.iter().zip(&laddered.results) {
        let (a, b) = (a.ok().unwrap(), b.ok().unwrap());
        assert_eq!(a.newton_iters, b.newton_iters);
        let bits = |w: &[f64]| w.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.waveform), bits(&b.waveform));
    }
    assert_eq!(
        stable_counters(&plain.report),
        stable_counters(&laddered.report),
        "disabled ladder must not even change the counter key set"
    );
}

/// A persistently-failing scenario exhausts the ladder and reports the
/// full attempt trail: the original fault plus one entry per rung.
#[test]
fn exhausted_ladder_carries_attempt_trail() {
    let model = compile_clamp(amsim::SolverKind::Auto);
    let mut scenarios = healthy_scenarios();
    // Fixed-dt against a full-scale edge: deterministic NoConvergence
    // on every attempt, on either backend.
    scenarios[5] = AmsScenario {
        name: "diverge".into(),
        stim: Box::new(SquareWave {
            period: 20.0 * DT,
            high: 1.0,
            low: 0.8,
        }),
        steps: STEPS,
        newton_tol: None,
        step_control: None,
    };
    let recovery = Recovery {
        policy: RecoveryPolicy::default(),
        fallback: Some(compile_clamp(amsim::SolverKind::Dense)),
        ..Recovery::default()
    };
    let out = run_ams_sweep_recovering(
        &SweepEngine::new().workers(4),
        &model,
        &scenarios,
        8,
        &ScenarioBudget::unlimited(),
        &recovery,
    )
    .unwrap();

    match &out.results[5] {
        ScenarioOutcome::Failed { error, attempts } => {
            assert!(matches!(error, AmsError::NoConvergence { .. }));
            // Original fault (no rung), then the divergence happens at
            // step 0 — before any checkpoint — so the resume rung is
            // skipped: restart, then backend switch.
            let rungs: Vec<_> = attempts.iter().map(|a| a.rung).collect();
            assert_eq!(
                rungs,
                vec![
                    None,
                    Some(sweep::RecoveryRung::Restart),
                    Some(sweep::RecoveryRung::Backend)
                ]
            );
        }
        other => panic!("want Failed with trail, got {other:?}"),
    }
    assert_eq!(out.report.counter("recovery.attempts.restart"), 1);
    assert_eq!(out.report.counter("recovery.attempts.backend"), 1);
    assert_eq!(out.report.counter("recovery.gave_up"), 1);
    assert_eq!(out.report.counter("sweep.scenarios.failed"), 1);
    assert_eq!(out.report.counter("sweep.scenarios.ok"), (N - 1) as u64);
}

#[cfg(feature = "fault-inject")]
mod injected {
    use super::*;
    use sweep::{FaultKind, FaultPlan, FaultSpec, RecoveryRung};

    const RESUME_AT: [usize; 2] = [3, 7];
    const RESTART_AT: [usize; 2] = [11, 17];

    fn plan() -> FaultPlan {
        // Faults past the first checkpoint (cadence 8) recover on the
        // resume rung; faults before it skip to the restart rung.
        FaultPlan::new()
            .target(
                3,
                FaultSpec {
                    kind: FaultKind::ResidualNan,
                    step: 13,
                },
            )
            .target(
                7,
                FaultSpec {
                    kind: FaultKind::RefactorSingular,
                    step: 21,
                },
            )
            .target(
                11,
                FaultSpec {
                    kind: FaultKind::RefactorNonFinite,
                    step: 2,
                },
            )
            .target(
                17,
                FaultSpec {
                    kind: FaultKind::StimulusPanic,
                    step: 5,
                },
            )
    }

    /// Injected faults recover on the expected rung, the recovered
    /// waveforms are bit-identical to from-`t=0` reruns on the rung's
    /// configuration, and nothing depends on the schedule: workers
    /// 1/2/8 × lane widths 1/8 all produce identical bits and counters.
    #[test]
    fn recovered_bit_identical_to_rung_config_from_t0_any_schedule() {
        let model = compile_clamp(amsim::SolverKind::Auto);
        let policy = RecoveryPolicy {
            snapshot_every_n_steps: 8,
            ..RecoveryPolicy::default()
        };
        let recovery = Recovery {
            policy,
            fallback: Some(compile_clamp(amsim::SolverKind::Dense)),
            plan: plan(),
            ..Recovery::default()
        };

        let mut runs: Vec<(usize, usize, ClampOutcome)> = Vec::new();
        for w in [1usize, 2, 8] {
            for lanes in [1usize, 8] {
                let out = run_ams_sweep_recovering(
                    &SweepEngine::new().workers(w),
                    &model,
                    &healthy_scenarios(),
                    lanes,
                    &ScenarioBudget::unlimited(),
                    &recovery,
                )
                .unwrap();
                runs.push((w, lanes, out));
            }
        }

        for (w, lanes, out) in &runs {
            let tag = format!("{w} workers × {lanes} lanes");
            assert_eq!(out.results.len(), N, "{tag}: no lost indices");
            for (i, r) in out.results.iter().enumerate() {
                let scenarios = healthy_scenarios();
                match r {
                    ScenarioOutcome::Recovered {
                        result,
                        rung,
                        attempts,
                    } => {
                        let want_rung = if RESUME_AT.contains(&i) {
                            RecoveryRung::Resume
                        } else if RESTART_AT.contains(&i) {
                            RecoveryRung::Restart
                        } else {
                            panic!("{tag}: unexpected recovery at index {i}");
                        };
                        assert_eq!(*rung, want_rung, "{tag}: rung at index {i}");
                        assert_eq!(attempts.len(), 1, "{tag}: one-shot fault, one attempt");
                        let reference = reference_run(&model, &scenarios[i], &policy);
                        let got: Vec<u64> = result.waveform.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(
                            got, reference,
                            "{tag}: recovered waveform at index {i} diverges from \
                             the from-t=0 rerun on the rung's configuration"
                        );
                    }
                    ScenarioOutcome::Ok(_) => assert!(
                        !RESUME_AT.contains(&i) && !RESTART_AT.contains(&i),
                        "{tag}: index {i} should have faulted"
                    ),
                    other => panic!("{tag}: index {i}: unexpected outcome {other:?}"),
                }
            }
            assert_eq!(out.report.counter("sweep.scenarios.recovered"), 4);
            assert_eq!(out.report.counter("sweep.scenarios.ok"), (N - 4) as u64);
            assert_eq!(out.report.counter("recovery.recovered.resume"), 2);
            assert_eq!(out.report.counter("recovery.recovered.restart"), 2);
            assert_eq!(out.report.counter("recovery.gave_up"), 0);
            assert_eq!(out.report.counter("fault.injected.residual_nan"), 1);
            assert_eq!(out.report.counter("fault.injected.refactor_singular"), 1);
            assert_eq!(out.report.counter("fault.injected.refactor_non_finite"), 1);
            assert_eq!(out.report.counter("fault.injected.stimulus_panic"), 1);
        }

        // Scheduling independence: every (workers × lanes) combination
        // agrees bit-for-bit on results and on the merged counters.
        let (_, _, first) = &runs[0];
        let bits = |out: &ClampOutcome| -> Vec<Vec<u64>> {
            out.results
                .iter()
                .map(|r| {
                    r.result()
                        .map(|run| run.waveform.iter().map(|v| v.to_bits()).collect())
                        .unwrap_or_default()
                })
                .collect()
        };
        for (w, lanes, out) in &runs[1..] {
            assert_eq!(
                bits(first),
                bits(out),
                "{w} workers × {lanes} lanes: waveform bits diverge from 1×1"
            );
        }
        // Counters are scheduling-independent: any worker count merges
        // to the same totals. (Lane width legitimately changes the
        // blocking-structure counters — `sweep.batch.blocks`,
        // `amsim.batch.masked_iterations` — so compare per width.)
        for lane_width in [1usize, 8] {
            let same_width: Vec<_> = runs.iter().filter(|(_, l, _)| *l == lane_width).collect();
            let (_, _, base) = same_width[0];
            for (w, _, out) in &same_width[1..] {
                assert_eq!(
                    stable_counters(&base.report),
                    stable_counters(&out.report),
                    "{w} workers × {lane_width} lanes: merged counters schedule-dependent"
                );
            }
        }
    }
}
