//! Cross-validation between independent implementations: the abstracted
//! signal-flow models, the hand-built ELN solver, and the interpreted
//! conservative reference must agree on every paper circuit — they share
//! only the discretization scheme, not a single line of solver code.

use amsim::Simulation;
use amsvp_core::circuits::{paper_benchmarks, SquareWave};
use amsvp_core::Abstraction;
use eln::{Method, Transient};

const DT: f64 = 50e-9;
const STEPS: usize = 4000;

#[test]
fn abstracted_models_match_conservative_reference_step_by_step() {
    let stim = SquareWave {
        period: 100e-6,
        high: 1.0,
        low: -0.5,
    };
    for (label, source, inputs) in paper_benchmarks() {
        let module = vams_parser::parse_module(&source).unwrap();
        let mut reference = Simulation::new(&module)
            .dt(DT)
            .output("V(out)")
            .build()
            .unwrap();
        let mut abstracted = Abstraction::new(&module)
            .dt(DT)
            .output("V(out)")
            .build()
            .unwrap();
        let mut buf = vec![0.0; inputs];
        let mut worst: f64 = 0.0;
        for k in 0..STEPS {
            let u = stim.value(k as f64 * DT);
            buf.iter_mut().for_each(|v| *v = u);
            reference.step(&buf);
            abstracted.step(&buf);
            worst = worst.max((reference.output(0) - abstracted.output(0)).abs());
        }
        assert!(
            worst < 1e-6,
            "{label}: worst per-step deviation {worst:.2e} (same discretization \
             must agree to solver tolerance)"
        );
    }
}

#[test]
fn eln_models_match_conservative_reference() {
    let stim = SquareWave {
        period: 100e-6,
        high: 1.0,
        low: 0.0,
    };
    type Fixture = (eln::ElnNetwork, Vec<eln::SourceId>, eln::NodeId);
    let eln_fixtures: Vec<(&str, Fixture)> = {
        let (n2, s2, o2) = vp::two_inputs_eln();
        let (nr1, sr1, or1) = vp::rc_ladder_eln(1);
        let (nr20, sr20, or20) = vp::rc_ladder_eln(20);
        let (noa, soa, ooa) = vp::opamp_eln();
        vec![
            ("2IN", (n2, s2, o2)),
            ("RC1", (nr1, vec![sr1], or1)),
            ("RC20", (nr20, vec![sr20], or20)),
            ("OA", (noa, vec![soa], ooa)),
        ]
    };
    for ((label, source, inputs), (elabel, (net, sources, out))) in
        paper_benchmarks().into_iter().zip(eln_fixtures)
    {
        assert_eq!(label, elabel);
        let module = vams_parser::parse_module(&source).unwrap();
        let mut reference = Simulation::new(&module)
            .dt(DT)
            .output("V(out)")
            .build()
            .unwrap();
        let mut solver = Transient::new(&net)
            .dt(DT)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        let mut buf = vec![0.0; inputs];
        let mut worst: f64 = 0.0;
        for k in 0..STEPS {
            let u = stim.value(k as f64 * DT);
            buf.iter_mut().for_each(|v| *v = u);
            reference.step(&buf);
            for &s in &sources {
                solver.set_source(s, u);
            }
            solver.try_step().unwrap();
            worst = worst.max((reference.output(0) - solver.node_voltage(out)).abs());
        }
        assert!(
            worst < 1e-6,
            "{label}: ELN deviates from reference by {worst:.2e}"
        );
    }
}

#[test]
fn integrator_with_idt_cross_validates() {
    // Pure signal-flow integrator: V(out) = idt(V(in)). Both the
    // abstraction pipeline and the reference simulator discretize the
    // integral with backward Euler, so a constant input yields a ramp.
    let src = "module intg(i, o); input i; output o;
        electrical i, o, gnd; ground gnd;
        analog V(o, gnd) <+ idt(V(i, gnd));
        endmodule";
    let module = vams_parser::parse_module(src).unwrap();
    let dt = 1e-6;
    let mut reference = Simulation::new(&module)
        .dt(dt)
        .output("V(o)")
        .build()
        .unwrap();
    let mut abstracted = Abstraction::new(&module)
        .dt(dt)
        .output("V(o)")
        .build()
        .unwrap();
    for k in 1..=1000 {
        reference.step(&[2.0]);
        abstracted.step(&[2.0]);
        let expect = 2.0 * k as f64 * dt;
        assert!(
            (reference.output(0) - expect).abs() < 1e-12,
            "reference ramp at step {k}"
        );
        assert!(
            (abstracted.output(0) - expect).abs() < 1e-12,
            "abstracted ramp at step {k}: {} vs {expect}",
            abstracted.output(0)
        );
    }
}

#[test]
fn trapezoidal_eln_converges_to_same_steady_state() {
    // Different discretizations agree asymptotically even though their
    // transients differ.
    let (net, src, out) = vp::rc_ladder_eln(3);
    let mut be = Transient::new(&net)
        .dt(DT)
        .method(Method::BackwardEuler)
        .build()
        .unwrap();
    let mut tr = Transient::new(&net)
        .dt(DT)
        .method(Method::Trapezoidal)
        .build()
        .unwrap();
    for _ in 0..200_000 {
        be.set_source(src, 0.7);
        be.try_step().unwrap();
        tr.set_source(src, 0.7);
        tr.try_step().unwrap();
    }
    assert!((be.node_voltage(out) - 0.7).abs() < 1e-6);
    assert!((tr.node_voltage(out) - 0.7).abs() < 1e-6);
}

#[test]
fn generated_tdf_and_de_wrappers_share_numerics_with_bare_model() {
    // The MoC wrappers must not change a single bit of the trajectory.
    use amsvp_core::circuits::rc_ladder;
    use de::{Kernel, SimTime};
    use vp::{build_tdf_cluster, new_bridge, CompiledAnalog};

    let module = vams_parser::parse_module(&rc_ladder(2)).unwrap();
    let build = || {
        Abstraction::new(&module)
            .dt(DT)
            .output("V(out)")
            .build()
            .unwrap()
    };
    let stim = SquareWave {
        period: 20e-6,
        high: 1.0,
        low: 0.0,
    };
    let steps = 1000usize;

    let mut bare = build();
    for k in 0..steps {
        bare.step(&[stim.value(k as f64 * DT)]);
    }

    let bridge_tdf = new_bridge();
    let mut exec = build_tdf_cluster(build(), bridge_tdf.clone(), stim).unwrap();
    exec.run_until(SimTime::from_seconds(steps as f64 * DT));

    let bridge_de = new_bridge();
    let mut kernel = Kernel::new();
    kernel.register(CompiledAnalog::new(build(), bridge_de.clone(), stim));
    kernel
        .run_until(SimTime::from_seconds((steps as f64 - 0.5) * DT))
        .unwrap();

    let b = bare.output(0);
    let t = bridge_tdf.borrow().aout;
    let d = bridge_de.borrow().aout;
    assert_eq!(b, t, "TDF wrapper must be bit-identical");
    assert_eq!(b, d, "DE wrapper must be bit-identical");
}
