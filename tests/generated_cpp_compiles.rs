//! The strongest fidelity check available for Step 4: the generated C++
//! is written to disk, compiled with the system C++ compiler, executed,
//! and its output compared sample-by-sample against the in-process
//! compiled model. The two implementations share nothing but the emitted
//! source text.
//!
//! Skips (with a note) when no `g++` is installed.

use std::io::Write as _;
use std::process::Command;

use amsvp_core::circuits::{paper_benchmarks, SquareWave};
use amsvp_core::{codegen, Abstraction};

fn have_gpp() -> bool {
    Command::new("g++")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

#[test]
fn generated_cpp_matches_rust_model_exactly() {
    if !have_gpp() {
        eprintln!("skipping: no g++ on this system");
        return;
    }
    let dir = std::env::temp_dir().join(format!("amsvp_cpp_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dt = 50e-9;
    let steps = 2000usize;
    let stim = SquareWave {
        period: 20e-6,
        high: 1.0,
        low: -0.5,
    };

    for (label, source, n_inputs) in paper_benchmarks() {
        let module = vams_parser::parse_module(&source).unwrap();
        let mut model = Abstraction::new(&module)
            .dt(dt)
            .output("V(out)")
            .build()
            .unwrap();
        let class = format!("{}_model", model.name());
        let cpp = codegen::cpp::generate(&model);

        // Driver: step the generated class with the square wave and print
        // every sample at full precision.
        let args: Vec<String> = (0..n_inputs).map(|_| "u".to_string()).collect();
        let driver = format!(
            r#"#include <cstdio>
{cpp}
int main() {{
    {class} m;
    for (int k = 0; k < {steps}; ++k) {{
        double t = k * {dt:e};
        double phase = t / {period:e} - (long long)(t / {period:e});
        double u = phase < 0.5 ? {high:e} : {low:e};
        double y = m.step({call});
        std::printf("%.17e\n", y);
    }}
    return 0;
}}
"#,
            period = stim.period,
            high = stim.high,
            low = stim.low,
            call = args.join(", "),
        );
        let src_path = dir.join(format!("{label}.cpp"));
        let bin_path = dir.join(label);
        let mut f = std::fs::File::create(&src_path).unwrap();
        f.write_all(driver.as_bytes()).unwrap();
        drop(f);

        let compile = Command::new("g++")
            .arg("-O2")
            .arg("-o")
            .arg(&bin_path)
            .arg(&src_path)
            .output()
            .unwrap();
        assert!(
            compile.status.success(),
            "{label}: generated C++ failed to compile:\n{}\n--- source ---\n{driver}",
            String::from_utf8_lossy(&compile.stderr)
        );
        let run = Command::new(&bin_path).output().unwrap();
        assert!(run.status.success(), "{label}: compiled model crashed");
        let cpp_samples: Vec<f64> = String::from_utf8_lossy(&run.stdout)
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert_eq!(cpp_samples.len(), steps, "{label}: sample count");

        // The Rust model with the same stimulus.
        let mut buf = vec![0.0; n_inputs];
        let mut worst: f64 = 0.0;
        for (k, &cpp_y) in cpp_samples.iter().enumerate() {
            let u = stim.value(k as f64 * dt);
            buf.iter_mut().for_each(|v| *v = u);
            model.step(&buf);
            worst = worst.max((model.output(0) - cpp_y).abs());
        }
        // Identical statements, identical constants — only compiler
        // re-association can differ, which stays within a few ULPs.
        assert!(
            worst < 1e-12,
            "{label}: generated C++ deviates from the Rust model by {worst:.2e}"
        );
        eprintln!("{label}: g++-compiled model matches within {worst:.2e}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
