//! Stress the work-stealing queue: many more scenarios than workers, and
//! scenario bodies short enough that workers race on the index counter
//! constantly. Every scenario must run exactly once and land in its slot.

use std::sync::atomic::{AtomicU64, Ordering};

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use sweep::{run_ams_sweep, AmsScenario, ScenarioBudget, SweepEngine};

#[test]
fn two_hundred_scenarios_none_lost_none_duplicated() {
    const N: usize = 200;
    const WORKERS: usize = 8;
    let engine = SweepEngine::new().workers(WORKERS);
    let scenarios: Vec<u64> = (0..N as u64).collect();
    let executions = AtomicU64::new(0);

    let out = engine.run(&scenarios, |ctx, s| {
        executions.fetch_add(1, Ordering::Relaxed);
        ctx.obs.add("stress.runs", 1);
        // Tiny but non-trivial body: keep the queue contended.
        (0..*s % 7).sum::<u64>() + s * 3
    });

    assert_eq!(executions.load(Ordering::Relaxed), N as u64);
    assert_eq!(out.results.len(), N);
    for (i, r) in out.results.iter().enumerate() {
        let s = i as u64;
        assert_eq!(
            *r,
            (0..s % 7).sum::<u64>() + s * 3,
            "slot {i} holds the wrong result"
        );
    }
    assert_eq!(out.report.counter("stress.runs"), N as u64);
    assert_eq!(out.report.counter("sweep.scenarios"), N as u64);
    assert_eq!(out.report.counter("sweep.workers"), WORKERS as u64);
    let per_worker: u64 = (0..WORKERS)
        .map(|w| out.report.counter(&format!("sweep.worker.{w}.scenarios")))
        .sum();
    assert_eq!(
        per_worker, N as u64,
        "per-worker tallies must cover every scenario"
    );
    assert_eq!(out.report.timers["sweep.scenario"].count, N as u64);
}

#[test]
fn stress_with_real_instances_keeps_slots_straight() {
    // Same property through the amsim glue: 200 short transient runs over
    // one shared compiled model, each with a distinct seeded stimulus.
    let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
    let model = amsim::Simulation::new(&module)
        .dt(1e-6)
        .output("V(out)")
        .compile()
        .unwrap();
    let scenarios: Vec<AmsScenario> = (0..200)
        .map(|i| AmsScenario {
            name: format!("run-{i}"),
            stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 3, 5e-6, 0.0, 1.0)),
            steps: 12,
            newton_tol: None,
            step_control: None,
        })
        .collect();
    let out = run_ams_sweep(
        &SweepEngine::new().workers(8),
        &model,
        &scenarios,
        &ScenarioBudget::unlimited(),
    )
    .unwrap();
    assert_eq!(out.results.len(), 200);
    for (i, outcome) in out.results.iter().enumerate() {
        let run = outcome.ok().expect("healthy scenarios complete");
        assert_eq!(
            run.name,
            format!("run-{i}"),
            "slot {i} holds another scenario's run"
        );
        assert_eq!(run.waveform.len(), 12);
    }
    // 200 instances each stepped 12 times, all visible in the merged report.
    assert_eq!(out.report.counter("amsim.steps"), 200 * 12);
}
