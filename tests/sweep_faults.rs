//! Acceptance scenario for fault-isolated sweeps: 64 diode-clamp
//! scenarios with two injected faults — one panicking stimulus, one
//! non-convergent fixed-dt run — must yield 62 bit-identical waveforms
//! plus 2 typed fault records for any worker count, with no lost or
//! duplicated indices.

use std::sync::Arc;

use amsim::{AmsError, CompiledModel, Simulation, StepControl};
use amsvp_core::circuits::{diode_clamp, PiecewiseConstant, SquareWave, Stimulus};
use obs::Report;
use sweep::{
    run_ams_sweep, run_ams_sweep_batched, AmsScenario, ScenarioBudget, ScenarioOutcome,
    SweepEngine, SweepOutcome,
};

const DT: f64 = 1e-4;
const STEPS: usize = 30;
const N: usize = 64;
const PANIC_AT: usize = 13;
const DIVERGE_AT: usize = 37;

/// Stimulus that blows up mid-run: drives 0.8 V, then panics once the
/// requested time is reached — simulating a buggy user waveform.
struct PanicAt(f64);

impl Stimulus for PanicAt {
    fn value(&self, t: f64) -> f64 {
        assert!(t < self.0, "injected stimulus failure at t = {t}");
        0.8
    }
}

fn compile_clamp() -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(&diode_clamp()).unwrap();
    Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .unwrap()
}

fn scenarios() -> Vec<AmsScenario> {
    (0..N)
        .map(|i| {
            if i == PANIC_AT {
                AmsScenario {
                    name: format!("s{i}-panic"),
                    stim: Box::new(PanicAt(5.0 * DT)),
                    steps: STEPS,
                    newton_tol: None,
                    step_control: Some(StepControl::new(1e-9).max_retries(20)),
                }
            } else if i == DIVERGE_AT {
                // Fixed-dt (no step control) against a full-scale edge:
                // deterministic NoConvergence on the first step.
                AmsScenario {
                    name: format!("s{i}-diverge"),
                    stim: Box::new(SquareWave {
                        period: 20.0 * DT,
                        high: 1.0,
                        low: 0.8,
                    }),
                    steps: STEPS,
                    newton_tol: None,
                    step_control: None,
                }
            } else {
                AmsScenario {
                    name: format!("s{i}"),
                    stim: Box::new(PiecewiseConstant::seeded(
                        i as u64 + 1,
                        5,
                        6.0 * DT,
                        0.0,
                        0.8,
                    )),
                    steps: STEPS,
                    newton_tol: None,
                    step_control: Some(StepControl::new(1e-9).max_retries(20)),
                }
            }
        })
        .collect()
}

type ClampOutcome = SweepOutcome<ScenarioOutcome<sweep::AmsRun, AmsError>>;

fn ok_waveform_bits(out: &ClampOutcome) -> Vec<(usize, Vec<u64>)> {
    out.results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| {
            r.ok()
                .map(|run| (i, run.waveform.iter().map(|v| v.to_bits()).collect()))
        })
        .collect()
}

/// Merged counters with the scheduling-dependent `sweep.workers` /
/// `sweep.worker.*` family stripped; everything else — solver work and
/// the fault tallies included — must not depend on worker count.
fn stable_counters(report: &Report) -> Vec<(String, u64)> {
    report
        .counters
        .iter()
        .filter(|(k, _)| !k.starts_with("sweep.worker"))
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

#[test]
fn two_faults_sixty_two_survivors_any_worker_count() {
    let model = compile_clamp();
    let runs: Vec<ClampOutcome> = [1usize, 2, 8]
        .into_iter()
        .map(|w| {
            run_ams_sweep(
                &SweepEngine::new().workers(w),
                &model,
                &scenarios(),
                &ScenarioBudget::unlimited(),
            )
            .unwrap()
        })
        .collect();

    for (run, w) in runs.iter().zip([1usize, 2, 8]) {
        assert_eq!(run.results.len(), N, "{w} workers: no lost indices");
        // Fault records land exactly where they were injected.
        match &run.results[PANIC_AT] {
            ScenarioOutcome::Panicked(msg) => assert!(
                msg.contains("injected stimulus failure"),
                "{w} workers: panic payload lost: {msg}"
            ),
            other => panic!("{w} workers, slot {PANIC_AT}: want Panicked, got {other:?}"),
        }
        match &run.results[DIVERGE_AT] {
            ScenarioOutcome::Failed {
                error:
                    AmsError::NoConvergence {
                        residual_norm, dt, ..
                    },
                ..
            } => {
                assert!(residual_norm.is_finite() && *residual_norm > 0.0);
                assert_eq!(*dt, DT);
            }
            other => panic!("{w} workers, slot {DIVERGE_AT}: want NoConvergence, got {other:?}"),
        }
        // Fault tallies and per-worker conservation.
        assert_eq!(run.report.counter("sweep.scenarios.ok"), (N - 2) as u64);
        assert_eq!(run.report.counter("sweep.scenarios.failed"), 1);
        assert_eq!(run.report.counter("sweep.scenarios.panicked"), 1);
        assert_eq!(run.report.counter("sweep.scenarios.budget"), 0);
        assert_eq!(run.report.counter("sweep.scenarios"), N as u64);
        let per_worker: u64 = (0..w)
            .map(|i| run.report.counter(&format!("sweep.worker.{i}.scenarios")))
            .sum();
        assert_eq!(per_worker, N as u64, "{w} workers: scenario conservation");
        // Healthy adaptive scenarios exercised the backoff machinery.
        assert!(run.report.counter("amsim.step.rejected") > 0);
        assert!(run.report.counter("amsim.step.dt_grow") > 0);
    }

    // Survivors are bit-identical across worker counts, and so are the
    // scheduling-independent merged counters (the faulted scenarios'
    // partial counters flush on instance drop, deterministically).
    let reference_waves = ok_waveform_bits(&runs[0]);
    assert_eq!(reference_waves.len(), N - 2);
    let reference_counters = stable_counters(&runs[0].report);
    for run in &runs[1..] {
        assert_eq!(ok_waveform_bits(run), reference_waves);
        assert_eq!(stable_counters(&run.report), reference_counters);
    }
}

#[test]
fn batched_two_faults_retire_only_their_lanes_any_worker_count() {
    // Same 64 scenarios through the lane-batched engine: the panicking
    // stimulus and the divergent fixed-dt run each land *inside* an
    // 8-lane block, and must retire only their own lane — the blocks'
    // sibling lanes finish with waveforms bit-identical to the scalar
    // sweep, for any worker count.
    const LANE_WIDTH: usize = 8;
    let model = compile_clamp();
    let scalar = run_ams_sweep(
        &SweepEngine::new().workers(1),
        &model,
        &scenarios(),
        &ScenarioBudget::unlimited(),
    )
    .unwrap();
    let runs: Vec<ClampOutcome> = [1usize, 2, 8]
        .into_iter()
        .map(|w| {
            run_ams_sweep_batched(
                &SweepEngine::new().workers(w),
                &model,
                &scenarios(),
                LANE_WIDTH,
                &ScenarioBudget::unlimited(),
            )
            .unwrap()
        })
        .collect();

    for (run, w) in runs.iter().zip([1usize, 2, 8]) {
        assert_eq!(run.results.len(), N, "{w} workers: no lost indices");
        match &run.results[PANIC_AT] {
            ScenarioOutcome::Panicked(msg) => assert!(
                msg.contains("injected stimulus failure"),
                "{w} workers: panic payload lost: {msg}"
            ),
            other => panic!("{w} workers, slot {PANIC_AT}: want Panicked, got {other:?}"),
        }
        match &run.results[DIVERGE_AT] {
            ScenarioOutcome::Failed {
                error:
                    AmsError::NoConvergence {
                        residual_norm, dt, ..
                    },
                ..
            } => {
                assert!(residual_norm.is_finite() && *residual_norm > 0.0);
                assert_eq!(*dt, DT);
            }
            other => panic!("{w} workers, slot {DIVERGE_AT}: want NoConvergence, got {other:?}"),
        }
        // Fault tallies, batch bookkeeping, per-worker conservation.
        assert_eq!(run.report.counter("sweep.scenarios.ok"), (N - 2) as u64);
        assert_eq!(run.report.counter("sweep.scenarios.failed"), 1);
        assert_eq!(run.report.counter("sweep.scenarios.panicked"), 1);
        assert_eq!(run.report.counter("sweep.scenarios.budget"), 0);
        assert_eq!(run.report.counter("sweep.scenarios"), N as u64);
        assert_eq!(run.report.counter("amsim.batch.lanes"), N as u64);
        assert_eq!(
            run.report.counter("sweep.batch.blocks"),
            (N / LANE_WIDTH) as u64
        );
        let per_worker: u64 = (0..w)
            .map(|i| run.report.counter(&format!("sweep.worker.{i}.scenarios")))
            .sum();
        assert_eq!(per_worker, N as u64, "{w} workers: scenario conservation");
    }

    // Survivors are bit-identical to the scalar sweep: the faulted
    // lanes' masked siblings never see a perturbed operand.
    let scalar_waves = ok_waveform_bits(&scalar);
    assert_eq!(scalar_waves.len(), N - 2);
    for run in &runs {
        assert_eq!(ok_waveform_bits(run), scalar_waves);
    }

    // Solver-work conservation against the scalar sweep: every counter
    // the scalar path emits (amsim.* families, fault tallies) must come
    // out of the batched sweep unchanged — batching only regroups the
    // arithmetic. The batched report additionally carries the
    // amsim.batch.* / sweep.batch.* families, checked above.
    let scalar_counters = stable_counters(&scalar.report);
    for (run, w) in runs.iter().zip([1usize, 2, 8]) {
        for (key, want) in &scalar_counters {
            assert_eq!(
                run.report.counter(key),
                *want,
                "{w} workers: counter `{key}` not conserved under batching"
            );
        }
    }
    // And the batched runs agree with each other exactly, batch
    // counters included — scheduling must not leak into any tally.
    let reference = stable_counters(&runs[0].report);
    for run in &runs[1..] {
        assert_eq!(stable_counters(&run.report), reference);
    }
}

/// Stimulus that stalls on every sample — a stand-in for an expensive
/// user waveform (table lookup, co-simulation round-trip, …).
struct SlowStim(std::time::Duration);

impl Stimulus for SlowStim {
    fn value(&self, _t: f64) -> f64 {
        std::thread::sleep(self.0);
        0.8
    }
}

#[test]
fn batched_wall_budget_charges_each_lane_from_its_own_account() {
    // Lane 0 carries a stimulus that sleeps ~25 ms per sample; lane 1 is
    // an ordinary fast scenario sharing the same 2-lane block. With a
    // wall cap well below lane 0's sampling cost, only lane 0 may trip:
    // wall time is charged per lane (sampling to the sampling lane,
    // solve time split over the lanes that entered the solve), so a slow
    // sibling must not consume a healthy lane's budget. Under the old
    // shared-block clock both lanes would have come back as Budget.
    let model = compile_clamp();
    let ctrl = Some(StepControl::new(1e-9).max_retries(20));
    let scenarios = vec![
        AmsScenario {
            name: "slow".into(),
            stim: Box::new(SlowStim(std::time::Duration::from_millis(25))),
            steps: STEPS,
            newton_tol: None,
            step_control: ctrl,
        },
        AmsScenario {
            name: "fast".into(),
            stim: Box::new(PiecewiseConstant::seeded(1, 5, 6.0 * DT, 0.0, 0.8)),
            steps: STEPS,
            newton_tol: None,
            step_control: ctrl,
        },
    ];
    let out = run_ams_sweep_batched(
        &SweepEngine::new().workers(1),
        &model,
        &scenarios,
        2,
        &ScenarioBudget::unlimited().max_wall(0.15),
    )
    .unwrap();
    match &out.results[0] {
        ScenarioOutcome::Budget(b) => {
            assert_eq!(b.max_wall, Some(0.15), "slow lane trips the wall cap");
            assert!(b.wall > 0.15);
        }
        other => panic!("slot 0: want Budget, got {other:?}"),
    }
    match &out.results[1] {
        ScenarioOutcome::Ok(run) => {
            assert_eq!(run.waveform.len(), STEPS, "fast lane runs to completion");
        }
        other => panic!("slot 1: want Ok, got {other:?}"),
    }
    assert_eq!(out.report.counter("sweep.scenarios.ok"), 1);
    assert_eq!(out.report.counter("sweep.scenarios.budget"), 1);
}

#[test]
fn step_budget_records_typed_outcome() {
    let model = compile_clamp();
    // Healthy scenarios only, but a cap below the per-scenario step
    // count: every slot must come back as a Budget record, tripped on
    // the first tick past the cap.
    let cap = (STEPS / 2) as u64;
    let scenarios: Vec<AmsScenario> = (0..4)
        .map(|i| AmsScenario {
            name: format!("b{i}"),
            stim: Box::new(PiecewiseConstant::seeded(
                i as u64 + 1,
                5,
                6.0 * DT,
                0.0,
                0.8,
            )),
            steps: STEPS,
            newton_tol: None,
            step_control: Some(StepControl::new(1e-9).max_retries(20)),
        })
        .collect();
    let out = run_ams_sweep(
        &SweepEngine::new().workers(2),
        &model,
        &scenarios,
        &ScenarioBudget::unlimited().max_steps(cap),
    )
    .unwrap();
    assert_eq!(out.report.counter("sweep.scenarios.budget"), 4);
    for (i, r) in out.results.iter().enumerate() {
        match r {
            ScenarioOutcome::Budget(b) => {
                assert_eq!(b.steps, cap + 1, "slot {i} trips right past the cap");
                assert_eq!(b.max_steps, Some(cap));
            }
            other => panic!("slot {i}: want Budget, got {other:?}"),
        }
    }
}
