//! Cross-crate behavioural tests of the simulation substrates through
//! their public APIs: kernel scheduling corners, TDF timing, ELN switch
//! dynamics, and waveform tracing.

use de::{Kernel, ProcCtx, Process, Sig, SimTime, TraceValue};
use eln::{ElnNetwork, Method, Transient};

#[test]
fn cross_process_notification_chains() {
    // A ping-pong pair: each process wakes the other after 10 ns, strictly
    // alternating — exercises notify_after across processes.
    struct Ping {
        partner: Option<de::ProcId>,
        count: Sig<i64>,
    }
    impl Process for Ping {
        fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
            let c = ctx.read(self.count);
            ctx.write(self.count, c + 1);
            if let Some(p) = self.partner {
                ctx.notify_after(p, SimTime::ns(10));
            }
        }
    }
    let mut k = Kernel::new();
    let count_a = k.signal(0_i64);
    let count_b = k.signal(0_i64);
    let a = k.register(Ping {
        partner: None,
        count: count_a,
    });
    let b = k.register(Ping {
        partner: Some(a),
        count: count_b,
    });
    // Wire a → b after registration via downcast.
    k.process_mut::<Ping>(a).unwrap().partner = Some(b);
    k.run_until(SimTime::ns(100)).unwrap();
    let (ca, cb) = (k.peek(count_a), k.peek(count_b));
    // Both start at t=0, then ping-pong every 10 ns: ~11 activations each.
    assert!((ca - cb).abs() <= 1, "alternating: {ca} vs {cb}");
    assert!(ca >= 10, "chain kept running: {ca}");
}

#[test]
fn eln_switched_capacitor_discharges() {
    // Charge a capacitor through a closed switch, then open it and close a
    // discharge path: classic switched behaviour with refactorization.
    let mut net = ElnNetwork::new();
    let a = net.node("a");
    let top = net.node("top");
    let v = net.vsource("vin", a, ElnNetwork::GROUND);
    let charge = net.switch("charge", a, top, 100.0, 1e9, true);
    let discharge = net.switch("discharge", top, ElnNetwork::GROUND, 1e3, 1e9, false);
    net.capacitor("c", top, ElnNetwork::GROUND, 1e-6);
    let dt = 1e-6;
    let mut s = Transient::new(&net)
        .dt(dt)
        .method(Method::BackwardEuler)
        .build()
        .unwrap();
    s.set_source(v, 1.0);
    // Charge phase: τ = 100 µs, run 1 ms.
    for _ in 0..1000 {
        s.try_step().unwrap();
    }
    assert!((s.node_voltage(top) - 1.0).abs() < 1e-3, "charged");
    // Swap switches: isolate from the source, discharge into 1 kΩ.
    s.set_switch(charge, false).unwrap();
    s.set_switch(discharge, true).unwrap();
    for _ in 0..1000 {
        s.try_step().unwrap(); // 1 ms = 1τ of discharge
    }
    let expect = (-1.0_f64).exp();
    assert!(
        (s.node_voltage(top) - expect).abs() < 5e-3,
        "discharged to e^-1: {}",
        s.node_voltage(top)
    );
    assert_eq!(s.refactorizations(), 2);
}

#[test]
fn traced_analog_waveform_follows_exponential() {
    // Trace the ELN RC step response through the kernel and validate the
    // recorded waveform against the analytic solution.
    let mut net = ElnNetwork::new();
    let a = net.node("a");
    let out = net.node("out");
    let vin = net.vsource("vin", a, ElnNetwork::GROUND);
    net.resistor("r", a, out, 5e3);
    net.capacitor("c", out, ElnNetwork::GROUND, 25e-9);
    let tau = 5e3 * 25e-9;
    let dt = tau / 100.0;
    let solver = Transient::new(&net)
        .dt(dt)
        .method(Method::BackwardEuler)
        .build()
        .unwrap();

    let mut k = Kernel::new();
    let drive = k.signal(1.0_f64);
    let observe = k.signal(0.0_f64);
    k.register(eln::ElnProcess::new(
        solver,
        vec![(drive, vin)],
        vec![(out, observe)],
    ));
    k.trace(observe, "vout");
    k.run_until(SimTime::from_seconds(2.0 * tau)).unwrap();

    let trace = k.waveforms();
    let samples: Vec<(f64, f64)> = trace
        .channel(0)
        .filter_map(|e| match e.value {
            TraceValue::Real(v) => Some((e.time.as_seconds(), v)),
            TraceValue::Bit(_) => None,
        })
        .collect();
    assert!(samples.len() > 150, "dense recording: {}", samples.len());
    for &(t, v) in samples.iter().skip(1) {
        let analytic = 1.0 - (-t / tau).exp();
        assert!(
            (v - analytic).abs() < 2e-2,
            "waveform at t = {t}: {v} vs {analytic}"
        );
    }
    // The VCD document serializes the full recording.
    let vcd = trace.to_vcd();
    assert!(vcd.lines().count() > samples.len());
}

#[test]
fn tdf_multirate_cluster_keeps_time_consistent() {
    use tdf::{InPort, Io, OutPort, TdfGraph, TdfModule};

    // An oversampling source (rate 2) into a rate-1 consumer: the consumer
    // sees the average time advance of one period per firing.
    struct Clock2x {
        out: OutPort,
        times: Vec<f64>,
    }
    impl TdfModule for Clock2x {
        fn processing(&mut self, io: &mut Io<'_>) {
            self.times.push(io.time().as_seconds());
            io.write(self.out, 0, io.time().as_seconds());
        }
    }
    struct Take {
        inp: InPort,
        seen: Vec<f64>,
    }
    impl TdfModule for Take {
        fn processing(&mut self, io: &mut Io<'_>) {
            self.seen.push(io.read(self.inp, 0) + io.read(self.inp, 1));
        }
    }
    let mut g = TdfGraph::new();
    let o = g.out_port(1);
    let i = g.in_port(2);
    g.connect(o, i, 0);
    let src = g.add_module_named(
        "src",
        Clock2x {
            out: o,
            times: Vec::new(),
        },
        &[],
        &[o],
    );
    let sink = g.add_module_named(
        "sink",
        Take {
            inp: i,
            seen: Vec::new(),
        },
        &[i],
        &[],
    );
    g.set_timestep(src, SimTime::us(5));
    let mut exec = g.build().unwrap();
    assert_eq!(exec.period(), SimTime::us(10));
    exec.run_until(SimTime::us(40));
    let src_times = &exec.module::<Clock2x>(src).unwrap().times;
    // Source fires at 0, 5, 10, 15, ... µs.
    assert_eq!(src_times.len(), 8);
    assert!((src_times[1] - 5e-6).abs() < 1e-12);
    let sums = &exec.module::<Take>(sink).unwrap().seen;
    // Each consumer firing sums two consecutive source timestamps.
    assert_eq!(sums.len(), 4);
    assert!((sums[0] - 5e-6).abs() < 1e-12); // 0 + 5 µs
    assert!((sums[1] - 25e-6).abs() < 1e-12); // 10 + 15 µs
}
