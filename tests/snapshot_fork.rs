//! Property tests for checkpoint/fork execution: `snapshot`/`restore`
//! round-trips bit-exactly mid-transient, lane fan-out via `fork_from`
//! reproduces scalar runs from `t = 0`, and tree sweeps conserve every
//! `amsim.*` counter at any worker count.
//!
//! Circuits come from the paper's Table 1 set (RC ladders, the opamp,
//! the stiff diode clamp), with both dense and forced-sparse backends
//! and adaptive stepping in the mix — a snapshot must capture the whole
//! machine state (slots, integrator history, step control, factor
//! validity), so every one of those paths is a distinct way to get it
//! wrong.

use std::sync::Arc;

use amsim::{CompiledModel, Simulation, Snapshot, StepControl};
use amsvp_core::circuits::{diode_clamp, opamp, rc_ladder, PiecewiseConstant, Stimulus};
use linalg::SolverKind;
use obs::Obs;
use sweep::{
    run_ams_sweep_batched, run_ams_sweep_tree, AmsScenario, ScenarioBudget, ScenarioSegment,
    ScenarioTree, SweepEngine, TreeScenario,
};

const STEPS: usize = 48;

struct Case {
    label: &'static str,
    src: String,
    dt: f64,
    hi: f64,
    solver: SolverKind,
    step_control: Option<StepControl>,
}

/// Table 1 circuits across the backend/stepping matrix: dense fixed-dt,
/// forced-sparse fixed-dt (pivot order must survive the round-trip),
/// and adaptive stepping (current dt and grow streak must survive it).
fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "RC4/dense",
            src: rc_ladder(4),
            dt: 1e-6,
            hi: 1.0,
            solver: SolverKind::Auto,
            step_control: None,
        },
        Case {
            label: "RC4/sparse",
            src: rc_ladder(4),
            dt: 1e-6,
            hi: 1.0,
            solver: SolverKind::Sparse,
            step_control: None,
        },
        Case {
            label: "2IN/dense",
            src: amsvp_core::circuits::two_inputs(),
            dt: 1e-6,
            hi: 1.0,
            solver: SolverKind::Auto,
            step_control: None,
        },
        Case {
            label: "OA/sparse",
            src: opamp(),
            dt: 1e-6,
            hi: 1.0,
            solver: SolverKind::Sparse,
            step_control: None,
        },
        Case {
            label: "CLAMP/adaptive",
            src: diode_clamp(),
            dt: 1e-4,
            hi: 0.8,
            solver: SolverKind::Auto,
            step_control: Some(StepControl::new(1e-9).max_retries(20)),
        },
        Case {
            label: "CLAMP/adaptive-sparse",
            src: diode_clamp(),
            dt: 1e-4,
            hi: 0.8,
            solver: SolverKind::Sparse,
            step_control: Some(StepControl::new(1e-9).max_retries(20)),
        },
    ]
}

fn compile(c: &Case) -> Arc<CompiledModel> {
    let module = vams_parser::parse_module(&c.src).unwrap();
    Simulation::new(&module)
        .dt(c.dt)
        .solver(c.solver)
        .output("V(out)")
        .compile()
        .unwrap()
}

fn stim(c: &Case, seed: u64) -> PiecewiseConstant {
    PiecewiseConstant::seeded(seed, 5, 6.0 * c.dt, 0.0, c.hi)
}

/// Reference run from `t = 0`, optionally snapshotting at step `snap_at`.
fn scalar_run(
    c: &Case,
    model: &Arc<CompiledModel>,
    s: &dyn Stimulus,
    snap_at: Option<usize>,
) -> (Vec<u64>, Option<Snapshot>) {
    let n_inputs = model.input_names().len();
    let mut builder = model.instance_builder();
    if let Some(ctrl) = c.step_control {
        builder = builder.step_control(ctrl);
    }
    let mut inst = builder.build().unwrap();
    let mut wave = Vec::with_capacity(STEPS);
    let mut snap = None;
    for k in 0..STEPS {
        if snap_at == Some(k) {
            snap = Some(inst.snapshot());
        }
        let u = s.value(k as f64 * c.dt);
        inst.try_step(&vec![u; n_inputs]).unwrap();
        wave.push(inst.output(0).to_bits());
    }
    (wave, snap)
}

#[test]
fn snapshot_restore_roundtrips_bitwise_mid_transient() {
    for c in cases() {
        let model = compile(&c);
        let n_inputs = model.input_names().len();
        for seed in 1..=4u64 {
            let s = stim(&c, seed);
            // Snapshot point varies with the seed — a cheap way to probe
            // different integrator/factor states without a framework.
            let snap_at = 5 + (seed as usize * 7) % (STEPS - 10);
            let (reference, snap) = scalar_run(&c, &model, &s, Some(snap_at));
            let snap = snap.unwrap();
            assert_eq!(snap.steps(), snap_at as u64, "{}: watermark", c.label);

            let drive = |inst: &mut amsim::Instance, wave: &mut Vec<u64>| {
                for k in snap_at..STEPS {
                    let u = s.value(k as f64 * c.dt);
                    inst.try_step(&vec![u; n_inputs]).unwrap();
                    wave.push(inst.output(0).to_bits());
                }
            };

            // Restore into a fresh instance: the tail must be bitwise
            // identical to the uninterrupted run.
            let mut builder = model.instance_builder();
            if let Some(ctrl) = c.step_control {
                builder = builder.step_control(ctrl);
            }
            let mut fresh = builder.build().unwrap();
            fresh.restore(&snap);
            let mut tail = Vec::new();
            drive(&mut fresh, &mut tail);
            assert_eq!(
                tail,
                reference[snap_at..],
                "{}/seed{seed}: fresh-restore tail diverged",
                c.label
            );

            // Same-instance rewind: restore again and replay — the second
            // pass must reproduce the first bit for bit.
            fresh.restore(&snap);
            let mut replay = Vec::new();
            drive(&mut fresh, &mut replay);
            assert_eq!(
                replay,
                reference[snap_at..],
                "{}/seed{seed}: rewind replay diverged",
                c.label
            );
        }
    }
}

#[test]
fn forked_lanes_match_scalar_runs_from_zero() {
    const LANES: usize = 3;
    for c in cases() {
        let model = compile(&c);
        let n_inputs = model.input_names().len();
        let prefix = stim(&c, 42);
        let snap_at = STEPS / 2;
        let (_, snap) = scalar_run(&c, &model, &prefix, Some(snap_at));
        let snap = snap.unwrap();

        // Fan the snapshot out into lanes with divergent tail stimuli.
        let mut batch = amsim::BatchInstance::fork_from(&snap, LANES, Obs::none());
        let tails: Vec<PiecewiseConstant> = (0..LANES).map(|l| stim(&c, 100 + l as u64)).collect();
        let mut forked: Vec<Vec<u64>> = vec![Vec::new(); LANES];
        let mut inputs = vec![0.0; n_inputs * LANES];
        for k in snap_at..STEPS {
            for (l, t) in tails.iter().enumerate() {
                let u = t.value(k as f64 * c.dt);
                for i in 0..n_inputs {
                    inputs[i * LANES + l] = u;
                }
            }
            assert_eq!(batch.try_step(&inputs), LANES, "{}: lane fault", c.label);
            for (l, wave) in forked.iter_mut().enumerate() {
                wave.push(batch.output(0, l).to_bits());
            }
        }

        // Each lane must equal a scalar run from t = 0 whose stimulus
        // switches from the prefix to that lane's tail at the snapshot.
        for (l, t) in tails.iter().enumerate() {
            let pre = prefix.clone();
            let stitched = move |time: f64| {
                if time < snap_at as f64 * c.dt {
                    pre.value(time)
                } else {
                    t.value(time)
                }
            };
            struct F<G: Fn(f64) -> f64>(G);
            impl<G: Fn(f64) -> f64> Stimulus for F<G> {
                fn value(&self, t: f64) -> f64 {
                    (self.0)(t)
                }
            }
            let (flat, _) = scalar_run(&c, &model, &F(stitched), None);
            assert_eq!(
                forked[l],
                flat[snap_at..],
                "{}/lane{l}: forked tail diverged from scalar run",
                c.label
            );
        }
    }
}

/// A shared 24-step prefix forking into 6 tails, and its flat
/// (re-simulate-the-prefix) equivalent.
fn conservation_fixture() -> (Arc<CompiledModel>, ScenarioTree, Vec<AmsScenario>) {
    const DT: f64 = 1e-6;
    const SEG: usize = 24;
    const FANOUT: usize = 6;
    let module = vams_parser::parse_module(&rc_ladder(6)).unwrap();
    let model = Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .unwrap();
    let prefix = || PiecewiseConstant::seeded(9, 4, 5.0 * DT, 0.0, 1.0);
    let tail = |i: usize| PiecewiseConstant::seeded(200 + i as u64, 4, 5.0 * DT, 0.0, 1.0);
    let tree = ScenarioTree {
        roots: vec![TreeScenario {
            newton_tol: None,
            step_control: None,
            segment: ScenarioSegment {
                name: "prefix".into(),
                stim: Box::new(prefix()),
                steps: SEG,
                children: (0..FANOUT)
                    .map(|i| ScenarioSegment {
                        name: format!("tail{i}"),
                        stim: Box::new(tail(i)),
                        steps: SEG,
                        children: Vec::new(),
                    })
                    .collect(),
            },
        }],
    };
    struct SwitchAt {
        t0: f64,
        before: PiecewiseConstant,
        after: PiecewiseConstant,
    }
    impl Stimulus for SwitchAt {
        fn value(&self, t: f64) -> f64 {
            if t < self.t0 {
                self.before.value(t)
            } else {
                self.after.value(t)
            }
        }
    }
    let flat = (0..FANOUT)
        .map(|i| AmsScenario {
            name: format!("tail{i}"),
            stim: Box::new(SwitchAt {
                t0: SEG as f64 * DT,
                before: prefix(),
                after: tail(i),
            }),
            steps: 2 * SEG,
            newton_tol: None,
            step_control: None,
        })
        .collect();
    (model, tree, flat)
}

#[test]
fn tree_sweep_conserves_amsim_counters_across_worker_counts() {
    let (model, tree, flat) = conservation_fixture();
    let budget = ScenarioBudget::unlimited();
    for workers in [1usize, 2, 8] {
        let engine = SweepEngine::new().workers(workers);
        let flat_out = run_ams_sweep_batched(&engine, &model, &flat, 4, &budget).unwrap();
        let tree_out = run_ams_sweep_tree(&engine, &model, &tree, 4, &budget).unwrap();

        // The tree simulated the prefix once; adding back the steps it
        // saved must land exactly on the flat sweep's step count.
        let saved = tree_out.report.counter("sweep.tree.prefix_steps_saved");
        assert!(saved > 0, "w{workers}: no prefix steps saved");
        assert_eq!(
            tree_out.report.counter("amsim.steps") + saved,
            flat_out.report.counter("amsim.steps"),
            "w{workers}: step conservation"
        );
        // One fork point, fanned out to 6 lanes (lane width 4 → chunks
        // of 4 + 2, both restored from the same snapshot).
        assert_eq!(tree_out.report.counter("amsim.snapshot.taken"), 1);
        assert_eq!(tree_out.report.counter("amsim.snapshot.restored"), 6);
        assert_eq!(tree_out.report.counter("sweep.tree.forks"), 1);
        // Obs-visible solver counters must not depend on scheduling.
        for counter in [
            "amsim.steps",
            "amsim.newton_iterations",
            "amsim.lu.factorizations",
            "amsim.snapshot.taken",
            "amsim.snapshot.restored",
            "sweep.tree.prefix_steps_saved",
        ] {
            assert_eq!(
                tree_out.report.counter(counter),
                run_ams_sweep_tree(&SweepEngine::new().workers(1), &model, &tree, 4, &budget)
                    .unwrap()
                    .report
                    .counter(counter),
                "w{workers}: counter `{counter}` varies with scheduling"
            );
        }
    }
}

/// RC500 pushes the sparse backend well past the dense threshold; the
/// debug profile is too slow for it, and there is no RC500 golden file,
/// so parity is asserted tree-vs-flat instead.
#[cfg(not(debug_assertions))]
#[test]
fn rc500_sparse_fork_parity() {
    const DT: f64 = 1e-3;
    const SEG: usize = 12;
    const FANOUT: usize = 4;
    let module = vams_parser::parse_module(&rc_ladder(500)).unwrap();
    let model = Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .unwrap();
    let prefix = || PiecewiseConstant::seeded(5, 3, 4.0 * DT, 0.0, 1.0);
    let tail = |i: usize| PiecewiseConstant::seeded(300 + i as u64, 3, 4.0 * DT, 0.0, 1.0);
    let tree = ScenarioTree {
        roots: vec![TreeScenario {
            newton_tol: None,
            step_control: None,
            segment: ScenarioSegment {
                name: "prefix".into(),
                stim: Box::new(prefix()),
                steps: SEG,
                children: (0..FANOUT)
                    .map(|i| ScenarioSegment {
                        name: format!("tail{i}"),
                        stim: Box::new(tail(i)),
                        steps: SEG,
                        children: Vec::new(),
                    })
                    .collect(),
            },
        }],
    };
    struct SwitchAt {
        t0: f64,
        before: PiecewiseConstant,
        after: PiecewiseConstant,
    }
    impl Stimulus for SwitchAt {
        fn value(&self, t: f64) -> f64 {
            if t < self.t0 {
                self.before.value(t)
            } else {
                self.after.value(t)
            }
        }
    }
    let flat: Vec<AmsScenario> = (0..FANOUT)
        .map(|i| AmsScenario {
            name: format!("tail{i}"),
            stim: Box::new(SwitchAt {
                t0: SEG as f64 * DT,
                before: prefix(),
                after: tail(i),
            }),
            steps: 2 * SEG,
            newton_tol: None,
            step_control: None,
        })
        .collect();

    let engine = SweepEngine::new().workers(2);
    let budget = ScenarioBudget::unlimited();
    let flat_out = run_ams_sweep_batched(&engine, &model, &flat, 2, &budget).unwrap();
    let tree_out = run_ams_sweep_tree(&engine, &model, &tree, 2, &budget).unwrap();
    for (i, (f, t)) in flat_out.results.iter().zip(&tree_out.results).enumerate() {
        let (f, t) = (f.ok().unwrap(), t.ok().unwrap());
        assert_eq!(f.name, t.name, "leaf {i}");
        let fb: Vec<u64> = f.waveform.iter().map(|v| v.to_bits()).collect();
        let tb: Vec<u64> = t.waveform.iter().map(|v| v.to_bits()).collect();
        assert_eq!(fb, tb, "leaf {i}: RC500 sparse fork parity violated");
    }
    assert!(tree_out.report.counter("sweep.tree.prefix_steps_saved") > 0);
}
