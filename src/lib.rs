//! Umbrella crate for the `amsvp` workspace — a from-scratch Rust
//! reproduction of *"Integration of mixed-signal components into virtual
//! platforms for holistic simulation of smart systems"* (Fraccaroli,
//! Lora, Vinco, Quaglia, Fummi — DATE 2016).
//!
//! This crate re-exports the whole stack so downstream users can depend
//! on a single package:
//!
//! * [`core`] — the paper's contribution: conversion and abstraction of
//!   Verilog-AMS models to executable signal-flow models and generated
//!   C++/SystemC source;
//! * [`parser`] / [`ast`] — the Verilog-AMS front end;
//! * [`de`], [`tdf`], [`eln`] — the single-kernel simulation substrates
//!   (discrete-event, timed data-flow, electrical linear network);
//! * [`amsim`] — the conservative reference simulator and its threaded
//!   co-simulation bridge;
//! * [`vp`] — the smart-system virtual platform (MIPS CPU, bus, UART,
//!   analog bridge) with every analog integration level of the paper's
//!   Table III;
//! * [`mod@bench`] — harnesses that regenerate every table of the paper.
//!
//! # Example
//!
//! ```
//! use amsvp::core::Abstraction;
//!
//! let module = amsvp::parser::parse_module(
//!     &amsvp::core::circuits::rc_ladder(1),
//! )?;
//! let mut model = Abstraction::new(&module).dt(50e-9).build()?;
//! model.step(&[1.0]);
//! assert!(model.output(0) > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See the repository README for the architecture overview, DESIGN.md for
//! the system inventory, and EXPERIMENTS.md for paper-vs-measured
//! results.

/// The abstraction pipeline and code generators (the paper's §IV).
pub use amsvp_core as core;

/// Verilog-AMS abstract syntax tree.
pub use vams_ast as ast;

/// Verilog-AMS lexer and parser.
pub use vams_parser as parser;

/// Symbolic expression engine.
pub use expr;

/// Circuit topology and equation storage.
pub use netlist;

/// Dense linear algebra (MNA kernel).
pub use linalg;

/// Discrete-event simulation kernel (SystemC-DE analogue).
pub use de;

/// Timed data-flow scheduler (SystemC-AMS/TDF analogue).
pub use tdf;

/// Electrical linear network solver (SystemC-AMS/ELN analogue).
pub use eln;

/// Conservative Verilog-AMS reference simulator + co-simulation bridge.
pub use amsim;

/// The smart-system virtual platform.
pub use vp;

/// Table-regeneration harnesses.
pub use amsvp_bench as bench;
