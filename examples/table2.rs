//! Regenerates Table II of the paper: the abstracted models in isolation
//! over a longer simulated time, compared to SystemC-AMS/ELN (the
//! Verilog-AMS reference is dropped, exactly as in the paper).
//!
//! ```sh
//! cargo run --release --example table2 [sim_time_seconds]
//! ```
//!
//! The paper simulated 10 s; the default here is 0.1 s. Speed-ups are
//! duration-independent (fixed 50 ns step everywhere).

fn main() {
    let sim_time: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    eprintln!("Running Table II at {sim_time} s simulated time (paper: 10 s)...");
    let rows = amsvp_bench::table2_rows(sim_time);
    println!(
        "{}",
        amsvp_bench::format_rows(
            &format!(
                "TABLE II — abstracted models in isolation ({sim_time} s simulated); \
                 speed-up vs SC-AMS/ELN"
            ),
            &rows
        )
    );
}
