//! Walkthrough of the four-step abstraction methodology (§IV, Figures
//! 4–7 of the paper) on the active filter of Figure 2.
//!
//! Prints the intermediate artifacts of every stage: the circuit graph,
//! the dipole relations, the enriched hash table with its dependency
//! chains, the assembled/solved update equations, and the generated code.
//!
//! ```sh
//! cargo run --release --example abstraction_walkthrough
//! ```

use amsvp_core::acquire::acquire;
use amsvp_core::assemble::assemble;
use amsvp_core::enrich::enrich;
use amsvp_core::{codegen, conservative_relations, Quantity, SignalFlowModel};

const ACTIVE_FILTER: &str = include_str!("../crates/vams-parser/tests/fixtures/active_filter.va");

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = vams_parser::parse_module(ACTIVE_FILTER)?;
    println!("================================================================");
    println!(" Input: Verilog-AMS active filter (Figure 2)");
    println!("================================================================");
    println!("{module}");

    // ---------------------------------------------------- Step 1
    let model = acquire(&module)?;
    println!("================================================================");
    println!(" Step 1 — Acquisition (§IV-A)");
    println!("================================================================");
    println!(
        "Graph G = (N, B): {} nodes, {} branches",
        model.graph.node_count(),
        model.graph.branch_count()
    );
    println!("\nDipole relations (one per contribution statement):");
    for r in &model.relations {
        println!("  {r}");
    }
    println!("\nSignal-flow variable definitions (folded):");
    for (name, def) in &model.folded_vars {
        println!("  {name} = {def}");
    }

    // ---------------------------------------------------- Step 2
    println!("\n================================================================");
    println!(" Step 2 — Enrichment (§IV-B, Algorithm 1 / Figure 5)");
    println!("================================================================");
    let all_relations = conservative_relations(&model)?;
    println!(
        "Relation set: {} (dipole + vdef + KCL at internal nodes)",
        all_relations.len()
    );
    let table = enrich(&model)?;
    println!(
        "Enriched table: {} dependency classes, {} solved equations\n",
        table.class_count(),
        table.equation_count()
    );
    println!("{table}");

    // ---------------------------------------------------- Step 3
    println!("================================================================");
    println!(" Step 3 — Assemble & solve (§IV-C, Algorithm 2 / Figures 6, 7)");
    println!("================================================================");
    let dt = 50e-9;
    let mut table = enrich(&model)?;
    let assembly = assemble(&mut table, &[Quantity::node_v("out")], dt)?;
    println!("Output of interest: V(out); Δt = {dt:e} s\n");
    println!("Solved update sequence (delayed values only on the right):");
    for (q, e) in &assembly.assignments {
        println!("  {q} := {e}");
    }
    println!(
        "\nExpression size: {} nodes across {} assignments",
        assembly.expression_size(),
        assembly.assignments.len()
    );

    // ---------------------------------------------------- Step 4
    println!("\n================================================================");
    println!(" Step 4 — Code generation (§IV-D, Figure 7b)");
    println!("================================================================");
    let sfm = SignalFlowModel::from_assembly(&module.name, &assembly, &model.inputs)?;
    println!("{}", codegen::cpp::generate(&sfm));

    // Behaviour check: the clamp engages for large inputs.
    let mut m = sfm;
    for _ in 0..200_000 {
        m.step(&[1.0]);
    }
    println!(
        "// steady state at 1 V input: V(out) = {:+.4} V (clamped)",
        m.output(0)
    );
    Ok(())
}
