//! Regenerates Table I of the paper: simulation performance and accuracy
//! of the abstracted models in isolation, per circuit and integration
//! level, versus the conservative Verilog-AMS reference.
//!
//! ```sh
//! cargo run --release --example table1 [sim_time_seconds]
//! ```
//!
//! The paper simulated 100 ms; the default here is 2 ms so the interpreted
//! reference simulator finishes in minutes. Pass a custom duration (e.g.
//! `0.1` for the full paper workload) as the first argument. Reported
//! speed-ups are duration-independent because every level uses the same
//! fixed 50 ns step.
//!
//! A recording [`obs`] collector is threaded through every run; the
//! captured counters and per-phase pipeline timings are written to
//! `BENCH_obs.json` next to the working directory (see README for the
//! format).

use obs::Obs;

fn main() {
    let sim_time: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2e-3);
    // NRMSE window: two stimulus periods (covers all transients).
    let accuracy_steps = ((2e-3 / 50e-9) as usize).min((sim_time / 50e-9) as usize);
    eprintln!(
        "Running Table I at {sim_time} s simulated time (paper: 0.1 s); \
         NRMSE over {accuracy_steps} samples..."
    );
    let obs = Obs::recording();
    let rows = amsvp_bench::table1_rows_with(sim_time, accuracy_steps, &obs);
    println!(
        "{}",
        amsvp_bench::format_rows(
            &format!(
                "TABLE I — abstracted models in isolation ({sim_time} s simulated, \
                 Δt = 50 ns, 1 ms square wave); speed-up vs Verilog-AMS reference"
            ),
            &rows
        )
    );
    match obs.report() {
        Some(report) => match report.write_json("BENCH_obs.json") {
            Ok(()) => eprintln!("Instrumentation report written to BENCH_obs.json"),
            Err(e) => eprintln!("Could not write BENCH_obs.json: {e}"),
        },
        None => eprintln!("Collector produced no report"),
    }
}
