//! Quickstart: abstract a conservative Verilog-AMS model, run it, and
//! emit the generated C++/SystemC code.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use amsvp_core::codegen;
use amsvp_core::{Abstraction, SolveMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A first-order RC low-pass as a conservative Verilog-AMS description:
    // dipole equations only; Kirchhoff's laws are implicit.
    let source = "
module rc(in, out);
  input in; output out;
  parameter real R = 5k;
  parameter real C = 25n;
  electrical in, out, gnd;
  ground gnd;
  branch (in, out) res;
  branch (out, gnd) cap;
  analog begin
    V(res) <+ R * I(res);
    I(cap) <+ C * ddt(V(cap));
  end
endmodule";

    let module = vams_parser::parse_module(source)?;
    println!("== Parsed module `{}` ==", module.name);
    println!(
        "   {} branches, {} contribution statements\n",
        module.branches.len(),
        module.stmt_count()
    );

    // The abstraction pipeline of the paper: acquisition → enrichment →
    // assembly → solved signal-flow model, at Δt = 50 ns.
    let dt = 50e-9;
    let (assembly, _inputs) = Abstraction::new(&module)
        .dt(dt)
        .mode(SolveMode::Implicit)
        .output("V(out)")
        .assembly()?;
    println!("== Extracted signal-flow model (Figure 7 of the paper) ==");
    for (q, e) in &assembly.assignments {
        println!("   {q} := {e}");
    }

    // Compile and simulate: a square-wave charge/discharge.
    let mut model = Abstraction::new(&module).dt(dt).output("V(out)").build()?;
    let tau = 5e3 * 25e-9;
    let half_period_steps = (10.0 * tau / dt) as usize;
    println!("\n== Simulation: square wave, τ = {tau:.3e} s ==");
    for cycle in 0..2 {
        for (label, level) in [("high", 1.0), ("low", 0.0)] {
            for _ in 0..half_period_steps {
                model.step(&[level]);
            }
            println!(
                "   cycle {cycle}, after {label} half-period: V(out) = {:+.4} V",
                model.output(0)
            );
        }
    }

    // Step 4 of the paper: code generation for virtual-platform targets.
    println!("\n== Generated pure C++ (excerpt) ==");
    let cpp = codegen::cpp::generate(&model);
    for line in cpp.lines().take(12) {
        println!("   {line}");
    }
    println!("   ...");

    let de = codegen::systemc_de::generate(&model);
    let tdf = codegen::systemc_tdf::generate(&model);
    println!(
        "\nAlso generated: SystemC-DE module ({} lines), SystemC-AMS/TDF module ({} lines).",
        de.lines().count(),
        tdf.lines().count()
    );
    Ok(())
}
