//! Checkpoint/fork sweep over a scenario tree: shared stimulus prefixes
//! are simulated **once**.
//!
//! Compiles the 20-stage RC ladder once, then runs 32 scenarios that
//! agree on their first 1500 steps two ways: as a flat batched sweep
//! (every scenario re-simulates the shared prefix) and as a
//! [`sweep::ScenarioTree`] (the prefix runs once, a snapshot is taken at
//! the fork point, and the 32 divergent tails fan out from it via
//! `BatchInstance::fork_from`). Verifies the forked run is a pure
//! speedup — every root-to-leaf waveform bit-identical to the flat one —
//! and prints the tree bookkeeping (nodes, forks, prefix steps saved).
//!
//! ```text
//! cargo run --release --example sweep_tree
//! ```

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant, Stimulus};
use sweep::{
    run_ams_sweep_batched, run_ams_sweep_tree, AmsScenario, ScenarioBudget, ScenarioOutcome,
    ScenarioSegment, ScenarioTree, SweepEngine, SweepOutcome, TreeScenario,
};

const DT: f64 = 50e-9;
const PREFIX_STEPS: usize = 1500;
const TAIL_STEPS: usize = 500;
const SCENARIOS: usize = 32;
const WORKERS: usize = 4;
const LANE_WIDTH: usize = 16;

fn prefix_stim() -> PiecewiseConstant {
    PiecewiseConstant::seeded(7, 8, 400.0 * DT, -0.5, 1.0)
}

fn tail_stim(i: usize) -> PiecewiseConstant {
    PiecewiseConstant::seeded(100 + i as u64, 8, 400.0 * DT, -0.5, 1.0)
}

/// The tree: one shared 1500-step prefix forking into 32 tails.
fn tree() -> ScenarioTree {
    ScenarioTree {
        roots: vec![TreeScenario {
            newton_tol: None,
            step_control: None,
            segment: ScenarioSegment {
                name: "rc20/prefix".into(),
                stim: Box::new(prefix_stim()),
                steps: PREFIX_STEPS,
                children: (0..SCENARIOS)
                    .map(|i| ScenarioSegment {
                        name: format!("rc20/tail{i}"),
                        stim: Box::new(tail_stim(i)),
                        steps: TAIL_STEPS,
                        children: Vec::new(),
                    })
                    .collect(),
            },
        }],
    }
}

/// The flat equivalent: every scenario re-simulates the prefix, with a
/// stimulus stitched at the fork time (segments sample absolute time, so
/// both encodings drive identical inputs at every step).
fn flat_scenarios() -> Vec<AmsScenario> {
    struct SwitchAt {
        t0: f64,
        before: PiecewiseConstant,
        after: PiecewiseConstant,
    }
    impl Stimulus for SwitchAt {
        fn value(&self, t: f64) -> f64 {
            if t < self.t0 {
                self.before.value(t)
            } else {
                self.after.value(t)
            }
        }
    }
    (0..SCENARIOS)
        .map(|i| AmsScenario {
            name: format!("rc20/tail{i}"),
            stim: Box::new(SwitchAt {
                t0: PREFIX_STEPS as f64 * DT,
                before: prefix_stim(),
                after: tail_stim(i),
            }),
            steps: PREFIX_STEPS + TAIL_STEPS,
            newton_tol: None,
            step_control: None,
        })
        .collect()
}

fn waveform_bits(
    outcome: &SweepOutcome<ScenarioOutcome<sweep::AmsRun, amsim::AmsError>>,
) -> Vec<Vec<u64>> {
    outcome
        .results
        .iter()
        .map(|r| {
            let run = r.ok().expect("healthy scenarios complete");
            run.waveform.iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

fn main() {
    let module = vams_parser::parse_module(&rc_ladder(20)).expect("RC20 parses");
    let model = amsim::Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .expect("RC20 compiles");
    let t = tree();
    println!(
        "compiled RC20 once; scenario tree: {} nodes, {} leaves, \
         {PREFIX_STEPS}/{} steps shared",
        t.node_count(),
        t.leaf_count(),
        PREFIX_STEPS + TAIL_STEPS
    );

    let engine = SweepEngine::new().workers(WORKERS);
    let budget = ScenarioBudget::unlimited();
    let flat = run_ams_sweep_batched(&engine, &model, &flat_scenarios(), LANE_WIDTH, &budget)
        .expect("flat batched sweep runs");
    let forked =
        run_ams_sweep_tree(&engine, &model, &t, LANE_WIDTH, &budget).expect("tree sweep runs");

    // Forking is a scheduling choice, not a numerical one: a forked lane
    // replays the exact machine state the prefix lane had at the fork
    // point, so every path matches the flat run to the last bit.
    assert_eq!(
        waveform_bits(&flat),
        waveform_bits(&forked),
        "tree sweep must be bit-identical to the flat batched one"
    );

    let speedup = flat.wall / forked.wall;
    println!(
        "{SCENARIOS} scenarios × {} steps on {WORKERS} workers: \
         flat {:.2} s, forked {:.2} s ({speedup:.2}× speedup)",
        PREFIX_STEPS + TAIL_STEPS,
        flat.wall,
        forked.wall
    );
    println!(
        "tree bookkeeping: {} nodes, {} forks, {} prefix steps saved, \
         {} snapshot taken / {} restored",
        forked.report.counter("sweep.tree.nodes"),
        forked.report.counter("sweep.tree.forks"),
        forked.report.counter("sweep.tree.prefix_steps_saved"),
        forked.report.counter("amsim.snapshot.taken"),
        forked.report.counter("amsim.snapshot.restored"),
    );

    // Wall-clock ratios depend on the host, so the speedup is asserted
    // only on request — correctness is asserted unconditionally above.
    if std::env::var("AMSVP_ASSERT_SPEEDUP").is_ok_and(|v| v == "1") {
        assert!(
            speedup >= 1.5,
            "AMSVP_ASSERT_SPEEDUP=1: forking a 75% shared prefix should be \
             ≥1.5× faster on RC20 (got {speedup:.2}×)"
        );
    } else {
        println!("(speedup assertion skipped; opt in with AMSVP_ASSERT_SPEEDUP=1)");
    }
}
