//! Waveform tracing demo: run an ELN low-pass inside the discrete-event
//! kernel, trace the drive and the output, and emit a VCD document
//! viewable in GTKWave — the `sc_trace` workflow of a SystemC platform.
//!
//! ```sh
//! cargo run --release --example trace_waveform > rc.vcd
//! ```

use de::{Kernel, ProcCtx, Process, Sig, SimTime};
use eln::{ElnNetwork, ElnProcess, Method, Transient};

/// Drives a square wave onto a DE signal.
struct SquareDriver {
    out: Sig<f64>,
    half_period: SimTime,
    high: bool,
}

impl Process for SquareDriver {
    fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
        ctx.write(self.out, if self.high { 1.0 } else { 0.0 });
        self.high = !self.high;
        ctx.notify_self_after(self.half_period);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 5 kΩ / 25 nF low-pass (τ = 125 µs) driven by a 500 µs square wave.
    let mut net = ElnNetwork::new();
    let a = net.node("a");
    let out = net.node("out");
    let vin = net.vsource("vin", a, ElnNetwork::GROUND);
    net.resistor("r", a, out, 5e3);
    net.capacitor("c", out, ElnNetwork::GROUND, 25e-9);
    let solver = Transient::new(&net)
        .dt(1e-6)
        .method(Method::BackwardEuler)
        .build()?;

    let mut k = Kernel::new();
    let drive = k.signal(0.0_f64);
    let observe = k.signal(0.0_f64);
    k.register(SquareDriver {
        out: drive,
        half_period: SimTime::us(250),
        high: true,
    });
    k.register(ElnProcess::new(
        solver,
        vec![(drive, vin)],
        vec![(out, observe)],
    ));
    k.trace(drive, "vin");
    k.trace(observe, "vout");

    k.run_until(SimTime::ms(2))?;

    let trace = k.waveforms();
    eprintln!(
        "traced {} channels, {} value changes over {}",
        trace.channel_names().len(),
        trace.events().len(),
        k.now()
    );
    // The VCD document goes to stdout so it can be piped into a file.
    print!("{}", trace.to_vcd());
    Ok(())
}
