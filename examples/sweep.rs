//! Parallel tolerance sweep over the RC20 ladder.
//!
//! Compiles the 20-stage RC ladder **once**, then runs 64 scenarios — a
//! Newton-tolerance ladder crossed with seeded-random piecewise-constant
//! stimuli — first sequentially, then on a 4-worker pool sharing the one
//! compiled model. Verifies the parallel run is a pure speedup
//! (bit-identical waveforms) and prints the merged instrumentation
//! report.
//!
//! ```text
//! cargo run --release --example sweep
//! ```

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use obs::Obs;
use sweep::{
    run_ams_sweep, AmsScenario, ScenarioBudget, ScenarioOutcome, SweepEngine, SweepOutcome,
};

const DT: f64 = 50e-9;
const STEPS: usize = 4000;
const SCENARIOS: usize = 64;
const WORKERS: usize = 4;

fn scenarios() -> Vec<AmsScenario> {
    let tolerances = [1e-12, 1e-10, 1e-8, 1e-6];
    (0..SCENARIOS)
        .map(|i| AmsScenario {
            name: format!(
                "rc20/tol{}/seed{}",
                i % tolerances.len(),
                i / tolerances.len()
            ),
            stim: Box::new(PiecewiseConstant::seeded(
                1 + (i / tolerances.len()) as u64,
                8,
                500.0 * DT,
                -0.5,
                1.0,
            )),
            steps: STEPS,
            newton_tol: Some(tolerances[i % tolerances.len()]),
            step_control: None,
        })
        .collect()
}

fn waveform_bits(
    outcome: &SweepOutcome<ScenarioOutcome<sweep::AmsRun, amsim::AmsError>>,
) -> Vec<Vec<u64>> {
    outcome
        .results
        .iter()
        .map(|r| {
            let run = r.ok().expect("healthy scenarios complete");
            run.waveform.iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

fn main() {
    let module = vams_parser::parse_module(&rc_ladder(20)).expect("RC20 parses");
    let compile_obs = Obs::recording();
    let model = amsim::Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .collector(compile_obs.clone())
        .compile()
        .expect("RC20 compiles");
    println!(
        "compiled RC20 once: {} unknowns, dt = {} s",
        model.dim(),
        model.dt()
    );

    let budget = ScenarioBudget::unlimited();
    let sequential = run_ams_sweep(
        &SweepEngine::new().workers(1),
        &model,
        &scenarios(),
        &budget,
    )
    .expect("sweep runs");
    let parallel = run_ams_sweep(
        &SweepEngine::new().workers(WORKERS),
        &model,
        &scenarios(),
        &budget,
    )
    .expect("sweep runs");

    assert_eq!(
        waveform_bits(&sequential),
        waveform_bits(&parallel),
        "parallel sweep must be bit-identical to the sequential one"
    );

    let mut merged = compile_obs.report().expect("recording collector");
    merged.merge(&parallel.report);
    assert_eq!(
        merged.counter("amsim.jacobian.builds"),
        1,
        "64 scenarios share one compiled model: exactly one Jacobian build"
    );

    let speedup = sequential.wall / parallel.wall;
    println!(
        "{SCENARIOS} scenarios × {STEPS} steps: sequential {:.2} s, \
         {WORKERS} workers {:.2} s ({speedup:.2}× speedup)",
        sequential.wall, parallel.wall
    );
    let scenario_times = &parallel.report.timers["sweep.scenario"];
    println!(
        "per-scenario wall time: mean {:.1} ms, min {:.1} ms, max {:.1} ms",
        scenario_times.mean() * 1e3,
        scenario_times.min * 1e3,
        scenario_times.max * 1e3
    );
    println!(
        "merged counters: {} steps, {} Newton iterations, {} Jacobian builds, \
         {} LU factorizations",
        merged.counter("amsim.steps"),
        merged.counter("amsim.newton_iterations"),
        merged.counter("amsim.jacobian.builds"),
        merged.counter("amsim.lu.factorizations"),
    );
    for w in 0..WORKERS {
        println!(
            "worker {w}: {} scenarios",
            parallel
                .report
                .counter(&format!("sweep.worker.{w}.scenarios"))
        );
    }

    // Wall-clock ratios depend on the host (core count, load, frequency
    // scaling), so the speedup is asserted only on request — correctness
    // (the bit-identity check above) is asserted unconditionally.
    if std::env::var("AMSVP_ASSERT_SPEEDUP").is_ok_and(|v| v == "1") {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert!(
            speedup >= 3.0,
            "AMSVP_ASSERT_SPEEDUP=1 on a {cores}-core host: a {WORKERS}-worker \
             sweep should be ≥3× faster (got {speedup:.2}×)"
        );
    } else {
        println!("(speedup assertion skipped; opt in with AMSVP_ASSERT_SPEEDUP=1)");
    }
}
