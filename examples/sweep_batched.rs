//! Lane-batched tolerance sweep over the RC20 ladder.
//!
//! Compiles the 20-stage RC ladder **once**, then runs 64 scenarios two
//! ways at the same worker count: per-instance (`run_ams_sweep`, one
//! scenario per Newton solve) and lane-batched (`run_ams_sweep_batched`,
//! 16 scenarios advancing together per batched bytecode pass over
//! `[slot][lane]` memory). Verifies the batched run is a pure speedup —
//! every waveform bit-identical to the per-instance path — and prints
//! the batch bookkeeping (blocks, lanes, masked iterations).
//!
//! ```text
//! cargo run --release --example sweep_batched
//! ```

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use sweep::{
    run_ams_sweep, run_ams_sweep_batched, AmsScenario, ScenarioBudget, ScenarioOutcome,
    SweepEngine, SweepOutcome,
};

const DT: f64 = 50e-9;
const STEPS: usize = 2000;
const SCENARIOS: usize = 64;
const WORKERS: usize = 4;
const LANE_WIDTH: usize = 16;

fn scenarios() -> Vec<AmsScenario> {
    let tolerances = [1e-12, 1e-10, 1e-8, 1e-6];
    (0..SCENARIOS)
        .map(|i| AmsScenario {
            name: format!(
                "rc20/tol{}/seed{}",
                i % tolerances.len(),
                i / tolerances.len()
            ),
            stim: Box::new(PiecewiseConstant::seeded(
                1 + (i / tolerances.len()) as u64,
                8,
                500.0 * DT,
                -0.5,
                1.0,
            )),
            steps: STEPS,
            newton_tol: Some(tolerances[i % tolerances.len()]),
            step_control: None,
        })
        .collect()
}

fn waveform_bits(
    outcome: &SweepOutcome<ScenarioOutcome<sweep::AmsRun, amsim::AmsError>>,
) -> Vec<Vec<u64>> {
    outcome
        .results
        .iter()
        .map(|r| {
            let run = r.ok().expect("healthy scenarios complete");
            run.waveform.iter().map(|v| v.to_bits()).collect()
        })
        .collect()
}

fn main() {
    let module = vams_parser::parse_module(&rc_ladder(20)).expect("RC20 parses");
    let model = amsim::Simulation::new(&module)
        .dt(DT)
        .output("V(out)")
        .compile()
        .expect("RC20 compiles");
    println!(
        "compiled RC20 once: {} unknowns, dt = {} s",
        model.dim(),
        model.dt()
    );

    let engine = SweepEngine::new().workers(WORKERS);
    let budget = ScenarioBudget::unlimited();
    let scalar = run_ams_sweep(&engine, &model, &scenarios(), &budget).expect("sweep runs");
    let batched = run_ams_sweep_batched(&engine, &model, &scenarios(), LANE_WIDTH, &budget)
        .expect("batched sweep runs");

    // The contract that makes lane width a pure performance knob: the
    // batch performs the scalar path's IEEE operations in the scalar
    // order, per lane, so the waveforms match to the last bit.
    assert_eq!(
        waveform_bits(&scalar),
        waveform_bits(&batched),
        "batched sweep must be bit-identical to the per-instance one"
    );

    let speedup = scalar.wall / batched.wall;
    println!(
        "{SCENARIOS} scenarios × {STEPS} steps on {WORKERS} workers: \
         per-instance {:.2} s, batched (width {LANE_WIDTH}) {:.2} s \
         ({speedup:.2}× speedup)",
        scalar.wall, batched.wall
    );
    println!(
        "batch bookkeeping: {} blocks, {} lanes, {} masked iterations",
        batched.report.counter("sweep.batch.blocks"),
        batched.report.counter("amsim.batch.lanes"),
        batched.report.counter("amsim.batch.masked_iterations"),
    );
    println!(
        "solver work (conserved under batching): {} steps, {} Newton iterations",
        batched.report.counter("amsim.steps"),
        batched.report.counter("amsim.newton_iterations"),
    );

    // Wall-clock ratios depend on the host (core count, load, frequency
    // scaling), so the speedup is asserted only on request — correctness
    // (the bit-identity check above) is asserted unconditionally.
    if std::env::var("AMSVP_ASSERT_SPEEDUP").is_ok_and(|v| v == "1") {
        assert!(
            speedup >= 1.5,
            "AMSVP_ASSERT_SPEEDUP=1: lane batching at equal workers should be \
             ≥1.5× faster on RC20 (got {speedup:.2}×)"
        );
    } else {
        println!("(speedup assertion skipped; opt in with AMSVP_ASSERT_SPEEDUP=1)");
    }
}
