//! Regenerates Table III of the paper: the complete virtual platform
//! (MIPS CPU + APB + UART + analog component) with the analog side
//! integrated at every abstraction level, from Verilog-AMS co-simulation
//! down to the pure C++ loop.
//!
//! ```sh
//! cargo run --release --example table3 [sim_time_seconds]
//! ```
//!
//! The paper simulated 100 ms; the default here is 1 ms so the
//! co-simulated interpreted reference finishes quickly.

fn main() {
    let sim_time: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1e-3);
    eprintln!("Running Table III at {sim_time} s simulated time (paper: 0.1 s)...");
    let rows = amsvp_bench::table3_rows(sim_time);
    println!(
        "{}",
        amsvp_bench::format_platform_rows(
            &format!(
                "TABLE III — analog component integrated in the virtual platform \
                 ({sim_time} s simulated); speed-up vs Verilog-AMS co-simulation"
            ),
            &rows
        )
    );
}
