//! Complete smart-system demo (the paper's Figure 1 architecture):
//! a MIPS CPU polling an analog RC front-end through the ADC bridge and
//! reporting threshold crossings over the UART — run with the analog
//! component integrated at every abstraction level of Table III.
//!
//! ```sh
//! cargo run --release --example smart_system
//! ```

use std::time::Instant;

use amsim::cosim::CosimHandle;
use amsim::Simulation;
use amsvp_core::{circuits, Abstraction};
use de::SimTime;
use eln::{Method, Transient};
use vp::{
    monitor_firmware, rc_ladder_eln, run_de_platform, run_fast_platform, AnalogIntegration,
    PlatformConfig,
};

const DT: f64 = 50e-9;
const SIM: f64 = 2e-3; // two square-wave periods

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = vams_parser::parse_module(&circuits::rc_ladder(1))?;
    let config = PlatformConfig::new(monitor_firmware());
    println!("Smart-system platform: MIPS CPU @50 MHz + UART + RC analog front-end");
    println!("Firmware: poll ADC, report 0.5 V threshold crossings over UART");
    println!("Simulated time: {} ms\n", SIM * 1e3);

    let abstracted = || {
        Abstraction::new(&module)
            .dt(DT)
            .output("V(out)")
            .build()
            .expect("abstracts")
    };

    let mut results = Vec::new();

    let start = Instant::now();
    let report = {
        let sim = Simulation::new(&module).dt(DT).output("V(out)").build()?;
        run_de_platform(
            AnalogIntegration::Cosim {
                handle: CosimHandle::spawn(sim, 1),
                inputs: 1,
                dt: DT,
            },
            &config,
            SimTime::from_seconds(SIM),
        )
    };
    results.push(("Verilog-AMS co-simulation", start.elapsed(), report));

    let start = Instant::now();
    let report = {
        let (net, src, out) = rc_ladder_eln(1);
        run_de_platform(
            AnalogIntegration::Eln {
                solver: Transient::new(&net)
                    .dt(DT)
                    .method(Method::BackwardEuler)
                    .build()?,
                sources: vec![src],
                output: out,
            },
            &config,
            SimTime::from_seconds(SIM),
        )
    };
    results.push(("SC-AMS/ELN in kernel", start.elapsed(), report));

    let start = Instant::now();
    let report = run_de_platform(
        AnalogIntegration::Tdf(abstracted()),
        &config,
        SimTime::from_seconds(SIM),
    );
    results.push(("SC-AMS/TDF cluster", start.elapsed(), report));

    let start = Instant::now();
    let report = run_de_platform(
        AnalogIntegration::CompiledDe(abstracted()),
        &config,
        SimTime::from_seconds(SIM),
    );
    results.push(("SC-DE process", start.elapsed(), report));

    let start = Instant::now();
    let report = run_fast_platform(abstracted(), &config, SIM);
    results.push(("pure C++ loop", start.elapsed(), report));

    let baseline = results[0].1.as_secs_f64();
    println!(
        "{:<28} {:>10} {:>9} {:>12} {:>12} {:>8}",
        "Integration", "wall [ms]", "speed-up", "instructions", "UART bytes", "V(out)"
    );
    for (name, wall, report) in &results {
        println!(
            "{:<28} {:>10.2} {:>8.1}x {:>12} {:>12} {:>8.3}",
            name,
            wall.as_secs_f64() * 1e3,
            baseline / wall.as_secs_f64(),
            report.instructions,
            report.uart.len(),
            report.final_output,
        );
    }
    let uart = String::from_utf8_lossy(&results.last().expect("nonempty").2.uart).to_string();
    println!("\nUART traffic (threshold crossings): {uart}");
    Ok(())
}
