//! Abstract syntax tree for the Verilog-AMS subset supported by the
//! abstraction toolchain.
//!
//! The subset mirrors what the paper's Figure 2 exercises: module headers
//! with directional ports, `electrical` (and other discipline) net
//! declarations, named branches, parameters, real variables, `ground`
//! statements, and an `analog` block containing assignments, conditionals,
//! and *contribution statements* (`V(a,b) <+ expr`, `I(br) <+ expr`) whose
//! right-hand sides may use arithmetic, math functions and the analog
//! operators `ddt`/`idt`.
//!
//! Expression trees are shared with the rest of the workspace: the AST
//! reuses [`Expr`] from the `expr` crate instantiated with [`VamsRef`] leaves, so the
//! acquisition step of the abstraction pipeline consumes parser output
//! without a conversion layer.
//!
//! The AST prints back to syntactically valid Verilog-AMS via [`Display`],
//! which the parser's round-trip property tests rely on.
//!
//! [`Display`]: std::fmt::Display

mod display;

/// Re-exported operators and expression type shared across the workspace.
pub use expr::{BinOp, Expr, Func};

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A leaf reference inside a Verilog-AMS expression: a plain identifier
/// (parameter or `real` variable), a potential access `V(a[,b])`, or a flow
/// access `I(branch)` / `I(a,b)`.
///
/// Implements `Ord`/`Display` so it can serve directly as the variable type
/// of [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VamsRef {
    /// A parameter or variable name.
    Ident(String),
    /// Potential access: `V(a)` (w.r.t. ground) or `V(a,b)`.
    Potential(String, Option<String>),
    /// Flow access: `I(br)` for a named branch or `I(a,b)` for a node pair.
    Flow(String, Option<String>),
}

impl VamsRef {
    /// Convenience constructor for an identifier reference.
    pub fn ident(name: impl Into<String>) -> Self {
        VamsRef::Ident(name.into())
    }

    /// Convenience constructor for `V(a)`.
    pub fn potential1(a: impl Into<String>) -> Self {
        VamsRef::Potential(a.into(), None)
    }

    /// Convenience constructor for `V(a,b)`.
    pub fn potential2(a: impl Into<String>, b: impl Into<String>) -> Self {
        VamsRef::Potential(a.into(), Some(b.into()))
    }

    /// Convenience constructor for `I(br)`.
    pub fn flow1(a: impl Into<String>) -> Self {
        VamsRef::Flow(a.into(), None)
    }

    /// Convenience constructor for `I(a,b)`.
    pub fn flow2(a: impl Into<String>, b: impl Into<String>) -> Self {
        VamsRef::Flow(a.into(), Some(b.into()))
    }

    /// Whether this is a branch-quantity access (potential or flow) rather
    /// than a plain identifier.
    pub fn is_access(&self) -> bool {
        !matches!(self, VamsRef::Ident(_))
    }
}

/// An expression appearing in the AST.
pub type VamsExpr = Expr<VamsRef>;

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout`
    Inout,
}

impl std::fmt::Display for PortDir {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PortDir::Input => "input",
            PortDir::Output => "output",
            PortDir::Inout => "inout",
        })
    }
}

/// A module port with its direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Direction as declared (`input`/`output`/`inout`).
    pub dir: PortDir,
    /// Declaration position.
    pub span: Span,
}

/// A `parameter real name = default;` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    /// Parameter name.
    pub name: String,
    /// Default value expression (may reference earlier parameters).
    pub default: VamsExpr,
    /// Declaration position.
    pub span: Span,
}

/// A discipline net declaration such as `electrical in, out;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetDecl {
    /// Discipline name (`electrical`, `rotational`, ...).
    pub discipline: String,
    /// Declared net names.
    pub names: Vec<String>,
    /// Declaration position.
    pub span: Span,
}

/// A named branch declaration: `branch (a, b) name;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchDecl {
    /// Branch name.
    pub name: String,
    /// Positive node.
    pub pos: String,
    /// Negative node.
    pub neg: String,
    /// Declaration position.
    pub span: Span,
}

/// One statement of the `analog` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What the statement does.
    pub kind: StmtKind,
    /// Statement position.
    pub span: Span,
}

/// Statement kinds of the `analog` block.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Contribution statement: `target <+ expr;`. The target is always a
    /// potential or flow access.
    Contribution {
        /// The contributed quantity (`V(..)` or `I(..)`).
        target: VamsRef,
        /// Contributed expression.
        value: VamsExpr,
    },
    /// Procedural assignment to a `real` variable: `name = expr;`.
    Assign {
        /// Assigned variable name.
        name: String,
        /// Assigned expression.
        value: VamsExpr,
    },
    /// `if (cond) ... [else ...]`, with each arm already flattened to a
    /// statement list (`begin`/`end` blocks dissolve into the `Vec`).
    If {
        /// Condition (nonzero = true).
        cond: VamsExpr,
        /// Then-arm statements.
        then_stmts: Vec<Stmt>,
        /// Else-arm statements (empty when absent).
        else_stmts: Vec<Stmt>,
    },
}

/// A Verilog-AMS module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Ports in header order.
    pub ports: Vec<Port>,
    /// Parameters in declaration order.
    pub parameters: Vec<Parameter>,
    /// Net declarations in order.
    pub nets: Vec<NetDecl>,
    /// Named branch declarations.
    pub branches: Vec<BranchDecl>,
    /// `real` variable declarations.
    pub reals: Vec<String>,
    /// Nets tied to the reference node via `ground n;`.
    pub grounds: Vec<String>,
    /// Statements of the `analog` block, in source order (empty when the
    /// module has no analog block).
    pub analog: Vec<Stmt>,
    /// Position of the `module` keyword.
    pub span: Span,
}

impl Module {
    /// Creates an empty module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Looks up a declared parameter by name.
    pub fn parameter(&self, name: &str) -> Option<&Parameter> {
        self.parameters.iter().find(|p| p.name == name)
    }

    /// Looks up a named branch by name.
    pub fn branch(&self, name: &str) -> Option<&BranchDecl> {
        self.branches.iter().find(|b| b.name == name)
    }

    /// Iterates over all declared net names (across disciplines).
    pub fn net_names(&self) -> impl Iterator<Item = &str> {
        self.nets
            .iter()
            .flat_map(|d| d.names.iter().map(String::as_str))
    }

    /// Whether `name` is a declared net.
    pub fn has_net(&self, name: &str) -> bool {
        self.net_names().any(|n| n == name)
    }

    /// Counts statements recursively (both arms of conditionals included).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match &s.kind {
                    StmtKind::If {
                        then_stmts,
                        else_stmts,
                        ..
                    } => 1 + count(then_stmts) + count(else_stmts),
                    _ => 1,
                })
                .sum()
        }
        count(&self.analog)
    }
}

/// A parsed source file: a sequence of modules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    /// Modules in source order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Looks a module up by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vamsref_constructors() {
        assert_eq!(VamsRef::ident("x"), VamsRef::Ident("x".into()));
        assert_eq!(
            VamsRef::potential2("a", "b"),
            VamsRef::Potential("a".into(), Some("b".into()))
        );
        assert!(VamsRef::flow1("br").is_access());
        assert!(!VamsRef::ident("r").is_access());
    }

    #[test]
    fn vamsref_orders_deterministically() {
        let mut v = [
            VamsRef::flow1("b"),
            VamsRef::ident("a"),
            VamsRef::potential1("n"),
        ];
        v.sort();
        // Ident < Potential < Flow by enum declaration order.
        assert_eq!(v[0], VamsRef::ident("a"));
        assert_eq!(v[1], VamsRef::potential1("n"));
        assert_eq!(v[2], VamsRef::flow1("b"));
    }

    #[test]
    fn module_lookup_helpers() {
        let mut m = Module::new("rc");
        m.parameters.push(Parameter {
            name: "R".into(),
            default: Expr::num(5000.0),
            span: Span::new(2, 1),
        });
        m.nets.push(NetDecl {
            discipline: "electrical".into(),
            names: vec!["a".into(), "out".into()],
            span: Span::new(3, 1),
        });
        m.branches.push(BranchDecl {
            name: "res".into(),
            pos: "a".into(),
            neg: "out".into(),
            span: Span::new(4, 1),
        });
        assert!(m.parameter("R").is_some());
        assert!(m.parameter("C").is_none());
        assert!(m.branch("res").is_some());
        assert!(m.has_net("out"));
        assert!(!m.has_net("ghost"));
        assert_eq!(m.net_names().count(), 2);
    }

    #[test]
    fn stmt_count_recurses() {
        let assign = |n: &str| Stmt {
            kind: StmtKind::Assign {
                name: n.into(),
                value: Expr::num(0.0),
            },
            span: Span::default(),
        };
        let mut m = Module::new("m");
        m.analog.push(assign("a"));
        m.analog.push(Stmt {
            kind: StmtKind::If {
                cond: Expr::num(1.0),
                then_stmts: vec![assign("b"), assign("c")],
                else_stmts: vec![assign("d")],
            },
            span: Span::default(),
        });
        assert_eq!(m.stmt_count(), 5);
    }

    #[test]
    fn expr_reuse_with_vamsref_leaves() {
        // The shared Expr type accepts VamsRef directly.
        let e: VamsExpr = Expr::var(VamsRef::potential2("out", "gnd"))
            + Expr::var(VamsRef::ident("R")) * Expr::var(VamsRef::flow1("res"));
        assert_eq!(e.variables().len(), 3);
    }

    #[test]
    fn span_display() {
        assert_eq!(Span::new(4, 7).to_string(), "4:7");
    }
}
