//! Pretty-printing of the AST back to syntactically valid Verilog-AMS.
//!
//! The printer is the inverse of the parser on the supported subset; the
//! parser crate's property tests exercise `parse ∘ print = id`.

use std::fmt;

use crate::{Module, SourceFile, Stmt, StmtKind, VamsRef};

impl fmt::Display for VamsRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VamsRef::Ident(name) => f.write_str(name),
            VamsRef::Potential(a, None) => write!(f, "V({a})"),
            VamsRef::Potential(a, Some(b)) => write!(f, "V({a},{b})"),
            VamsRef::Flow(a, None) => write!(f, "I({a})"),
            VamsRef::Flow(a, Some(b)) => write!(f, "I({a},{b})"),
        }
    }
}

fn write_stmts(f: &mut fmt::Formatter<'_>, stmts: &[Stmt], indent: usize) -> fmt::Result {
    for s in stmts {
        write_stmt(f, s, indent)?;
    }
    Ok(())
}

fn write_stmt(f: &mut fmt::Formatter<'_>, s: &Stmt, indent: usize) -> fmt::Result {
    let pad = "  ".repeat(indent);
    match &s.kind {
        StmtKind::Contribution { target, value } => {
            writeln!(f, "{pad}{target} <+ {value};")
        }
        StmtKind::Assign { name, value } => writeln!(f, "{pad}{name} = {value};"),
        StmtKind::If {
            cond,
            then_stmts,
            else_stmts,
        } => {
            writeln!(f, "{pad}if ({cond}) begin")?;
            write_stmts(f, then_stmts, indent + 1)?;
            if else_stmts.is_empty() {
                writeln!(f, "{pad}end")
            } else {
                writeln!(f, "{pad}end else begin")?;
                write_stmts(f, else_stmts, indent + 1)?;
                writeln!(f, "{pad}end")
            }
        }
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "module {}(", self.name)?;
        for (i, p) in self.ports.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            f.write_str(&p.name)?;
        }
        writeln!(f, ");")?;
        for p in &self.ports {
            writeln!(f, "  {} {};", p.dir, p.name)?;
        }
        for p in &self.parameters {
            writeln!(f, "  parameter real {} = {};", p.name, p.default)?;
        }
        for n in &self.nets {
            writeln!(f, "  {} {};", n.discipline, n.names.join(", "))?;
        }
        for b in &self.branches {
            writeln!(f, "  branch ({}, {}) {};", b.pos, b.neg, b.name)?;
        }
        if !self.reals.is_empty() {
            writeln!(f, "  real {};", self.reals.join(", "))?;
        }
        for g in &self.grounds {
            writeln!(f, "  ground {g};")?;
        }
        if !self.analog.is_empty() {
            writeln!(f, "  analog begin")?;
            write_stmts(f, &self.analog, 2)?;
            writeln!(f, "  end")?;
        }
        writeln!(f, "endmodule")
    }
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, m) in self.modules.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchDecl, Expr, NetDecl, Parameter, Port, PortDir, Span};

    #[test]
    fn vamsref_rendering() {
        assert_eq!(VamsRef::ident("R").to_string(), "R");
        assert_eq!(VamsRef::potential1("out").to_string(), "V(out)");
        assert_eq!(VamsRef::potential2("a", "b").to_string(), "V(a,b)");
        assert_eq!(VamsRef::flow1("res").to_string(), "I(res)");
        assert_eq!(VamsRef::flow2("a", "b").to_string(), "I(a,b)");
    }

    #[test]
    fn module_prints_all_sections() {
        let mut m = Module::new("rc_filter");
        m.ports.push(Port {
            name: "in".into(),
            dir: PortDir::Input,
            span: Span::default(),
        });
        m.ports.push(Port {
            name: "out".into(),
            dir: PortDir::Output,
            span: Span::default(),
        });
        m.parameters.push(Parameter {
            name: "R".into(),
            default: Expr::num(5000.0),
            span: Span::default(),
        });
        m.nets.push(NetDecl {
            discipline: "electrical".into(),
            names: vec!["in".into(), "out".into(), "gnd".into()],
            span: Span::default(),
        });
        m.branches.push(BranchDecl {
            name: "res".into(),
            pos: "in".into(),
            neg: "out".into(),
            span: Span::default(),
        });
        m.grounds.push("gnd".into());
        m.reals.push("tmp".into());
        m.analog.push(Stmt {
            kind: StmtKind::Contribution {
                target: VamsRef::potential2("in", "out"),
                value: Expr::var(VamsRef::ident("R")) * Expr::var(VamsRef::flow1("res")),
            },
            span: Span::default(),
        });
        let text = m.to_string();
        assert!(text.starts_with("module rc_filter(in, out);"));
        assert!(text.contains("input in;"));
        assert!(text.contains("parameter real R = 5000;"));
        assert!(text.contains("electrical in, out, gnd;"));
        assert!(text.contains("branch (in, out) res;"));
        assert!(text.contains("real tmp;"));
        assert!(text.contains("ground gnd;"));
        assert!(text.contains("V(in,out) <+ R * I(res);"));
        assert!(text.trim_end().ends_with("endmodule"));
    }

    #[test]
    fn if_else_renders_blocks() {
        let s = Stmt {
            kind: StmtKind::If {
                cond: Expr::var(VamsRef::ident("x")),
                then_stmts: vec![Stmt {
                    kind: StmtKind::Assign {
                        name: "y".into(),
                        value: Expr::num(1.0),
                    },
                    span: Span::default(),
                }],
                else_stmts: vec![Stmt {
                    kind: StmtKind::Assign {
                        name: "y".into(),
                        value: Expr::num(0.0),
                    },
                    span: Span::default(),
                }],
            },
            span: Span::default(),
        };
        let mut m = Module::new("m");
        m.analog.push(s);
        let text = m.to_string();
        assert!(text.contains("if (x) begin"));
        assert!(text.contains("end else begin"));
    }
}
