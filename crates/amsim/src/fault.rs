//! Deterministic solver fault injection (the `fault-inject` feature).
//!
//! The sweep layer installs a [`FaultGuard`] around one nominal
//! `try_step` call; while the guard lives, the targeted lanes fail the
//! way a genuinely sick circuit would — a NaN residual out of the VM, a
//! singular or non-finite Jacobian out of the refactorization — through
//! the *production* error paths, not a parallel code path. The guard is
//! thread-local and cleared on drop, so:
//!
//! * a fault is **sticky within one nominal step**: adaptive sub-step
//!   retries under the same guard keep failing (the in-step backoff
//!   cannot absorb an injected fault — it escalates to the recovery
//!   ladder, which is the point), and
//! * concurrent sweep workers never observe each other's faults, which
//!   keeps injection deterministic under work-stealing.
//!
//! Lane indices are block-local ([`crate::BatchInstance`] lanes); a
//! scalar [`crate::Instance`] is lane 0.

use std::cell::RefCell;
use std::marker::PhantomData;

/// A forced solver failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverFault {
    /// The residual evaluation returns NaN (poisoned VM evaluation) —
    /// surfaces as [`crate::AmsError::NonFinite`].
    ResidualNan,
    /// The next Jacobian refactorization reports singularity —
    /// surfaces as [`crate::AmsError::Singular`].
    RefactorSingular,
    /// The next Jacobian refactorization reports a non-finite entry —
    /// surfaces as [`crate::AmsError::NonFinite`].
    RefactorNonFinite,
}

thread_local! {
    static ACTIVE: RefCell<Vec<(usize, SolverFault)>> = const { RefCell::new(Vec::new()) };
}

/// Keeps the installed faults armed until dropped. Not `Send`: the
/// faults live in the installing thread's state.
#[must_use = "faults stay armed only while the guard lives"]
pub struct FaultGuard {
    _not_send: PhantomData<*const ()>,
}

/// Arms `faults` (lane, failure mode) for solver calls on this thread
/// until the returned guard drops. Installing an empty slice is a no-op
/// guard.
pub fn inject(faults: &[(usize, SolverFault)]) -> FaultGuard {
    ACTIVE.with(|a| a.borrow_mut().extend_from_slice(faults));
    FaultGuard {
        _not_send: PhantomData,
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.borrow_mut().clear());
    }
}

/// The fault armed for `lane` on this thread, if any.
pub(crate) fn active_for(lane: usize) -> Option<SolverFault> {
    ACTIVE.with(|a| a.borrow().iter().find(|(l, _)| *l == lane).map(|&(_, f)| f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AmsError, Simulation};
    use vams_parser::parse_module;

    const RC1: &str = "module rc(in, out);
        input in; output out;
        parameter real R = 5k;
        parameter real C = 25n;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) res;
        branch (out, gnd) cap;
        analog begin
          V(res) <+ R * I(res);
          I(cap) <+ C * ddt(V(cap));
        end
      endmodule";

    #[test]
    fn scalar_faults_fire_once_through_typed_errors() {
        let m = parse_module(RC1).unwrap();
        let dt = 5e3 * 25e-9 / 100.0;
        let mut sim = Simulation::new(&m).dt(dt).output("V(out)").build().unwrap();
        {
            let _g = inject(&[(0, SolverFault::ResidualNan)]);
            assert!(matches!(
                sim.try_step(&[1.0]),
                Err(AmsError::NonFinite { .. })
            ));
        }
        // Guard dropped: the instance recovers on the next step.
        sim.try_step(&[1.0]).unwrap();
        {
            let _g = inject(&[(0, SolverFault::RefactorSingular)]);
            assert!(matches!(sim.try_step(&[1.0]), Err(AmsError::Singular)));
        }
        sim.try_step(&[1.0]).unwrap();
        {
            let _g = inject(&[(0, SolverFault::RefactorNonFinite)]);
            assert!(matches!(
                sim.try_step(&[1.0]),
                Err(AmsError::NonFinite { .. })
            ));
        }
        sim.try_step(&[1.0]).unwrap();
    }

    #[test]
    fn batched_fault_retires_only_the_target_lane() {
        let m = parse_module(RC1).unwrap();
        let dt = 5e3 * 25e-9 / 100.0;
        let model = Simulation::new(&m)
            .dt(dt)
            .output("V(out)")
            .compile()
            .unwrap();
        let mut batch = model.batch_instance(2);
        {
            let _g = inject(&[(1, SolverFault::ResidualNan)]);
            batch.try_step(&[1.0, 1.0]);
        }
        assert!(batch.lane_active(0));
        assert!(!batch.lane_active(1));
        assert!(matches!(
            batch.lane_error(1),
            Some(AmsError::NonFinite { .. })
        ));
        // The healthy lane keeps stepping bit-normally.
        batch.try_step(&[1.0, 1.0]);
        assert!(batch.lane_active(0));
    }
}
