//! A conservative Verilog-AMS transient simulator — the reference
//! ("ELDO/Questa") substrate of the paper's experiments.
//!
//! Unlike the abstraction pipeline, which extracts only the equations
//! feeding the outputs of interest, this simulator does what the paper's
//! §III-B describes commercial analog solvers doing: it keeps **every**
//! dipole equation plus the implicit energy-conservation laws as one
//! square system of differential-algebraic equations
//!
//! ```text
//! F(x(t), ẋ(t), u(t)) = 0
//! ```
//!
//! and resolves it at every time step with a Newton iteration. Residuals
//! and symbolically differentiated Jacobian entries are compiled to
//! [`expr::vm`] bytecode over a flat slot array at build time, and the LU
//! factorization is reused across iterations and steps until the
//! convergence rate stalls (modified Newton). "The sparse linear solver
//! and device evaluation are two most serious bottlenecks in this kind of
//! simulators" — this crate keeps exactly that cost structure (a full
//! conservative DAE solve per step), made as fast as the structure
//! allows, which is what the generated models are benchmarked against.
//!
//! [`cosim`] runs a simulator instance on its own thread in lockstep with
//! a digital kernel, reproducing the synchronization cost of commercial
//! co-simulation (Questa + ELDO in the paper's Table III).
//!
//! # Example
//!
//! ```
//! use amsim::Simulation;
//!
//! let src = "
//! module rc(in, out);
//!   input in; output out;
//!   parameter real R = 5k;
//!   parameter real C = 25n;
//!   electrical in, out, gnd;
//!   ground gnd;
//!   branch (in, out) res;
//!   branch (out, gnd) cap;
//!   analog begin
//!     V(res) <+ R * I(res);
//!     I(cap) <+ C * ddt(V(cap));
//!   end
//! endmodule";
//! let module = vams_parser::parse_module(src)?;
//! let tau = 5e3 * 25e-9;
//! let mut sim = Simulation::new(&module).dt(tau / 100.0).output("V(out)").build()?;
//! for _ in 0..100 {
//!     sim.step(&[1.0]);
//! }
//! let analytic = 1.0 - (-1.0_f64).exp();
//! assert!((sim.output(0) - analytic).abs() < 5e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod batch;
pub mod cosim;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod sim;

pub use batch::{BatchInstance, BatchInstanceBuilder, InputFrame};
pub use sim::{
    AmsError, AmsSimulator, CompiledModel, Instance, InstanceBuilder, RecoveryPolicy, Simulation,
    Snapshot, StepControl,
};

// Re-exported so call sites can pick a backend via
// [`Simulation::solver`] without depending on the linalg crate directly.
pub use linalg::SolverKind;
