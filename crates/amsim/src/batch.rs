//! Lane-batched transient execution: one [`CompiledModel`] stepped over
//! `L` scenario lanes at once.
//!
//! # Layout
//!
//! Every per-lane vector is stored structure-of-arrays with the lane
//! index contiguous: slot `s` of lane `l` lives at `slots[s * lanes + l]`.
//! A compiled program then evaluates over all lanes per opcode
//! ([`Program::eval_lanes`]) and the shared-factor linear solve runs over
//! all lanes per substitution row ([`Factorization::solve_lanes_into`]),
//! so the inner loops stride adjacent memory and auto-vectorize.
//!
//! # Masking
//!
//! Lanes converge, reject and back off independently. A lane leaves the
//! Newton iteration the moment it converges or faults; the batched
//! residual pass still *computes* every lane (arithmetic on a retired
//! lane's stale slots is harmless — IEEE ops never trap) but masked lanes
//! are never *committed*: norms, factorization policy, state updates and
//! history refresh consult the per-lane masks. The wasted lane-iterations
//! are surfaced as the `amsim.batch.masked_iterations` counter next to
//! `amsim.batch.lanes`.
//!
//! # Determinism
//!
//! A lane's trajectory is **bit-identical** to a scalar [`Instance`] run
//! of the same scenario: per lane, the batch performs the same IEEE-754
//! operations in the same order as the scalar hot path — only the loop
//! nesting over lanes changes, never the arithmetic. Debug builds assert
//! this against the scalar VM after every batched residual pass.

use std::sync::Arc;

use linalg::{AnyLu, FactorError, Factorization, Triplets};
use obs::{CounterTracker, Obs};

use crate::sim::stamp_jacobian;
use crate::sim::{AmsError, CompiledModel, Instance, Snapshot, SnapshotLu, StepControl};

/// Per-lane solver state: everything the scalar [`Instance`] keeps
/// per run, minus the (shared, SoA) slot/iterate storage.
struct Lane {
    /// Newton convergence tolerance for this lane.
    newton_tol: f64,
    /// Adaptive-stepping policy; `None` keeps strict fixed-`dt` stepping.
    step_control: Option<StepControl>,
    /// Current adaptive sub-step `h ≤ dt`; persists across nominal steps.
    cur_dt: f64,
    /// Consecutive first-try accepted sub-steps (drives regrowth).
    accept_streak: u32,
    /// Lane-owned factors, allocated lazily the first time this lane
    /// refactors away from the model's shared zero-state factorization.
    /// `None` means the lane still solves through `CompiledModel::init_lu`
    /// — the case that enables the batched shared-factor solve.
    lu: Option<AnyLu>,
    /// Whether the lane's current factors (owned or shared) still
    /// describe a usable linearization.
    lu_valid: bool,
    /// Simulated time of the last accepted sub-step.
    time: f64,
    /// Nominal steps completed.
    steps: u64,
    /// Newton iterations spent by this lane.
    newton_iters: u64,
    /// Terminal fault, if the lane has been retired by one.
    error: Option<AmsError>,
    /// Whether the lane still participates in stepping.
    active: bool,
}

/// A batch of `L` independent runs of one [`CompiledModel`], stepped
/// together through lane-batched bytecode and linear algebra.
///
/// Obtain one via [`CompiledModel::batch_instance`] /
/// [`CompiledModel::batch_instance_builder`]. Inputs and outputs are
/// addressed `(index, lane)`; [`BatchInstance::try_step`] advances every
/// active lane by one nominal step. A faulted lane is retired to a typed
/// [`AmsError`] ([`BatchInstance::lane_error`]) without disturbing its
/// siblings; see the [module docs](self) for layout, masking and the
/// bit-determinism contract.
pub struct BatchInstance {
    model: Arc<CompiledModel>,
    lanes: usize,
    /// SoA evaluation state, `[slot][lane]`:
    /// `[unknowns | inputs | ddt prev | idt state | h | 1/h]` × lanes.
    slots: Vec<f64>,
    /// Last accepted solution, `[unknown][lane]`.
    x: Vec<f64>,
    /// Warm-start / rewind state, `[unknown][lane]`.
    x_prev: Vec<f64>,
    lane: Vec<Lane>,

    // ---- shared scratch ----
    /// Residuals `[equation][lane]`, negated in place into the Newton rhs.
    res: Vec<f64>,
    /// Newton updates `[unknown][lane]`.
    delta: Vec<f64>,
    /// Batched VM operand stack (`[depth][lane]`).
    stack: Vec<f64>,
    /// Scalar VM stack for Jacobian stamping and the debug oracle.
    scalar_stack: Vec<f64>,
    /// One lane's slots gathered contiguously (Jacobian stamping, oracle).
    gather: Vec<f64>,
    /// Per-lane scalar solve rhs / solution (mixed-factor fallback path).
    lane_rhs: Vec<f64>,
    lane_delta: Vec<f64>,
    /// Row accumulator for the batched shared-factor solve (`lanes` wide).
    acc: Vec<f64>,
    /// Batched program output (`lanes` wide) for history refresh.
    lane_out: Vec<f64>,
    /// Jacobian triplet stamps, re-pushed per lane refactor in the fixed
    /// coordinate order the sparse backend's frozen pattern relies on.
    jt: Triplets,

    // ---- per-lane driver state (reused across steps) ----
    h: Vec<f64>,
    remaining: Vec<f64>,
    rejects: Vec<u32>,
    t_start: Vec<f64>,
    stepping: Vec<bool>,
    solving: Vec<bool>,
    converged: Vec<bool>,
    fault: Vec<Option<AmsError>>,
    best: Vec<f64>,
    prev_rel: Vec<f64>,
    stale: Vec<u32>,
    fresh: Vec<bool>,

    // ---- aggregate counters (sum over lanes) ----
    steps: u64,
    newton_iters: u64,
    jacobian_builds: u64,
    lu_factorizations: u64,
    jacobian_reuse_hits: u64,
    jacobian_refactors: u64,
    steps_rejected: u64,
    step_retries: u64,
    dt_shrinks: u64,
    dt_grows: u64,
    /// Lane-iterations computed but masked out (lane already converged,
    /// faulted or retired while siblings kept iterating).
    masked_iters: u64,
    snapshots_taken: u64,
    snapshots_restored: u64,

    obs: Obs,
    obs_steps: CounterTracker,
    obs_newton: CounterTracker,
    obs_jacobian: CounterTracker,
    obs_factorizations: CounterTracker,
    obs_reuse_hits: CounterTracker,
    obs_refactors: CounterTracker,
    obs_rejected: CounterTracker,
    obs_retries: CounterTracker,
    obs_shrinks: CounterTracker,
    obs_grows: CounterTracker,
    obs_lanes: CounterTracker,
    obs_masked: CounterTracker,
    obs_sparse_analyze: CounterTracker,
    obs_sparse_refactor: CounterTracker,
    obs_sparse_fill: CounterTracker,
    obs_snap_taken: CounterTracker,
    obs_snap_restored: CounterTracker,
}

/// Builder for a [`BatchInstance`] with per-lane settings — the batched
/// analogue of [`InstanceBuilder`](crate::InstanceBuilder).
#[must_use = "call build() to construct the batch instance"]
pub struct BatchInstanceBuilder {
    model: Arc<CompiledModel>,
    obs: Obs,
    newton_tols: Vec<f64>,
    step_controls: Vec<Option<StepControl>>,
}

impl BatchInstanceBuilder {
    /// Attaches an instrumentation collector; the batch reports the same
    /// `amsim.*` counter families as a scalar instance (aggregated over
    /// lanes) plus `amsim.batch.lanes` and
    /// `amsim.batch.masked_iterations`.
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the Newton convergence tolerance for every lane.
    pub fn newton_tol(mut self, tol: f64) -> Self {
        self.newton_tols.fill(tol);
        self
    }

    /// Overrides the Newton convergence tolerance for one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_newton_tol(mut self, lane: usize, tol: f64) -> Self {
        self.newton_tols[lane] = tol;
        self
    }

    /// Overrides the adaptive-stepping policy for every lane — pass a
    /// [`StepControl`] to enable retry/backoff, or `None` to force
    /// fixed-`dt` stepping even when the model carries a default.
    pub fn step_control(mut self, sc: impl Into<Option<StepControl>>) -> Self {
        self.step_controls.fill(sc.into());
        self
    }

    /// Overrides the adaptive-stepping policy for one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_step_control(mut self, lane: usize, sc: impl Into<Option<StepControl>>) -> Self {
        self.step_controls[lane] = sc.into();
        self
    }

    /// Creates the batch instance.
    ///
    /// # Errors
    ///
    /// * [`AmsError::InvalidTolerance`] when any lane's tolerance is not
    ///   positive and finite;
    /// * [`AmsError::InvalidStepControl`] when any lane's step-control
    ///   override is inconsistent with the model's nominal step.
    pub fn build(self) -> Result<BatchInstance, AmsError> {
        for &tol in &self.newton_tols {
            if !(tol.is_finite() && tol > 0.0) {
                return Err(AmsError::InvalidTolerance { tol });
            }
        }
        for sc in self.step_controls.iter().flatten() {
            sc.validate(self.model.dt)?;
        }
        Ok(BatchInstance::with_model(
            self.model,
            self.obs,
            self.newton_tols,
            self.step_controls,
        ))
    }
}

impl CompiledModel {
    /// Spawns a lane-batched instance over `lanes` independent runs with
    /// the model's default tolerance and step-control policy in every
    /// lane and no collector — the cheap path for batched sweep workers.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn batch_instance(self: &Arc<Self>, lanes: usize) -> BatchInstance {
        self.batch_instance_builder(lanes)
            .build()
            .expect("model defaults validated at compile time")
    }

    /// Starts a [`BatchInstanceBuilder`] for a batch with per-lane
    /// settings.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn batch_instance_builder(self: &Arc<Self>, lanes: usize) -> BatchInstanceBuilder {
        assert!(lanes > 0, "a batch needs at least one lane");
        BatchInstanceBuilder {
            model: Arc::clone(self),
            obs: Obs::none(),
            newton_tols: vec![self.newton_tol; lanes],
            step_controls: vec![self.step_control; lanes],
        }
    }
}

impl BatchInstance {
    fn with_model(
        model: Arc<CompiledModel>,
        obs: Obs,
        newton_tols: Vec<f64>,
        step_controls: Vec<Option<StepControl>>,
    ) -> BatchInstance {
        let lanes = newton_tols.len();
        let n = model.unknowns.len();
        let mut slots = vec![0.0; model.slot_count * lanes];
        // Per-lane step slots, written with the same ops as the scalar
        // constructor so lane 0 of a fresh batch equals a fresh instance.
        for l in 0..lanes {
            slots[model.dt_slot * lanes + l] = model.dt;
            slots[(model.dt_slot + 1) * lanes + l] = 1.0 / model.dt;
        }
        let lu_valid = model.init_lu.is_some();
        let lane: Vec<Lane> = newton_tols
            .into_iter()
            .zip(step_controls)
            .map(|(newton_tol, step_control)| Lane {
                newton_tol,
                step_control,
                cur_dt: model.dt,
                accept_streak: 0,
                lu: None,
                lu_valid,
                time: 0.0,
                steps: 0,
                newton_iters: 0,
                error: None,
                active: true,
            })
            .collect();
        BatchInstance {
            lanes,
            slots,
            x: vec![0.0; n * lanes],
            x_prev: vec![0.0; n * lanes],
            lane,
            res: vec![0.0; n * lanes],
            delta: vec![0.0; n * lanes],
            stack: Vec::new(),
            scalar_stack: Vec::with_capacity(model.max_stack),
            gather: vec![0.0; model.slot_count],
            lane_rhs: vec![0.0; n],
            lane_delta: vec![0.0; n],
            acc: vec![0.0; lanes],
            lane_out: vec![0.0; lanes],
            jt: Triplets::new(n, n),
            h: vec![0.0; lanes],
            remaining: vec![0.0; lanes],
            rejects: vec![0; lanes],
            t_start: vec![0.0; lanes],
            stepping: vec![false; lanes],
            solving: vec![false; lanes],
            converged: vec![false; lanes],
            fault: vec![None; lanes],
            best: vec![0.0; lanes],
            prev_rel: vec![0.0; lanes],
            stale: vec![0; lanes],
            fresh: vec![false; lanes],
            steps: 0,
            newton_iters: 0,
            jacobian_builds: 0,
            lu_factorizations: 0,
            jacobian_reuse_hits: 0,
            jacobian_refactors: 0,
            steps_rejected: 0,
            step_retries: 0,
            dt_shrinks: 0,
            dt_grows: 0,
            masked_iters: 0,
            snapshots_taken: 0,
            snapshots_restored: 0,
            obs,
            obs_steps: CounterTracker::default(),
            obs_newton: CounterTracker::default(),
            obs_jacobian: CounterTracker::default(),
            obs_factorizations: CounterTracker::default(),
            obs_reuse_hits: CounterTracker::default(),
            obs_refactors: CounterTracker::default(),
            obs_rejected: CounterTracker::default(),
            obs_retries: CounterTracker::default(),
            obs_shrinks: CounterTracker::default(),
            obs_grows: CounterTracker::default(),
            obs_lanes: CounterTracker::default(),
            obs_masked: CounterTracker::default(),
            obs_sparse_analyze: CounterTracker::default(),
            obs_sparse_refactor: CounterTracker::default(),
            obs_sparse_fill: CounterTracker::default(),
            obs_snap_taken: CounterTracker::default(),
            obs_snap_restored: CounterTracker::default(),
            model,
        }
    }

    /// Seeds a fresh `lanes`-wide batch from one checkpoint: every lane
    /// starts at the snapshot's state (slots, committed unknowns,
    /// adaptive-step controller, LU validity) and the snapshot's
    /// tolerance/step-control settings, then diverges under its own
    /// inputs — the fan-out primitive tree-structured sweeps use at fork
    /// points.
    ///
    /// Per-lane step and Newton counters
    /// ([`BatchInstance::lane_steps`] /
    /// [`BatchInstance::lane_newton_iterations`]) resume from the
    /// snapshot's watermarks, so they report **path-cumulative** totals
    /// (shared prefix + own suffix) exactly as if the lane had run flat
    /// from `t = 0`. The aggregate counters reported to `obs` start at
    /// zero: only work this batch actually performs is flushed, keeping
    /// sweep-level counter conservation exact.
    ///
    /// A snapshot still on the model's shared zero-state factors
    /// ([`Snapshot::owns_factors`] `== false`) seeds lanes that keep the
    /// batched shared-factor multi-RHS solve fast path; private factors
    /// are cloned per lane.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn fork_from(snap: &Snapshot, lanes: usize, obs: Obs) -> BatchInstance {
        assert!(lanes > 0, "a batch needs at least one lane");
        let mut batch = BatchInstance::with_model(
            Arc::clone(&snap.model),
            obs,
            vec![snap.newton_tol; lanes],
            vec![snap.step_control; lanes],
        );
        // Scatter the flat snapshot state into every lane of the SoA
        // block. The reserved h / 1/h slots ride along, so the first
        // `set_lane_dt` comparison sees exactly the value a flat run
        // would have had at this point.
        for s in 0..snap.model.slot_count {
            for l in 0..lanes {
                batch.slots[s * lanes + l] = snap.slots[s];
            }
        }
        let n = snap.model.unknowns.len();
        for i in 0..n {
            for l in 0..lanes {
                batch.x[i * lanes + l] = snap.x[i];
                batch.x_prev[i * lanes + l] = snap.x_prev[i];
            }
        }
        for lane in &mut batch.lane {
            lane.cur_dt = snap.cur_dt;
            lane.accept_streak = snap.accept_streak;
            lane.time = snap.time;
            lane.steps = snap.steps;
            lane.newton_iters = snap.newton_iters;
            match &snap.lu {
                // Shared zero-state factors: `lu: None` keeps the lane
                // eligible for the batched multi-RHS solve.
                SnapshotLu::Shared { valid } => {
                    lane.lu = None;
                    lane.lu_valid = *valid && snap.model.init_lu.is_some();
                }
                SnapshotLu::Private { lu, valid } => {
                    lane.lu = Some(lu.clone());
                    lane.lu_valid = *valid;
                }
            }
        }
        batch.snapshots_restored = lanes as u64;
        batch
    }

    /// Captures a checkpoint of lane `l`: the lane's column of the SoA
    /// state gathered into a flat [`Snapshot`] interchangeable with one
    /// taken from a scalar [`Instance`] at the same point. Valid on
    /// retired lanes too — retirement freezes state, it does not destroy
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn snapshot_lane(&mut self, l: usize) -> Snapshot {
        assert!(l < self.lanes, "lane out of range");
        let lanes = self.lanes;
        let n = self.model.unknowns.len();
        let mut slots = vec![0.0; self.model.slot_count];
        for (s, slot) in slots.iter_mut().enumerate() {
            *slot = self.slots[s * lanes + l];
        }
        let mut x = vec![0.0; n];
        let mut x_prev = vec![0.0; n];
        for i in 0..n {
            x[i] = self.x[i * lanes + l];
            x_prev[i] = self.x_prev[i * lanes + l];
        }
        let lane = &self.lane[l];
        let lu = match &lane.lu {
            None => SnapshotLu::Shared {
                valid: lane.lu_valid,
            },
            Some(owned) => {
                let mut owned = owned.clone();
                owned.reset_stats();
                SnapshotLu::Private {
                    lu: owned,
                    valid: lane.lu_valid,
                }
            }
        };
        self.snapshots_taken += 1;
        Snapshot {
            model: Arc::clone(&self.model),
            slots,
            x,
            x_prev,
            newton_tol: lane.newton_tol,
            step_control: lane.step_control,
            cur_dt: lane.cur_dt,
            accept_streak: lane.accept_streak,
            time: lane.time,
            steps: lane.steps,
            newton_iters: lane.newton_iters,
            lu,
        }
    }

    /// Number of lanes in the batch (fixed at construction).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lanes still participating in stepping.
    pub fn active_lanes(&self) -> usize {
        self.lane.iter().filter(|l| l.active).count()
    }

    /// Whether lane `l` still participates in stepping.
    pub fn lane_active(&self, l: usize) -> bool {
        self.lane[l].active
    }

    /// The typed fault that retired lane `l`, if any.
    pub fn lane_error(&self, l: usize) -> Option<&AmsError> {
        self.lane[l].error.as_ref()
    }

    /// Simulated time of lane `l`'s last accepted sub-step, in seconds.
    pub fn lane_time(&self, l: usize) -> f64 {
        self.lane[l].time
    }

    /// Newton iterations spent by lane `l` (performance counter).
    pub fn lane_newton_iterations(&self, l: usize) -> u64 {
        self.lane[l].newton_iters
    }

    /// Nominal steps completed by lane `l`.
    pub fn lane_steps(&self, l: usize) -> u64 {
        self.lane[l].steps
    }

    /// Value of output `i` in lane `l` after the last accepted step.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `l` is out of range.
    pub fn output(&self, i: usize, l: usize) -> f64 {
        assert!(l < self.lanes, "lane out of range");
        self.x[self.model.output_indices[i] * self.lanes + l]
    }

    /// The shared compiled artifact this batch steps over.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// Number of unknowns in the DAE system.
    pub fn dim(&self) -> usize {
        self.model.unknowns.len()
    }

    /// Lane-iterations computed but masked out so far (see module docs).
    pub fn masked_iterations(&self) -> u64 {
        self.masked_iters
    }

    /// Retires lane `l` without an error: it stops stepping (its state
    /// and outputs freeze at the last accepted sub-step) and its slot in
    /// every batched pass becomes masked overhead. Used when scenarios in
    /// one block want different step counts. Idempotent.
    pub fn retire(&mut self, l: usize) {
        self.lane[l].active = false;
    }

    /// Writes the step slots of lane `l`. A changed step invalidates the
    /// lane's cached LU factors, exactly as the scalar path does.
    fn set_lane_dt(&mut self, l: usize, h: f64) {
        let s = self.model.dt_slot * self.lanes + l;
        if self.slots[s] != h {
            self.slots[s] = h;
            self.slots[s + self.lanes] = 1.0 / h;
            self.lane[l].lu_valid = false;
        }
    }

    /// Marks lane `l` failed for this sub-step attempt (driver decides
    /// whether to back off or retire).
    fn fail_lane(&mut self, l: usize, e: AmsError) {
        self.fault[l] = Some(e);
        self.solving[l] = false;
    }

    /// Retires lane `l` with a terminal fault.
    fn retire_with(&mut self, l: usize, e: AmsError) {
        self.lane[l].error = Some(e);
        self.lane[l].active = false;
    }

    /// Builds and factors lane `l`'s Jacobian at its current slot state.
    /// The lane's slots are gathered contiguously so the scalar stamping
    /// routine (and its in-place numeric differencing) runs unchanged —
    /// bit-identical entries to a scalar instance at the same state.
    fn build_and_factor_lane(&mut self, l: usize, iteration: u32) -> Result<(), AmsError> {
        let lanes = self.lanes;
        let model = Arc::clone(&self.model);
        self.jacobian_builds += 1;
        for s in 0..model.slot_count {
            self.gather[s] = self.slots[s * lanes + l];
        }
        stamp_jacobian(
            &model.jacobian,
            &model.programs,
            &mut self.gather,
            &mut self.scalar_stack,
            &mut self.jt,
        );
        self.lu_factorizations += 1;
        // The first refactor clones the lane's factors from the model's
        // compile-time seed — the same starting point a scalar instance's
        // workspace gets — so the lane's numeric trajectory (the sparse
        // backend's pivot sequence included) is bit-identical to a scalar
        // run. Later refactors refresh the clone in place.
        if self.lane[l].lu.is_none() {
            let mut lu = match &model.init_lu {
                Some(lu) => lu.clone(),
                // Zero-state Jacobian was singular: identity seed on the
                // model's backend, exactly like the scalar constructor.
                None => {
                    let dim = model.unknowns.len().max(1);
                    let mut ident = Triplets::new(dim, dim);
                    for i in 0..dim {
                        ident.push(i, i, 1.0);
                    }
                    AnyLu::analyze_with(model.backend, &ident).expect("identity is never singular")
                }
            };
            lu.reset_stats();
            self.lane[l].lu = Some(lu);
        }
        #[cfg(feature = "fault-inject")]
        match crate::fault::active_for(l) {
            Some(crate::fault::SolverFault::RefactorSingular) => {
                linalg::fault::arm_refactor_failure(linalg::fault::RefactorFault::Singular)
            }
            Some(crate::fault::SolverFault::RefactorNonFinite) => {
                linalg::fault::arm_refactor_failure(linalg::fault::RefactorFault::NonFinite)
            }
            _ => {}
        }
        let r = self.lane[l]
            .lu
            .as_mut()
            .expect("seeded just above")
            .refactor(&self.jt);
        match r {
            Ok(()) => {
                self.lane[l].lu_valid = true;
                Ok(())
            }
            Err(e) => {
                self.lane[l].lu_valid = false;
                Err(match e {
                    FactorError::NonFinite { .. } => AmsError::NonFinite {
                        time: self.lane[l].time,
                        iteration,
                        residual_norm: self.best[l],
                    },
                    _ => AmsError::Singular,
                })
            }
        }
    }

    /// Asserts (debug builds only) that every solving lane's batched
    /// residual is bit-identical to the scalar VM at the gathered lane
    /// state — the determinism contract the sweep layers build on.
    #[cfg(debug_assertions)]
    fn debug_check_batch_oracle(&mut self) {
        let lanes = self.lanes;
        let model = Arc::clone(&self.model);
        for l in 0..lanes {
            if !self.solving[l] {
                continue;
            }
            // A poisoned residual intentionally disagrees with the
            // scalar VM — skip the faulted lane, its siblings still hold.
            #[cfg(feature = "fault-inject")]
            if matches!(
                crate::fault::active_for(l),
                Some(crate::fault::SolverFault::ResidualNan)
            ) {
                continue;
            }
            for s in 0..model.slot_count {
                self.gather[s] = self.slots[s * lanes + l];
            }
            for (i, prog) in model.programs.iter().enumerate() {
                let scalar = prog.eval(&self.gather, &mut self.scalar_stack);
                let batch = self.res[i * lanes + l];
                debug_assert!(
                    scalar.to_bits() == batch.to_bits(),
                    "batched residual {i} lane {l} diverged from scalar VM: \
                     {batch:?} vs {scalar:?}"
                );
            }
        }
    }

    /// Runs the Newton iteration over every lane flagged in
    /// `self.solving`, with per-lane masking: a lane leaves the iteration
    /// when it converges (`self.converged`) or faults (`self.fault`);
    /// siblings keep iterating. Per lane, every decision — divergence
    /// guards, factor/reuse policy, stall test, error payloads — mirrors
    /// the scalar [`Instance`] solver exactly.
    fn newton_solve_lanes(&mut self) {
        let lanes = self.lanes;
        let n = self.model.unknowns.len();
        let model = Arc::clone(&self.model);
        for l in 0..lanes {
            self.converged[l] = false;
            self.fault[l] = None;
            if self.solving[l] {
                self.best[l] = f64::INFINITY;
                self.prev_rel[l] = f64::INFINITY;
                self.stale[l] = 0;
            }
        }
        // Injected faults (`fault-inject` builds): a residual fault
        // poisons the target lane of this solve's first residual pass, a
        // refactor fault invalidates the lane's factors so the forced
        // failure fires on its first factorization.
        #[cfg(feature = "fault-inject")]
        for l in 0..lanes {
            if !self.solving[l] {
                continue;
            }
            match crate::fault::active_for(l) {
                Some(crate::fault::SolverFault::ResidualNan) => {
                    expr::fault::poison_next_eval_lane(l)
                }
                Some(
                    crate::fault::SolverFault::RefactorSingular
                    | crate::fault::SolverFault::RefactorNonFinite,
                ) => self.lane[l].lu_valid = false,
                None => {}
            }
        }
        for iter in 1..=Instance::MAX_NEWTON_ITERS {
            let solving_count = self.solving.iter().filter(|&&s| s).count();
            if solving_count == 0 {
                return;
            }
            self.masked_iters += (lanes - solving_count) as u64;
            self.newton_iters += solving_count as u64;
            for l in 0..lanes {
                if self.solving[l] {
                    self.lane[l].newton_iters += 1;
                }
            }

            // Batched residual pass over every lane (masked lanes are
            // computed but never committed).
            for (i, prog) in model.programs.iter().enumerate() {
                prog.eval_lanes(
                    &self.slots,
                    lanes,
                    &mut self.stack,
                    &mut self.res[i * lanes..(i + 1) * lanes],
                );
            }
            #[cfg(debug_assertions)]
            self.debug_check_batch_oracle();

            // Per-lane norm fold + modified-Newton factorization policy.
            for l in 0..lanes {
                if !self.solving[l] {
                    continue;
                }
                let mut res_norm: f64 = 0.0;
                let mut finite = true;
                for i in 0..n {
                    let v = self.res[i * lanes + l];
                    finite &= v.is_finite();
                    res_norm = res_norm.max(v.abs());
                }
                if !finite {
                    self.lane[l].lu_valid = false;
                    let e = AmsError::NonFinite {
                        time: self.lane[l].time,
                        iteration: iter,
                        residual_norm: self.best[l],
                    };
                    self.fail_lane(l, e);
                    continue;
                }
                self.best[l] = self.best[l].min(res_norm);
                let fresh = !self.lane[l].lu_valid;
                self.fresh[l] = fresh;
                if fresh {
                    if let Err(e) = self.build_and_factor_lane(l, iter) {
                        self.fail_lane(l, e);
                        continue;
                    }
                    self.stale[l] = 0;
                } else {
                    self.jacobian_reuse_hits += 1;
                    self.stale[l] += 1;
                }
            }
            if !self.solving.iter().any(|&s| s) {
                continue; // every lane resolved during the fold
            }

            // Solve J·δ = −F. Negate the residual in place as the rhs
            // (masked lanes included — their values are discarded), then
            // either one batched multi-rhs solve through the shared
            // zero-state factors or per-lane gathered solves when any
            // solving lane owns its own factors.
            self.res.iter_mut().for_each(|v| *v = -*v);
            let shared = model.init_lu.is_some()
                && (0..lanes).all(|l| !self.solving[l] || self.lane[l].lu.is_none());
            if shared {
                model
                    .init_lu
                    .as_ref()
                    .expect("checked above")
                    .solve_lanes_into(&self.res, &mut self.delta, lanes, &mut self.acc);
            } else {
                for l in 0..lanes {
                    if !self.solving[l] {
                        continue;
                    }
                    for i in 0..n {
                        self.lane_rhs[i] = self.res[i * lanes + l];
                    }
                    let lu = match self.lane[l].lu.as_ref() {
                        Some(lu) => lu,
                        None => model
                            .init_lu
                            .as_ref()
                            .expect("a lane without owned factors solves through init_lu"),
                    };
                    lu.solve_into(&self.lane_rhs, &mut self.lane_delta);
                    for i in 0..n {
                        self.delta[i * lanes + l] = self.lane_delta[i];
                    }
                }
            }

            // Per-lane update, divergence guard, convergence and stall
            // tests.
            for l in 0..lanes {
                if !self.solving[l] {
                    continue;
                }
                let mut max_rel: f64 = 0.0;
                let mut update_finite = true;
                for i in 0..n {
                    let di = self.delta[i * lanes + l];
                    let xi = &mut self.slots[i * lanes + l];
                    *xi += di;
                    update_finite &= xi.is_finite();
                    max_rel = max_rel.max(di.abs() / (1.0 + xi.abs()));
                }
                if !update_finite {
                    self.lane[l].lu_valid = false;
                    let e = AmsError::NonFinite {
                        time: self.lane[l].time,
                        iteration: iter,
                        residual_norm: self.best[l],
                    };
                    self.fail_lane(l, e);
                    continue;
                }
                if max_rel < self.lane[l].newton_tol {
                    self.converged[l] = true;
                    self.solving[l] = false;
                    continue;
                }
                let contracting = max_rel < 0.5 * self.prev_rel[l];
                let stalled = !contracting || self.stale[l] >= Instance::MAX_STALE_ITERS;
                if !self.fresh[l] && stalled {
                    self.lane[l].lu_valid = false;
                    self.jacobian_refactors += 1;
                }
                self.prev_rel[l] = max_rel;
            }
        }
        // Lanes still solving exhausted the iteration budget.
        for l in 0..lanes {
            if !self.solving[l] {
                continue;
            }
            self.lane[l].lu_valid = false;
            let e = AmsError::NoConvergence {
                time: self.lane[l].time,
                iterations: Instance::MAX_NEWTON_ITERS,
                residual_norm: self.best[l],
                dt: self.h[l],
            };
            self.fail_lane(l, e);
        }
    }

    /// Commits every converged lane's iterate after a solve: refreshes
    /// the `ddt`/`idt` history (sequentially in `k`, batched over lanes),
    /// publishes the solution and advances lane time. Masked lanes'
    /// history, state and time are untouched.
    fn accept_lanes(&mut self) {
        if !self.converged.iter().any(|&c| c) {
            return;
        }
        let lanes = self.lanes;
        let n = self.model.unknowns.len();
        let model = Arc::clone(&self.model);
        for k in 0..model.ddt_progs.len() {
            model.ddt_progs[k].eval_lanes(&self.slots, lanes, &mut self.stack, &mut self.lane_out);
            let base = (model.ddt_off + k) * lanes;
            for l in 0..lanes {
                if self.converged[l] {
                    self.slots[base + l] = self.lane_out[l];
                }
            }
        }
        for k in 0..model.idt_progs.len() {
            model.idt_progs[k].eval_lanes(&self.slots, lanes, &mut self.stack, &mut self.lane_out);
            let base = (model.idt_off + k) * lanes;
            for l in 0..lanes {
                if self.converged[l] {
                    self.slots[base + l] += self.h[l] * self.lane_out[l];
                }
            }
        }
        for i in 0..n {
            for l in 0..lanes {
                if self.converged[l] {
                    let v = self.slots[i * lanes + l];
                    self.x[i * lanes + l] = v;
                    self.x_prev[i * lanes + l] = v;
                }
            }
        }
        for l in 0..lanes {
            if self.converged[l] {
                self.lane[l].time += self.h[l];
            }
        }
    }

    /// Advances every active lane by one nominal step and returns how
    /// many lanes completed it.
    ///
    /// `inputs` is a `[input][lane]` block (`input_count * lanes` values,
    /// lane index contiguous) applied with zero-order hold across any
    /// adaptive sub-steps, exactly like the scalar path. Lanes reject and
    /// back off independently under their own [`StepControl`]; a lane
    /// that exhausts its budget (or faults without one) is retired with
    /// its typed error — inspect [`BatchInstance::lane_error`] — while
    /// siblings complete normally. Retired lanes are skipped (masked) and
    /// never contribute to the return count.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != input_count * lanes`.
    pub fn try_step(&mut self, inputs: &[f64]) -> usize {
        let lanes = self.lanes;
        let n = self.model.unknowns.len();
        let n_inputs = self.model.input_names.len();
        assert_eq!(inputs.len(), n_inputs * lanes, "input lane-block arity");
        let off = self.model.input_off * lanes;
        self.slots[off..off + inputs.len()].copy_from_slice(inputs);
        let nominal = self.model.dt;

        for l in 0..lanes {
            self.stepping[l] = self.lane[l].active;
            self.remaining[l] = nominal;
            self.rejects[l] = 0;
            self.t_start[l] = self.lane[l].time;
        }
        let mut completed = 0usize;

        loop {
            // Open the next sub-step attempt per lane: pick `h`, write the
            // step slots, rewind the iterate to the last accepted state.
            // Lanes whose interval has closed snap to the exact nominal
            // boundary (same `t_start + nominal` arithmetic as scalar).
            let mut any = false;
            for l in 0..lanes {
                if !self.stepping[l] {
                    continue;
                }
                if self.remaining[l] <= nominal * 1e-12 {
                    self.lane[l].time = self.t_start[l] + nominal;
                    self.lane[l].steps += 1;
                    self.steps += 1;
                    self.stepping[l] = false;
                    completed += 1;
                    continue;
                }
                any = true;
                let h = self.lane[l].cur_dt.min(self.remaining[l]);
                self.h[l] = h;
                self.set_lane_dt(l, h);
                for i in 0..n {
                    self.slots[i * lanes + l] = self.x_prev[i * lanes + l];
                }
                self.solving[l] = true;
            }
            if !any {
                break;
            }

            self.newton_solve_lanes();
            self.accept_lanes();

            // Per-lane accept/reject bookkeeping, mirroring the scalar
            // fixed and adaptive drivers.
            for l in 0..lanes {
                if !self.stepping[l] {
                    continue;
                }
                if self.converged[l] {
                    self.remaining[l] -= self.h[l];
                    self.rejects[l] = 0;
                    if let Some(sc) = self.lane[l].step_control {
                        if self.obs.enabled() {
                            self.obs.time("amsim.dt", self.h[l]);
                        }
                        if self.lane[l].cur_dt < nominal {
                            self.lane[l].accept_streak += 1;
                            if self.lane[l].accept_streak >= sc.grow_streak {
                                self.lane[l].cur_dt = (2.0 * self.lane[l].cur_dt).min(nominal);
                                self.dt_grows += 1;
                                self.lane[l].accept_streak = 0;
                            }
                        }
                    }
                } else {
                    let e = self.fault[l].take().expect("attempted lane resolved");
                    match self.lane[l].step_control {
                        // Fixed-dt lane: surface the failure immediately.
                        None => {
                            self.retire_with(l, e);
                            self.stepping[l] = false;
                        }
                        Some(sc) => {
                            self.steps_rejected += 1;
                            self.lane[l].accept_streak = 0;
                            self.rejects[l] += 1;
                            let half = 0.5 * self.h[l];
                            if self.rejects[l] > sc.max_retries || half < sc.min_dt {
                                // Budget exhausted: retire with the last
                                // solver error. Lane state and time stay
                                // at the last accepted sub-step.
                                self.retire_with(l, e);
                                self.stepping[l] = false;
                            } else {
                                self.step_retries += 1;
                                self.lane[l].cur_dt = half;
                                self.dt_shrinks += 1;
                            }
                        }
                    }
                }
            }
        }
        completed
    }

    /// Reports counter deltas to the attached collector: the scalar
    /// `amsim.*` families aggregated over lanes, plus `amsim.batch.lanes`
    /// (lane slots provisioned by this batch) and
    /// `amsim.batch.masked_iterations`. Called automatically on drop.
    pub fn flush_counters(&mut self) {
        if self.obs.enabled() {
            let (steps, newton, jacobian) = (self.steps, self.newton_iters, self.jacobian_builds);
            let (factorizations, reuse_hits, refactors) = (
                self.lu_factorizations,
                self.jacobian_reuse_hits,
                self.jacobian_refactors,
            );
            self.obs_steps.flush(&self.obs, "amsim.steps", steps);
            self.obs_newton
                .flush(&self.obs, "amsim.newton_iterations", newton);
            self.obs_jacobian
                .flush(&self.obs, "amsim.jacobian.builds", jacobian);
            self.obs_factorizations
                .flush(&self.obs, "amsim.lu.factorizations", factorizations);
            self.obs_reuse_hits
                .flush(&self.obs, "amsim.jacobian.reuse_hits", reuse_hits);
            self.obs_refactors
                .flush(&self.obs, "amsim.jacobian.refactor", refactors);
            let (rejected, retries, shrinks, grows) = (
                self.steps_rejected,
                self.step_retries,
                self.dt_shrinks,
                self.dt_grows,
            );
            self.obs_rejected
                .flush(&self.obs, "amsim.step.rejected", rejected);
            self.obs_retries
                .flush(&self.obs, "amsim.step.retries", retries);
            self.obs_shrinks
                .flush(&self.obs, "amsim.step.dt_shrink", shrinks);
            self.obs_grows.flush(&self.obs, "amsim.step.dt_grow", grows);
            let (lanes, masked) = (self.lanes as u64, self.masked_iters);
            self.obs_lanes.flush(&self.obs, "amsim.batch.lanes", lanes);
            self.obs_masked
                .flush(&self.obs, "amsim.batch.masked_iterations", masked);
            // Sparse-backend work summed over lane-owned factors (all
            // zeros on the dense backend).
            let mut sparse = linalg::SparseStats::default();
            for lane in &self.lane {
                if let Some(lu) = &lane.lu {
                    let s = lu.sparse_stats();
                    sparse.analyze += s.analyze;
                    sparse.refactor += s.refactor;
                    sparse.fill += s.fill;
                }
            }
            self.obs_sparse_analyze
                .flush(&self.obs, "linalg.sparse.analyze", sparse.analyze);
            self.obs_sparse_refactor
                .flush(&self.obs, "linalg.sparse.refactor", sparse.refactor);
            self.obs_sparse_fill
                .flush(&self.obs, "linalg.sparse.fill", sparse.fill);
            let (taken, restored) = (self.snapshots_taken, self.snapshots_restored);
            self.obs_snap_taken
                .flush(&self.obs, "amsim.snapshot.taken", taken);
            self.obs_snap_restored
                .flush(&self.obs, "amsim.snapshot.restored", restored);
        }
    }
}

impl Drop for BatchInstance {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

/// Owned staging buffer for [`BatchInstance::try_step`] inputs in the
/// batch's `[input][lane]` structure-of-arrays layout.
///
/// Callers that drive lanes from independent sources (one device per
/// lane, one stimulus per scenario) address samples by `(input, lane)`
/// instead of hand-rolling the `i * lanes + l` stride, and hand the
/// finished frame to `try_step` via [`InputFrame::as_slice`]. Values
/// persist across steps: a lane that is masked out keeps its last
/// written samples, which is harmless — retired lanes are never
/// committed.
#[derive(Debug, Clone)]
pub struct InputFrame {
    data: Vec<f64>,
    n_inputs: usize,
    lanes: usize,
}

impl InputFrame {
    /// A zero-filled frame for `n_inputs` model inputs over `lanes`
    /// lanes.
    pub fn new(n_inputs: usize, lanes: usize) -> InputFrame {
        InputFrame {
            data: vec![0.0; n_inputs * lanes],
            n_inputs,
            lanes,
        }
    }

    /// Number of lanes the frame spans.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of model inputs per lane.
    pub fn inputs(&self) -> usize {
        self.n_inputs
    }

    /// Writes input `i` of lane `l`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `l` is out of range.
    pub fn set(&mut self, i: usize, l: usize, v: f64) {
        assert!(i < self.n_inputs, "input out of range");
        assert!(l < self.lanes, "lane out of range");
        self.data[i * self.lanes + l] = v;
    }

    /// Drives every input of lane `l` with the same sample — the common
    /// case of a single stimulus broadcast to all of a device's inputs.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn broadcast(&mut self, l: usize, v: f64) {
        assert!(l < self.lanes, "lane out of range");
        for i in 0..self.n_inputs {
            self.data[i * self.lanes + l] = v;
        }
    }

    /// The frame in [`BatchInstance::try_step`]'s expected layout.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl BatchInstance {
    /// A zero-filled [`InputFrame`] shaped for this batch (the model's
    /// input count × the batch's lane count).
    pub fn input_frame(&self) -> InputFrame {
        InputFrame::new(self.model.input_names().len(), self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use vams_parser::parse_module;

    #[test]
    fn input_frame_addresses_the_soa_layout() {
        let mut frame = InputFrame::new(2, 3);
        assert_eq!(frame.inputs(), 2);
        assert_eq!(frame.lanes(), 3);
        frame.set(0, 1, 0.25);
        frame.set(1, 2, 0.5);
        assert_eq!(frame.as_slice(), &[0.0, 0.25, 0.0, 0.0, 0.0, 0.5]);
        frame.broadcast(0, 1.0);
        assert_eq!(frame.as_slice(), &[1.0, 0.25, 0.0, 1.0, 0.0, 0.5]);
    }

    const RC1: &str = "module rc(in, out);
        input in; output out;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) res;
        branch (out, gnd) cap;
        analog begin
          V(res) <+ 5k * I(res);
          I(cap) <+ 25n * ddt(V(cap));
        end
      endmodule";

    /// Stiff diode clamp: small sub-steps stiffen the cap conductance, so
    /// hard input swings reject at the nominal step and need backoff.
    const STIFF_CLAMP: &str = "module clamp(in, out);
        input in; output out;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) r;
        branch (out, gnd) d;
        branch (out, gnd) c;
        analog begin
          V(r) <+ 1k * I(r);
          I(d) <+ 1p * (exp(V(d) / 5m) - 1);
          I(c) <+ 1n * ddt(V(c));
        end
      endmodule";

    /// Per-lane step amplitudes exercising distinct trajectories.
    fn amps(lanes: usize) -> Vec<f64> {
        (0..lanes).map(|l| 0.25 + 0.5 * l as f64).collect()
    }

    #[test]
    fn batch_matches_scalar_bitwise_on_linear_circuit() {
        let m = parse_module(RC1).unwrap();
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let lanes = 4;
        let amps = amps(lanes);
        let mut batch = model.batch_instance(lanes);
        let mut scalars: Vec<Instance> = (0..lanes).map(|_| model.instance()).collect();
        let mut inputs = vec![0.0; lanes];
        for k in 0..100 {
            for (l, a) in amps.iter().enumerate() {
                inputs[l] = if (k / 20) % 2 == 0 { *a } else { 0.0 };
            }
            let done = batch.try_step(&inputs);
            assert_eq!(done, lanes);
            for (l, s) in scalars.iter_mut().enumerate() {
                s.try_step(&inputs[l..=l]).unwrap();
                assert_eq!(
                    batch.output(0, l).to_bits(),
                    s.output(0).to_bits(),
                    "lane {l} step {k}"
                );
                assert_eq!(batch.lane_time(l).to_bits(), s.time().to_bits());
            }
        }
        for (l, s) in scalars.iter().enumerate() {
            assert_eq!(batch.lane_newton_iterations(l), s.newton_iterations());
            assert_eq!(batch.lane_steps(l), 100);
        }
        // A linear model keeps every lane on the shared zero-state
        // factors: no per-lane factorization ever happens.
        assert_eq!(batch.lu_factorizations, 0);
    }

    #[test]
    fn batch_matches_scalar_bitwise_under_adaptive_backoff() {
        let m = parse_module(STIFF_CLAMP).unwrap();
        let sc = StepControl::new(1e-12);
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .step_control(sc)
            .compile()
            .unwrap();
        let lanes = 3;
        // Lane amplitudes chosen so backoff activity differs per lane.
        let amps = [0.2, 1.0, 2.5];
        let mut batch = model.batch_instance(lanes);
        let mut scalars: Vec<Instance> = (0..lanes).map(|_| model.instance()).collect();
        let mut inputs = vec![0.0; lanes];
        for k in 0..40 {
            for (l, a) in amps.iter().enumerate() {
                inputs[l] = if (k / 10) % 2 == 0 { *a } else { 0.0 };
            }
            let done = batch.try_step(&inputs);
            assert_eq!(done, lanes, "step {k}");
            for (l, s) in scalars.iter_mut().enumerate() {
                s.try_step(&inputs[l..=l]).unwrap();
                assert_eq!(
                    batch.output(0, l).to_bits(),
                    s.output(0).to_bits(),
                    "lane {l} step {k}"
                );
                assert_eq!(batch.lane_time(l).to_bits(), s.time().to_bits());
            }
        }
        let scalar_iters: u64 = scalars.iter().map(Instance::newton_iterations).sum();
        assert_eq!(batch.newton_iters, scalar_iters);
        let scalar_rejected: u64 = scalars.iter().map(Instance::steps_rejected).sum();
        assert_eq!(batch.steps_rejected, scalar_rejected);
        assert!(batch.steps_rejected > 0, "want backoff activity");
        assert!(
            batch.masked_iterations() > 0,
            "lanes with different convergence depths must mask"
        );
    }

    #[test]
    fn faulted_lane_retires_without_disturbing_siblings() {
        let m = parse_module(STIFF_CLAMP).unwrap();
        // Fixed-dt stepping: the stiff lane has no backoff to rescue it.
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let lanes = 4;
        let bad = 2usize;
        let mut inputs = vec![0.0; lanes];
        let drive = |l: usize, k: usize| -> f64 {
            if l == bad {
                if k >= 5 {
                    80.0
                } else {
                    0.05
                }
            } else {
                0.02 + 0.03 * l as f64
            }
        };
        let mut batch = model.batch_instance(lanes);
        let mut scalars: Vec<Instance> = (0..lanes).map(|_| model.instance()).collect();
        let mut scalar_err = None;
        for k in 0..20 {
            for (l, slot) in inputs.iter_mut().enumerate() {
                *slot = drive(l, k);
            }
            batch.try_step(&inputs);
            for (l, s) in scalars.iter_mut().enumerate() {
                if l == bad {
                    if scalar_err.is_none() {
                        scalar_err = s.try_step(&inputs[l..=l]).err();
                    }
                    continue;
                }
                s.try_step(&inputs[l..=l]).unwrap();
                assert_eq!(
                    batch.output(0, l).to_bits(),
                    s.output(0).to_bits(),
                    "sibling lane {l} step {k}"
                );
            }
        }
        let scalar_err = scalar_err.expect("the stiff scenario must fail the scalar run too");
        assert!(!batch.lane_active(bad), "faulted lane must retire");
        assert_eq!(batch.active_lanes(), lanes - 1);
        assert_eq!(
            batch.lane_error(bad),
            Some(&scalar_err),
            "typed fault must match the scalar run's error"
        );
        // The faulted lane froze at its last accepted state and time.
        assert_eq!(batch.lane_steps(bad), 5);
        assert!(batch.masked_iterations() > 0);
    }

    #[test]
    fn batch_counters_report_through_obs() {
        let m = parse_module(RC1).unwrap();
        let obs = Obs::recording();
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let mut batch = model
            .batch_instance_builder(5)
            .collector(obs.clone())
            .build()
            .unwrap();
        batch.retire(4); // one masked lane from the start
        for _ in 0..10 {
            batch.try_step(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        }
        drop(batch);
        let report = obs.report().expect("recording collector has a report");
        assert_eq!(report.counter("amsim.batch.lanes"), 5);
        assert_eq!(report.counter("amsim.steps"), 4 * 10);
        assert!(report.counter("amsim.batch.masked_iterations") > 0);
        assert!(report.counter("amsim.newton_iterations") > 0);
    }

    #[test]
    fn per_lane_settings_validate() {
        let m = parse_module(RC1).unwrap();
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        assert!(matches!(
            model
                .batch_instance_builder(2)
                .lane_newton_tol(1, -1.0)
                .build(),
            Err(AmsError::InvalidTolerance { .. })
        ));
        assert!(matches!(
            model
                .batch_instance_builder(2)
                .lane_step_control(0, StepControl::new(1.0))
                .build(),
            Err(AmsError::InvalidStepControl { .. })
        ));
        // Per-lane tolerances actually take effect: a loose lane stops
        // iterating earlier than a tight one.
        let mut batch = model
            .batch_instance_builder(2)
            .lane_newton_tol(0, 1e-2)
            .lane_newton_tol(1, 1e-14)
            .build()
            .unwrap();
        for _ in 0..5 {
            batch.try_step(&[1.0, 1.0]);
        }
        assert!(batch.lane_newton_iterations(0) < batch.lane_newton_iterations(1));
    }
}
