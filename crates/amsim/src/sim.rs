use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use amsvp_core::acquire::acquire;
use amsvp_core::{conservative_relations, AbstractError, OutputSpec};
use expr::Expr;
use linalg::{LuFactors, Matrix};
use netlist::{QExpr, Quantity};
use obs::{CounterTracker, Obs};
use vams_ast::Module;

/// Errors from the reference simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum AmsError {
    /// The module could not be lowered.
    Acquire(AbstractError),
    /// The DAE system is not square — the description is over- or
    /// under-constrained.
    NotSquare {
        /// Number of equations found.
        equations: usize,
        /// Number of unknown quantities found.
        unknowns: usize,
    },
    /// The Newton Jacobian is singular.
    Singular,
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Simulated time at which convergence failed.
        time: f64,
        /// Newton iterations spent before giving up.
        iterations: u32,
    },
    /// An output spec does not name a quantity of the module.
    UnknownOutput {
        /// The requested spec, as written (`"V(ghost)"`).
        spec: String,
        /// Name of the module that defines no such quantity.
        module: String,
    },
    /// The time step must be positive and finite.
    InvalidTimeStep {
        /// The offending step, in seconds.
        dt: f64,
    },
    /// The co-simulation worker thread terminated (panicked or was shut
    /// down) while a step was outstanding.
    CosimDisconnected,
}

impl fmt::Display for AmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmsError::Acquire(e) => write!(f, "acquisition failed: {e}"),
            AmsError::NotSquare {
                equations,
                unknowns,
            } => write!(
                f,
                "DAE system is not square: {equations} equations, {unknowns} unknowns"
            ),
            AmsError::Singular => write!(f, "newton jacobian is singular"),
            AmsError::NoConvergence { time, iterations } => write!(
                f,
                "newton iteration did not converge at t = {time} s after {iterations} iterations"
            ),
            AmsError::UnknownOutput { spec, module } => write!(
                f,
                "module `{module}` defines no quantity matching output spec `{spec}`"
            ),
            AmsError::InvalidTimeStep { dt } => {
                write!(f, "invalid time step {dt}; must be positive and finite")
            }
            AmsError::CosimDisconnected => {
                write!(f, "co-simulation worker thread disconnected")
            }
        }
    }
}

impl Error for AmsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AmsError::Acquire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AbstractError> for AmsError {
    fn from(e: AbstractError) -> Self {
        AmsError::Acquire(e)
    }
}

#[derive(Debug, Clone, Copy)]
enum Placeholder {
    /// `ddt` history: value of the operand at the previous step.
    Ddt(usize),
    /// `idt` accumulator state.
    Idt(usize),
}

/// Interpreted Newton/backward-Euler transient simulator over the full
/// conservative equation system of one Verilog-AMS module.
///
/// See the [crate-level documentation](crate) for the role this plays in
/// the reproduction and an example.
pub struct AmsSimulator {
    dt: f64,
    unknowns: Vec<Quantity>,
    index: BTreeMap<Quantity, usize>,
    /// Discretized residual equations `F_i = 0`.
    equations: Vec<QExpr>,
    /// Symbolic Jacobian entries: per equation, `(column, dF_i/dx_j)`;
    /// `None` expression ⇒ numeric differencing at evaluation time.
    jacobian: Vec<Vec<(usize, Option<QExpr>)>>,
    placeholders: BTreeMap<Quantity, Placeholder>,
    ddt_inner: Vec<QExpr>,
    idt_inner: Vec<QExpr>,
    ddt_prev: Vec<f64>,
    idt_state: Vec<f64>,
    input_names: Vec<String>,
    input_values: Vec<f64>,
    output_indices: Vec<usize>,
    x: Vec<f64>,
    x_prev: Vec<f64>,
    time: f64,
    steps: u64,
    newton_iters: u64,
    jacobian_builds: u64,
    obs: Obs,
    obs_steps: CounterTracker,
    obs_newton: CounterTracker,
    obs_jacobian: CounterTracker,
}

/// Builder for an [`AmsSimulator`] reference transient.
///
/// Mirrors the workspace builder idiom (`new(...)` → chained setters →
/// `build()`):
///
/// ```
/// use amsim::Simulation;
///
/// let src = "
/// module rc(in, out);
///   input in; output out;
///   electrical in, out, gnd; ground gnd;
///   branch (in, out) res;
///   branch (out, gnd) cap;
///   analog begin
///     V(res) <+ 5k * I(res);
///     I(cap) <+ 25n * ddt(V(cap));
///   end
/// endmodule";
/// let module = vams_parser::parse_module(src)?;
/// let mut sim = Simulation::new(&module)
///     .dt(1e-6)
///     .output("V(out)")
///     .build()?;
/// sim.step(&[1.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use = "call build() to construct the simulator"]
#[derive(Debug)]
pub struct Simulation<'m> {
    module: &'m Module,
    dt: f64,
    outputs: Vec<OutputSpec>,
    obs: Obs,
}

impl<'m> Simulation<'m> {
    /// Starts a reference simulation of `module` with a 1 µs step;
    /// override with the chained setters.
    pub fn new(module: &'m Module) -> Self {
        Simulation {
            module,
            dt: 1e-6,
            outputs: Vec::new(),
            obs: Obs::none(),
        }
    }

    /// Sets the fixed time step in seconds.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Adds an observed output (`"V(out)"`, `"I(cap)"`, or a variable
    /// name). May be called repeatedly; without any call, the module's
    /// first `output` port is observed.
    pub fn output(mut self, spec: impl Into<OutputSpec>) -> Self {
        self.outputs.push(spec.into());
        self
    }

    /// Attaches an instrumentation collector; the simulator reports
    /// `amsim.steps`, `amsim.newton_iterations` and
    /// `amsim.jacobian_builds` through it.
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Lowers the module into its full DAE system and prepares the
    /// Newton solver.
    ///
    /// # Errors
    ///
    /// * [`AmsError::Acquire`] when the module cannot be lowered;
    /// * [`AmsError::NotSquare`] for ill-posed descriptions;
    /// * [`AmsError::UnknownOutput`] for bad output specs;
    /// * [`AmsError::InvalidTimeStep`] for a bad `dt`.
    pub fn build(self) -> Result<AmsSimulator, AmsError> {
        AmsSimulator::construct(self.module, self.dt, self.outputs, self.obs)
    }
}

impl AmsSimulator {
    /// Lowers a module into its full DAE system and prepares the Newton
    /// solver at fixed step `dt`. `outputs` use the same syntax as the
    /// abstraction pipeline (`"V(out)"`, `"I(cap)"`).
    ///
    /// # Errors
    ///
    /// * [`AmsError::Acquire`] when the module cannot be lowered;
    /// * [`AmsError::NotSquare`] for ill-posed descriptions;
    /// * [`AmsError::UnknownOutput`] for bad output specs;
    /// * [`AmsError::InvalidTimeStep`] for a bad `dt`.
    #[deprecated(
        since = "0.1.0",
        note = "use amsim::Simulation::new(module).dt(..).output(..).build()"
    )]
    pub fn new(module: &Module, dt: f64, outputs: &[&str]) -> Result<Self, AmsError> {
        let specs = outputs.iter().map(|s| OutputSpec::parse(s)).collect();
        AmsSimulator::construct(module, dt, specs, Obs::none())
    }

    fn construct(
        module: &Module,
        dt: f64,
        output_specs: Vec<OutputSpec>,
        obs: Obs,
    ) -> Result<Self, AmsError> {
        if !(dt.is_finite() && dt > 0.0) {
            return Err(AmsError::InvalidTimeStep { dt });
        }
        let model = acquire(module)?;
        let mut zeros: Vec<QExpr> = conservative_relations(&model)?
            .into_iter()
            .map(|r| r.zero)
            .collect();
        // Signal-flow variables join the system as explicit equations.
        for (name, def) in &model.folded_vars {
            zeros.push(Expr::var(Quantity::var(name.clone())) - def.clone());
        }

        // Unknowns: every non-input quantity referenced anywhere.
        let mut index: BTreeMap<Quantity, usize> = BTreeMap::new();
        for z in &zeros {
            for q in z.variables() {
                if !q.is_input() && !index.contains_key(&q) {
                    index.insert(q, 0);
                }
            }
        }
        let unknowns: Vec<Quantity> = index.keys().cloned().collect();
        for (i, q) in unknowns.iter().enumerate() {
            *index.get_mut(q).expect("just built") = i;
        }
        if zeros.len() != unknowns.len() {
            return Err(AmsError::NotSquare {
                equations: zeros.len(),
                unknowns: unknowns.len(),
            });
        }

        // Discretize: replace analog operators with history placeholders.
        let mut placeholders = BTreeMap::new();
        let mut ddt_inner = Vec::new();
        let mut idt_inner = Vec::new();
        let equations: Vec<QExpr> = zeros
            .iter()
            .map(|z| {
                discretize(z, dt, &mut placeholders, &mut ddt_inner, &mut idt_inner).simplified()
            })
            .collect();

        // Symbolic Jacobian.
        let jacobian = equations
            .iter()
            .map(|eq| {
                eq.current_variables()
                    .into_iter()
                    .filter_map(|q| {
                        if q.is_input() || placeholders.contains_key(&q) {
                            return None;
                        }
                        let col = index[&q];
                        Some((col, eq.derivative(&q)))
                    })
                    .collect()
            })
            .collect();

        let n = unknowns.len();
        let input_names = model.inputs.clone();
        let mut sim = AmsSimulator {
            dt,
            unknowns,
            index,
            equations,
            jacobian,
            placeholders,
            ddt_prev: vec![0.0; ddt_inner.len()],
            idt_state: vec![0.0; idt_inner.len()],
            ddt_inner,
            idt_inner,
            input_values: vec![0.0; input_names.len()],
            input_names,
            output_indices: Vec::new(),
            x: vec![0.0; n],
            x_prev: vec![0.0; n],
            time: 0.0,
            steps: 0,
            newton_iters: 0,
            jacobian_builds: 0,
            obs,
            obs_steps: CounterTracker::default(),
            obs_newton: CounterTracker::default(),
            obs_jacobian: CounterTracker::default(),
        };
        let mut specs = output_specs;
        if specs.is_empty() {
            let first = model
                .outputs
                .first()
                .cloned()
                .ok_or_else(|| AmsError::UnknownOutput {
                    spec: "<no output port>".to_string(),
                    module: module.name.clone(),
                })?;
            specs.push(OutputSpec::Potential(first));
        }
        for spec in &specs {
            sim.output_indices
                .push(sim.resolve_output(spec, &model, &module.name)?);
        }
        Ok(sim)
    }

    fn resolve_output(
        &self,
        spec: &OutputSpec,
        model: &amsvp_core::AcquiredModel,
        module: &str,
    ) -> Result<usize, AmsError> {
        let unknown = || AmsError::UnknownOutput {
            spec: spec.to_string(),
            module: module.to_string(),
        };
        let q = spec.resolve(model).map_err(|_| unknown())?;
        self.index.get(&q).copied().ok_or_else(unknown)
    }

    /// Reports counter deltas (`amsim.steps`, `amsim.newton_iterations`,
    /// `amsim.jacobian_builds`) to the attached collector. Called
    /// automatically on drop; call explicitly to snapshot mid-run.
    pub fn flush_counters(&mut self) {
        if self.obs.enabled() {
            let (steps, newton, jacobian) = (self.steps, self.newton_iters, self.jacobian_builds);
            self.obs_steps.flush(&self.obs, "amsim.steps", steps);
            self.obs_newton
                .flush(&self.obs, "amsim.newton_iterations", newton);
            self.obs_jacobian
                .flush(&self.obs, "amsim.jacobian_builds", jacobian);
        }
    }

    /// Time step in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Input names in `step` order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Newton iterations performed so far (performance counter).
    pub fn newton_iterations(&self) -> u64 {
        self.newton_iters
    }

    /// Jacobian assemblies/factorizations so far (performance counter).
    pub fn jacobian_builds(&self) -> u64 {
        self.jacobian_builds
    }

    /// Number of unknowns in the DAE system.
    pub fn dim(&self) -> usize {
        self.unknowns.len()
    }

    /// Value of output `i` after the last step.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output(&self, i: usize) -> f64 {
        self.x[self.output_indices[i]]
    }

    /// Value of an arbitrary quantity.
    pub fn value(&self, q: &Quantity) -> Option<f64> {
        self.index.get(q).map(|&i| self.x[i])
    }

    // An associated function (not a method) so `eval` can borrow `self`
    // fields disjointly inside the environment closure.
    #[allow(clippy::too_many_arguments)]
    fn eval_env(
        x: &[f64],
        index: &BTreeMap<Quantity, usize>,
        placeholders: &BTreeMap<Quantity, Placeholder>,
        ddt_prev: &[f64],
        idt_state: &[f64],
        input_names: &[String],
        input_values: &[f64],
        q: &Quantity,
    ) -> Option<f64> {
        if let Some(ph) = placeholders.get(q) {
            return Some(match ph {
                Placeholder::Ddt(k) => ddt_prev[*k],
                Placeholder::Idt(k) => idt_state[*k],
            });
        }
        match q {
            Quantity::Input(n) => input_names
                .iter()
                .position(|i| i == n)
                .map(|i| input_values[i]),
            other => index.get(other).map(|&i| x[i]),
        }
    }

    fn eval(&self, e: &QExpr, x: &[f64]) -> f64 {
        e.eval(&mut |q: &Quantity, _| {
            Self::eval_env(
                x,
                &self.index,
                &self.placeholders,
                &self.ddt_prev,
                &self.idt_state,
                &self.input_names,
                &self.input_values,
                q,
            )
        })
        .expect("all leaves resolvable by construction")
    }

    /// Advances the simulation by one step.
    ///
    /// # Errors
    ///
    /// [`AmsError::NoConvergence`] / [`AmsError::Singular`] on Newton
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    pub fn try_step(&mut self, inputs: &[f64]) -> Result<(), AmsError> {
        assert_eq!(inputs.len(), self.input_values.len(), "input arity");
        self.input_values.copy_from_slice(inputs);
        let n = self.dim();
        // Warm start from the previous solution.
        let mut x = self.x_prev.clone();
        let mut converged = false;
        for _ in 0..25 {
            self.newton_iters += 1;
            // Residual.
            let f: Vec<f64> = self.equations.iter().map(|e| self.eval(e, &x)).collect();
            // Jacobian: interpreted symbolic entries, numeric fallback.
            self.jacobian_builds += 1;
            let mut jm = Matrix::zeros(n, n);
            for (i, row) in self.jacobian.iter().enumerate() {
                for (col, d) in row {
                    let v = match d {
                        Some(expr) => self.eval(expr, &x),
                        None => {
                            // Central difference on the residual.
                            let h = 1e-7 * (1.0 + x[*col].abs());
                            let mut xp = x.clone();
                            xp[*col] += h;
                            let mut xm = x.clone();
                            xm[*col] -= h;
                            (self.eval(&self.equations[i], &xp)
                                - self.eval(&self.equations[i], &xm))
                                / (2.0 * h)
                        }
                    };
                    jm.stamp(i, *col, v);
                }
            }
            let lu = LuFactors::factor(&jm).map_err(|_| AmsError::Singular)?;
            let minus_f: Vec<f64> = f.iter().map(|v| -v).collect();
            let delta = lu.solve(&minus_f);
            let mut max_rel: f64 = 0.0;
            for (xi, di) in x.iter_mut().zip(&delta) {
                *xi += di;
                max_rel = max_rel.max(di.abs() / (1.0 + xi.abs()));
            }
            if max_rel < 1e-10 {
                converged = true;
                break;
            }
        }
        if !converged {
            return Err(AmsError::NoConvergence {
                time: self.time,
                iterations: 25,
            });
        }
        // Accept the step: update history placeholders.
        for (k, inner) in self.ddt_inner.iter().enumerate() {
            self.ddt_prev[k] = self.eval(inner, &x);
        }
        for (k, inner) in self.idt_inner.iter().enumerate() {
            self.idt_state[k] += self.dt * self.eval(inner, &x);
        }
        self.x.copy_from_slice(&x);
        self.x_prev.copy_from_slice(&x);
        self.time += self.dt;
        self.steps += 1;
        Ok(())
    }

    /// Advances the simulation by one step.
    ///
    /// # Panics
    ///
    /// Panics on Newton failure (see [`AmsSimulator::try_step`]) or input
    /// arity mismatch.
    pub fn step(&mut self, inputs: &[f64]) {
        self.try_step(inputs)
            .unwrap_or_else(|e| panic!("amsim step failed: {e}"));
    }
}

impl Drop for AmsSimulator {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

/// Replaces `ddt`/`idt` with backward-Euler forms over history
/// placeholders (`__amsim_ddt{k}` / `__amsim_idt{k}` variables).
fn discretize(
    e: &QExpr,
    dt: f64,
    placeholders: &mut BTreeMap<Quantity, Placeholder>,
    ddt_inner: &mut Vec<QExpr>,
    idt_inner: &mut Vec<QExpr>,
) -> QExpr {
    match e {
        Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => e.clone(),
        Expr::Neg(a) => -discretize(a, dt, placeholders, ddt_inner, idt_inner),
        Expr::Bin(op, a, b) => Expr::bin(
            *op,
            discretize(a, dt, placeholders, ddt_inner, idt_inner),
            discretize(b, dt, placeholders, ddt_inner, idt_inner),
        ),
        Expr::Call(f, args) => Expr::Call(
            *f,
            args.iter()
                .map(|a| discretize(a, dt, placeholders, ddt_inner, idt_inner))
                .collect(),
        ),
        Expr::Cond(c, t, el) => Expr::cond(
            discretize(c, dt, placeholders, ddt_inner, idt_inner),
            discretize(t, dt, placeholders, ddt_inner, idt_inner),
            discretize(el, dt, placeholders, ddt_inner, idt_inner),
        ),
        Expr::Ddt(inner) => {
            let inner = discretize(inner, dt, placeholders, ddt_inner, idt_inner);
            let k = ddt_inner.len();
            let q = Quantity::var(format!("__amsim_ddt{k}"));
            placeholders.insert(q.clone(), Placeholder::Ddt(k));
            ddt_inner.push(inner.clone());
            (inner - Expr::var(q)) * Expr::num(1.0 / dt)
        }
        Expr::Idt(inner) => {
            let inner = discretize(inner, dt, placeholders, ddt_inner, idt_inner);
            let k = idt_inner.len();
            let q = Quantity::var(format!("__amsim_idt{k}"));
            placeholders.insert(q.clone(), Placeholder::Idt(k));
            idt_inner.push(inner.clone());
            Expr::var(q) + Expr::num(dt) * inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vams_parser::parse_module;

    const RC1: &str = "module rc(in, out);
        input in; output out;
        parameter real R = 5k;
        parameter real C = 25n;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) res;
        branch (out, gnd) cap;
        analog begin
          V(res) <+ R * I(res);
          I(cap) <+ C * ddt(V(cap));
        end
      endmodule";

    #[test]
    fn rc_step_response() {
        let m = parse_module(RC1).unwrap();
        let tau = 5e3 * 25e-9;
        let mut sim = Simulation::new(&m)
            .dt(tau / 200.0)
            .output("V(out)")
            .build()
            .unwrap();
        for _ in 0..200 {
            sim.step(&[1.0]);
        }
        let analytic = 1.0 - (-1.0_f64).exp();
        assert!((sim.output(0) - analytic).abs() < 3e-3);
        assert!((sim.time() - tau).abs() < 1e-12);
        // Linear system: one Newton iteration reaches machine precision,
        // the second confirms convergence.
        assert!(sim.newton_iterations() <= 2 * 200 + 2);
    }

    #[test]
    fn system_dimensions_are_square() {
        let m = parse_module(RC1).unwrap();
        let sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        // RC1: unknowns = V[res], I[res], V[cap], I[cap], V(out) = 5.
        assert_eq!(sim.dim(), 5);
        assert_eq!(sim.input_names(), &["in".to_string()]);
    }

    #[test]
    fn branch_quantities_observable() {
        let m = parse_module(RC1).unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .output("I(cap)")
            .build()
            .unwrap();
        sim.step(&[1.0]);
        let out = sim.output(0);
        let icap = sim.output(1);
        // KCL: the cap current equals the resistor current (in−out)/R.
        assert!((icap - (1.0 - out) / 5e3).abs() < 1e-9);
        assert_eq!(sim.value(&Quantity::node_v("out")), Some(out));
    }

    #[test]
    fn nonlinear_diode_converges() {
        // Diode + resistor: V(d) across an exponential device.
        let m = parse_module(
            "module dio(in, out);
               input in; output out;
               electrical in, out, gnd;
               ground gnd;
               branch (in, out) r;
               branch (out, gnd) d;
               analog begin
                 V(r) <+ 1k * I(r);
                 I(d) <+ 1e-12 * (exp(V(d) / 0.02585) - 1);
               end
             endmodule",
        )
        .unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        sim.step(&[0.7]);
        let vd = sim.output(0);
        // Diode drop in a sane region; the current balances through R.
        assert!(vd > 0.3 && vd < 0.7, "diode voltage {vd}");
        let ir = (0.7 - vd) / 1e3;
        let id = 1e-12 * ((vd / 0.02585).exp() - 1.0);
        assert!((ir - id).abs() < 1e-9 * ir.abs().max(1e-12));
    }

    #[test]
    fn output_specs_validated() {
        let m = parse_module(RC1).unwrap();
        assert!(matches!(
            Simulation::new(&m).dt(1e-6).output("V(ghost)").build(),
            Err(AmsError::UnknownOutput { .. })
        ));
        assert!(matches!(
            Simulation::new(&m).dt(-1.0).output("V(out)").build(),
            Err(AmsError::InvalidTimeStep { .. })
        ));
    }

    #[test]
    fn signal_flow_vars_join_the_system() {
        let m = parse_module(
            "module amp(i, o); input i; output o;
               electrical i, o, gnd; ground gnd;
               real y;
               analog begin
                 y = 3 * V(i, gnd);
                 V(o, gnd) <+ y;
               end
             endmodule",
        )
        .unwrap();
        let mut sim = Simulation::new(&m).dt(1e-6).output("V(o)").build().unwrap();
        sim.step(&[0.5]);
        assert!((sim.output(0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn matches_abstracted_model_on_rc() {
        use amsvp_core::Abstraction;
        let m = parse_module(RC1).unwrap();
        let tau = 5e3 * 25e-9;
        let dt = tau / 100.0;
        let mut reference = Simulation::new(&m).dt(dt).output("V(out)").build().unwrap();
        let mut abstracted = Abstraction::new(&m).dt(dt).build().unwrap();
        // Same discretization (backward Euler at the same step) ⇒ the two
        // must agree to solver tolerance, step by step.
        for k in 0..300 {
            let u = if (k / 100) % 2 == 0 { 1.0 } else { 0.0 };
            reference.step(&[u]);
            abstracted.step(&[u]);
            assert!(
                (reference.output(0) - abstracted.output(0)).abs() < 1e-8,
                "step {k}: {} vs {}",
                reference.output(0),
                abstracted.output(0)
            );
        }
    }
}
