use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use amsvp_core::acquire::acquire;
use amsvp_core::{conservative_relations, AbstractError, OutputSpec};
use expr::vm::{self, Program};
use expr::Expr;
use linalg::{AnyLu, FactorError, Factorization, SolverKind, Triplets};
use netlist::{QExpr, Quantity};
use obs::{CounterTracker, Obs};
use vams_ast::Module;

/// Errors from the reference simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum AmsError {
    /// The module could not be lowered.
    Acquire(AbstractError),
    /// The DAE system is not square — the description is over- or
    /// under-constrained.
    NotSquare {
        /// Number of equations found.
        equations: usize,
        /// Number of unknown quantities found.
        unknowns: usize,
    },
    /// The Newton Jacobian is singular.
    Singular,
    /// Newton iteration failed to converge.
    NoConvergence {
        /// Simulated time at which convergence failed.
        time: f64,
        /// Newton iterations spent before giving up.
        iterations: u32,
        /// Best residual infinity-norm seen across the iterations.
        residual_norm: f64,
        /// Time step the failing solve was attempted at (the nominal
        /// step, or the backed-off sub-step under adaptive stepping).
        dt: f64,
    },
    /// A Newton iterate produced a NaN/Inf residual or Jacobian entry —
    /// silent numerical corruption converted into a typed error.
    NonFinite {
        /// Simulated time at which the corruption was detected.
        time: f64,
        /// Newton iteration (1-based) that produced the non-finite value.
        iteration: u32,
        /// Best *finite* residual infinity-norm seen before corruption
        /// (infinity when the very first evaluation was already bad).
        residual_norm: f64,
    },
    /// An output spec does not name a quantity of the module.
    UnknownOutput {
        /// The requested spec, as written (`"V(ghost)"`).
        spec: String,
        /// Name of the module that defines no such quantity.
        module: String,
    },
    /// The time step must be positive and finite.
    InvalidTimeStep {
        /// The offending step, in seconds.
        dt: f64,
    },
    /// The Newton convergence tolerance must be positive and finite.
    InvalidTolerance {
        /// The offending tolerance.
        tol: f64,
    },
    /// An adaptive step-control configuration is inconsistent: `min_dt`
    /// must be positive, finite, and no larger than the nominal step.
    InvalidStepControl {
        /// The offending floor, in seconds.
        min_dt: f64,
        /// The nominal step it must not exceed, in seconds.
        dt: f64,
    },
    /// The co-simulation worker thread terminated (panicked or was shut
    /// down) while a step was outstanding.
    CosimDisconnected,
}

impl fmt::Display for AmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmsError::Acquire(e) => write!(f, "acquisition failed: {e}"),
            AmsError::NotSquare {
                equations,
                unknowns,
            } => write!(
                f,
                "DAE system is not square: {equations} equations, {unknowns} unknowns"
            ),
            AmsError::Singular => write!(f, "newton jacobian is singular"),
            AmsError::NoConvergence {
                time,
                iterations,
                residual_norm,
                dt,
            } => write!(
                f,
                "newton iteration did not converge at t = {time} s after {iterations} \
                 iterations (dt = {dt} s, best residual norm {residual_norm:e})"
            ),
            AmsError::NonFinite {
                time,
                iteration,
                residual_norm,
            } => write!(
                f,
                "non-finite value in newton iteration {iteration} at t = {time} s \
                 (best residual norm {residual_norm:e})"
            ),
            AmsError::UnknownOutput { spec, module } => write!(
                f,
                "module `{module}` defines no quantity matching output spec `{spec}`"
            ),
            AmsError::InvalidTimeStep { dt } => {
                write!(f, "invalid time step {dt}; must be positive and finite")
            }
            AmsError::InvalidTolerance { tol } => {
                write!(
                    f,
                    "invalid newton tolerance {tol}; must be positive and finite"
                )
            }
            AmsError::InvalidStepControl { min_dt, dt } => {
                write!(
                    f,
                    "invalid step control: min_dt {min_dt} must be positive, finite \
                     and no larger than the nominal step {dt}"
                )
            }
            AmsError::CosimDisconnected => {
                write!(f, "co-simulation worker thread disconnected")
            }
        }
    }
}

impl Error for AmsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AmsError::Acquire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AbstractError> for AmsError {
    fn from(e: AbstractError) -> Self {
        AmsError::Acquire(e)
    }
}

/// Adaptive time-stepping policy: retry a rejected step with a halved
/// `dt` (geometric backoff), then regrow toward the nominal step after a
/// streak of accepted first-try steps.
///
/// Attach one with [`Simulation::step_control`] (model default) or
/// [`InstanceBuilder::step_control`] (per-run override). Without one,
/// stepping is strictly fixed-`dt` and a Newton failure surfaces
/// immediately — the pre-existing behavior.
///
/// `ddt`/`idt` history is only committed on *accepted* sub-steps, so a
/// rejection resamples the discretized operators consistently: the retry
/// at `dt/2` sees exactly the history of the last accepted state, never a
/// half-updated one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepControl {
    /// Backoff floor: a retry below this step gives up, surfacing the
    /// last solver error.
    pub min_dt: f64,
    /// Consecutive rejections tolerated within one nominal step before
    /// giving up (each rejection halves the sub-step).
    pub max_retries: u32,
    /// Accepted first-try sub-steps required before the sub-step doubles
    /// back toward the nominal `dt`.
    pub grow_streak: u32,
}

impl StepControl {
    /// A policy with the given backoff floor and the default budget:
    /// 16 retries, regrow after 4 clean accepts.
    pub fn new(min_dt: f64) -> StepControl {
        StepControl {
            min_dt,
            max_retries: 16,
            grow_streak: 4,
        }
    }

    /// Overrides the consecutive-rejection budget (clamped to at least 1).
    #[must_use]
    pub fn max_retries(mut self, n: u32) -> StepControl {
        self.max_retries = n.max(1);
        self
    }

    /// Overrides the accepted-streak length that triggers regrowth
    /// (clamped to at least 1).
    #[must_use]
    pub fn grow_streak(mut self, n: u32) -> StepControl {
        self.grow_streak = n.max(1);
        self
    }

    /// Checks the policy against a nominal step.
    ///
    /// # Errors
    ///
    /// [`AmsError::InvalidStepControl`] when `min_dt` is not positive and
    /// finite, or exceeds `dt`.
    pub fn validate(&self, dt: f64) -> Result<(), AmsError> {
        if !(self.min_dt.is_finite() && self.min_dt > 0.0 && self.min_dt <= dt) {
            return Err(AmsError::InvalidStepControl {
                min_dt: self.min_dt,
                dt,
            });
        }
        Ok(())
    }
}

/// Automatic-recovery policy for faulted sweep scenarios.
///
/// When a scenario faults under a sweep that enables recovery, the
/// engine escalates through a deterministic ladder instead of retiring
/// the scenario: resume from the last periodic [`Snapshot`] under a
/// *tightened* step control, restart from `t = 0` under the tightened
/// control, then restart on a fallback solver backend. This type holds
/// the knobs; the ladder itself lives in the sweep layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Periodic snapshot cadence in nominal steps; `0` disables
    /// checkpoints (the resume rung is skipped, restart rungs remain).
    pub snapshot_every_n_steps: u64,
    /// Total recovery attempts allowed per scenario across all rungs;
    /// `0` disables the ladder entirely.
    pub max_recoveries: u32,
    /// Factor applied to [`StepControl::min_dt`] when tightening
    /// (clamped into `(0, 1]`; smaller means a deeper backoff floor).
    pub min_dt_scale: f64,
    /// Added to [`StepControl::max_retries`] when tightening.
    pub extra_retries: u32,
}

impl Default for RecoveryPolicy {
    /// Checkpoint every 64 steps, at most 3 recoveries, backoff floor
    /// ×1/4 with 8 extra retries on recovery rungs.
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            snapshot_every_n_steps: 64,
            max_recoveries: 3,
            min_dt_scale: 0.25,
            extra_retries: 8,
        }
    }
}

impl RecoveryPolicy {
    /// The step control a recovery rung runs under: the backoff floor
    /// scaled down and the retry budget raised. Fixed-`dt` scenarios
    /// (`None`) stay fixed-`dt` — injected transients are rescued by the
    /// replay itself, and tightening must never change the accept/reject
    /// decisions of steps the original run accepted.
    pub fn tightened(&self, sc: Option<StepControl>) -> Option<StepControl> {
        let scale = if self.min_dt_scale > 0.0 && self.min_dt_scale <= 1.0 {
            self.min_dt_scale
        } else {
            1.0
        };
        sc.map(|sc| StepControl {
            min_dt: (sc.min_dt * scale).max(f64::MIN_POSITIVE),
            max_retries: sc.max_retries.saturating_add(self.extra_retries),
            grow_streak: sc.grow_streak,
        })
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) enum Placeholder {
    /// `ddt` history: value of the operand at the previous step.
    Ddt(usize),
    /// `idt` accumulator state.
    Idt(usize),
    /// The current integration step `h` — a slot, not a compile-time
    /// constant, so adaptive stepping can rescale the discretization
    /// without recompiling.
    Dt,
    /// `1/h`, kept as its own slot so residual evaluation performs no
    /// division the fixed-dt bytecode did not.
    InvDt,
}

/// One compiled Jacobian entry `dF_i/dx_col`.
#[derive(Debug, Clone)]
pub(crate) enum JacEntry {
    /// Symbolic derivative compiled to VM bytecode.
    Symbolic(Program),
    /// No closed form in the operator set: central differencing of the
    /// residual program at evaluation time (perturbs the unknown's slot
    /// in place — no buffer cloning).
    Numeric,
}

/// Preallocated Newton scratch state: every buffer the inner loop touches
/// lives here, so [`AmsSimulator::try_step`] performs no heap allocation.
#[derive(Debug)]
struct Workspace {
    /// Operand stack shared by every VM program evaluation.
    stack: Vec<f64>,
    /// Residual vector `F(x)` (negated in place into the Newton rhs).
    residual: Vec<f64>,
    /// Newton update `δ` solved from `J·δ = −F`.
    delta: Vec<f64>,
    /// Jacobian stamps in coordinate form, re-pushed on each (re)build
    /// in a fixed order so the sparse backend's frozen pattern applies.
    jt: Triplets,
    /// Factorization (dense or sparse by the model's resolved backend),
    /// refreshed in place via [`Factorization::refactor`].
    lu: AnyLu,
    /// Whether `lu` still describes a usable linearization. Survives
    /// across iterations *and* accepted steps (modified Newton).
    lu_valid: bool,
}

/// Immutable compiled artifact of one Verilog-AMS module: the discretized
/// equation system, its VM bytecode programs, the symbolic Jacobian, the
/// slot layout, and an LU factorization of the Jacobian evaluated at the
/// all-zero initial state.
///
/// A `CompiledModel` is plain data (`Send + Sync`) and is shared between
/// any number of per-run [`Instance`]s via [`Arc`], so lowering,
/// discretization, symbolic differentiation and bytecode compilation are
/// paid **once per sweep** instead of once per run. Build one with
/// [`Simulation::compile`], then spawn runs with
/// [`CompiledModel::instance`] / [`CompiledModel::instance_builder`].
pub struct CompiledModel {
    pub(crate) dt: f64,
    /// Default Newton convergence tolerance for instances of this model.
    pub(crate) newton_tol: f64,
    pub(crate) unknowns: Vec<Quantity>,
    pub(crate) index: BTreeMap<Quantity, usize>,
    /// Discretized residual equations `F_i = 0` (tree form — the oracle).
    pub(crate) equations: Vec<QExpr>,
    /// Compiled residual programs, one per equation.
    pub(crate) programs: Vec<Program>,
    /// Compiled Jacobian: per equation, `(column, entry)`.
    pub(crate) jacobian: Vec<Vec<(usize, JacEntry)>>,
    pub(crate) placeholders: BTreeMap<Quantity, Placeholder>,
    /// Compiled `ddt`/`idt` operand programs (history refresh on accept).
    pub(crate) ddt_progs: Vec<Program>,
    pub(crate) idt_progs: Vec<Program>,
    /// Offset of the input segment in the slot array (= unknown count).
    pub(crate) input_off: usize,
    /// Offset of the `ddt` history segment in the slot array.
    pub(crate) ddt_off: usize,
    /// Offset of the `idt` accumulator segment in the slot array.
    pub(crate) idt_off: usize,
    /// Slot of the current step `h`; `dt_slot + 1` holds `1/h`.
    pub(crate) dt_slot: usize,
    /// Total slot count:
    /// `[unknowns | inputs | ddt prev | idt state | h | 1/h]`.
    pub(crate) slot_count: usize,
    /// Default adaptive-stepping policy for instances; `None` means
    /// fixed-`dt` stepping.
    pub(crate) step_control: Option<StepControl>,
    pub(crate) input_names: Vec<String>,
    pub(crate) output_indices: Vec<usize>,
    /// Deepest operand stack any compiled program needs.
    pub(crate) max_stack: usize,
    /// Factorization of the Jacobian at the all-zero slot state, computed
    /// at compile time so every instance starts from the same
    /// deterministic linearization (modified Newton refreshes it only on
    /// a stall). `None` when the zero-state Jacobian is singular —
    /// instances then factor lazily at their first step, as builds always
    /// did.
    pub(crate) init_lu: Option<AnyLu>,
    /// Resolved linear-solver backend (never [`SolverKind::Auto`]):
    /// chosen at compile time from the zero-state Jacobian's size and
    /// structural density, or forced via [`Simulation::solver`]. Every
    /// instance and batch lane of this model solves through it.
    pub(crate) backend: SolverKind,
    /// Stable content hash of the compiled artifact (see
    /// [`CompiledModel::model_hash`]).
    pub(crate) model_hash: u64,
}

/// Compiled-bytecode Newton/backward-Euler transient simulator over the
/// full conservative equation system of one Verilog-AMS module: the
/// mutable per-run half of a [`CompiledModel`].
///
/// An `Instance` holds only run state — the unknown vector, input/history
/// slots, the Newton workspace (LU factors included) and performance
/// counters — and borrows everything immutable from its `Arc`'d model, so
/// creating one is allocation-cheap and many can step concurrently on
/// different threads. The original tree-walk interpreter is retained as a
/// debug-assertable oracle ([`Instance::residuals_tree`]).
///
/// See the [crate-level documentation](crate) for the role this plays in
/// the reproduction and an example.
pub struct Instance {
    model: Arc<CompiledModel>,
    /// Newton convergence tolerance (`max_rel` threshold) for this run.
    newton_tol: f64,
    /// Adaptive-stepping policy; `None` keeps strict fixed-`dt` stepping.
    step_control: Option<StepControl>,
    /// Current adaptive sub-step `h ≤ dt`; persists across nominal steps
    /// so a stiff region stays backed off until the regrow streak fires.
    cur_dt: f64,
    /// Consecutive first-try accepted sub-steps (drives regrowth).
    accept_streak: u32,
    /// Flat evaluation state:
    /// `[unknowns | inputs | ddt prev | idt state | h | 1/h]`.
    slots: Vec<f64>,
    x: Vec<f64>,
    x_prev: Vec<f64>,
    ws: Workspace,
    time: f64,
    steps: u64,
    newton_iters: u64,
    jacobian_builds: u64,
    lu_factorizations: u64,
    jacobian_reuse_hits: u64,
    jacobian_refactors: u64,
    steps_rejected: u64,
    step_retries: u64,
    dt_shrinks: u64,
    dt_grows: u64,
    snapshots_taken: u64,
    snapshots_restored: u64,
    obs: Obs,
    obs_steps: CounterTracker,
    obs_newton: CounterTracker,
    obs_jacobian: CounterTracker,
    obs_factorizations: CounterTracker,
    obs_reuse_hits: CounterTracker,
    obs_refactors: CounterTracker,
    obs_rejected: CounterTracker,
    obs_retries: CounterTracker,
    obs_shrinks: CounterTracker,
    obs_grows: CounterTracker,
    obs_sparse_analyze: CounterTracker,
    obs_sparse_refactor: CounterTracker,
    obs_sparse_fill: CounterTracker,
    obs_snap_taken: CounterTracker,
    obs_snap_restored: CounterTracker,
}

/// Historical name of [`Instance`], kept so existing call sites (and the
/// co-simulation plumbing) keep compiling unchanged.
pub type AmsSimulator = Instance;

/// Captured LU state of a snapshot: either "the run was still on the
/// model's shared zero-state factors" (cheap — restore re-clones from
/// [`CompiledModel`]) or a private clone of factors the run had already
/// refreshed, together with the modified-Newton validity flag.
#[derive(Clone)]
pub(crate) enum SnapshotLu {
    /// The run had never factored privately: restore clones the model's
    /// `init_lu` (when present) and keeps the recorded validity. Batch
    /// lanes restored from this state stay eligible for the shared
    /// multi-RHS solve fast path.
    Shared { valid: bool },
    /// Private factors, cloned at snapshot time with their sparse-work
    /// stats reset (the parent run already reported that work).
    Private { lu: AnyLu, valid: bool },
}

/// Cheap checkpoint of one transient run (or one batch lane): everything
/// a resumed simulation needs to continue **bit-identically** with a run
/// that never stopped.
///
/// Captures the flat slot block
/// `[unknowns | inputs | ddt prev | idt state | h | 1/h]` (the idt
/// accumulators and ddt history live inside it), the committed unknown
/// vectors, the adaptive-step controller state (current sub-step and
/// grow streak), the LU validity ([`SnapshotLu`]), and watermarks of the
/// monotone work counters so forked runs can report path-cumulative
/// totals without double-counting prefix work.
///
/// Take one with [`Instance::snapshot`] or
/// [`BatchInstance::snapshot_lane`](crate::BatchInstance::snapshot_lane);
/// resume with [`Instance::restore`] or fan out with
/// [`BatchInstance::fork_from`](crate::BatchInstance::fork_from).
/// Snapshots are `Clone + Send + Sync` and tied to their originating
/// [`CompiledModel`] (restoring onto a different model panics).
#[derive(Clone)]
pub struct Snapshot {
    pub(crate) model: Arc<CompiledModel>,
    /// Flat scalar slot state at the checkpoint.
    pub(crate) slots: Vec<f64>,
    pub(crate) x: Vec<f64>,
    pub(crate) x_prev: Vec<f64>,
    pub(crate) newton_tol: f64,
    pub(crate) step_control: Option<StepControl>,
    pub(crate) cur_dt: f64,
    pub(crate) accept_streak: u32,
    pub(crate) time: f64,
    /// Watermark: nominal steps completed on the captured path.
    pub(crate) steps: u64,
    /// Watermark: Newton iterations spent on the captured path.
    pub(crate) newton_iters: u64,
    pub(crate) lu: SnapshotLu,
}

impl Snapshot {
    /// Simulated time at the checkpoint, in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Nominal steps the captured run had completed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Newton iterations the captured run had spent.
    pub fn newton_iterations(&self) -> u64 {
        self.newton_iters
    }

    /// The compiled model this checkpoint belongs to.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// Whether the checkpoint carries private LU factors (as opposed to
    /// still riding the model's shared zero-state factorization).
    pub fn owns_factors(&self) -> bool {
        matches!(self.lu, SnapshotLu::Private { .. })
    }
}

/// Builder for an [`AmsSimulator`] reference transient.
///
/// Mirrors the workspace builder idiom (`new(...)` → chained setters →
/// `build()`):
///
/// ```
/// use amsim::Simulation;
///
/// let src = "
/// module rc(in, out);
///   input in; output out;
///   electrical in, out, gnd; ground gnd;
///   branch (in, out) res;
///   branch (out, gnd) cap;
///   analog begin
///     V(res) <+ 5k * I(res);
///     I(cap) <+ 25n * ddt(V(cap));
///   end
/// endmodule";
/// let module = vams_parser::parse_module(src)?;
/// let mut sim = Simulation::new(&module)
///     .dt(1e-6)
///     .output("V(out)")
///     .build()?;
/// sim.step(&[1.0]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use = "call build() to construct the simulator"]
#[derive(Debug)]
pub struct Simulation<'m> {
    module: &'m Module,
    dt: f64,
    newton_tol: f64,
    step_control: Option<StepControl>,
    outputs: Vec<OutputSpec>,
    solver: SolverKind,
    obs: Obs,
}

impl<'m> Simulation<'m> {
    /// Starts a reference simulation of `module` with a 1 µs step;
    /// override with the chained setters.
    pub fn new(module: &'m Module) -> Self {
        Simulation {
            module,
            dt: 1e-6,
            newton_tol: DEFAULT_NEWTON_TOL,
            step_control: None,
            outputs: Vec::new(),
            solver: SolverKind::Auto,
            obs: Obs::none(),
        }
    }

    /// Selects the linear-solver backend of the compiled model. The
    /// default, [`SolverKind::Auto`], resolves at compile time from the
    /// assembled system's size and structural density (small/dense systems
    /// stay on the dense kernel, RC500-class ladders go sparse);
    /// [`SolverKind::Dense`] / [`SolverKind::Sparse`] force a backend.
    pub fn solver(mut self, kind: SolverKind) -> Self {
        self.solver = kind;
        self
    }

    /// Sets the fixed time step in seconds.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the Newton convergence tolerance (relative update norm at
    /// which an iteration is accepted; default `1e-10`). Individual runs
    /// can override it again via [`InstanceBuilder::newton_tol`].
    pub fn newton_tol(mut self, tol: f64) -> Self {
        self.newton_tol = tol;
        self
    }

    /// Enables adaptive time stepping with the given retry/backoff policy
    /// as the default for every instance of the compiled model (override
    /// per run via [`InstanceBuilder::step_control`]). Without this,
    /// stepping stays strictly fixed-`dt`.
    pub fn step_control(mut self, sc: impl Into<Option<StepControl>>) -> Self {
        self.step_control = sc.into();
        self
    }

    /// Adds an observed output (`"V(out)"`, `"I(cap)"`, or a variable
    /// name). May be called repeatedly; without any call, the module's
    /// first `output` port is observed.
    pub fn output(mut self, spec: impl Into<OutputSpec>) -> Self {
        self.outputs.push(spec.into());
        self
    }

    /// Attaches an instrumentation collector; the simulator reports
    /// `amsim.steps`, `amsim.newton_iterations`, `amsim.jacobian.builds`,
    /// `amsim.lu.factorizations`, `amsim.jacobian.reuse_hits` and
    /// `amsim.jacobian.refactor` through it.
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Lowers the module into its full DAE system and prepares a
    /// single-run Newton solver.
    ///
    /// Equivalent to [`Simulation::compile`] followed by spawning one
    /// [`Instance`]; the compile-time Jacobian build/factorization is
    /// accounted on the returned instance's counters, so single-run
    /// callers observe exactly the counter totals they always did.
    ///
    /// # Errors
    ///
    /// * [`AmsError::Acquire`] when the module cannot be lowered;
    /// * [`AmsError::NotSquare`] for ill-posed descriptions;
    /// * [`AmsError::UnknownOutput`] for bad output specs;
    /// * [`AmsError::InvalidTimeStep`] for a bad `dt`;
    /// * [`AmsError::InvalidTolerance`] for a bad `newton_tol`.
    pub fn build(self) -> Result<AmsSimulator, AmsError> {
        let model = Arc::new(compile_model(
            self.module,
            self.dt,
            self.newton_tol,
            self.step_control,
            self.outputs,
            self.solver,
        )?);
        let tol = model.newton_tol;
        let sc = model.step_control;
        Ok(Instance::with_model(model, self.obs, tol, sc, true))
    }

    /// Lowers and compiles the module into an immutable, thread-shareable
    /// [`CompiledModel`] without creating any run state.
    ///
    /// The one-off compile cost (a Jacobian assembly plus LU factorization
    /// at the zero state) is reported to the attached collector as
    /// `amsim.jacobian.builds` / `amsim.lu.factorizations`, so a sweep of
    /// N instances over one model reports the same compile counters as a
    /// single run.
    ///
    /// # Errors
    ///
    /// As for [`Simulation::build`].
    pub fn compile(self) -> Result<Arc<CompiledModel>, AmsError> {
        let model = compile_model(
            self.module,
            self.dt,
            self.newton_tol,
            self.step_control,
            self.outputs,
            self.solver,
        )?;
        if self.obs.enabled() {
            if model.init_lu.is_some() {
                self.obs.add("amsim.jacobian.builds", 1);
                self.obs.add("amsim.lu.factorizations", 1);
            }
            if let Some(lu) = &model.init_lu {
                let stats = lu.sparse_stats();
                if stats.analyze > 0 {
                    self.obs.add("linalg.sparse.analyze", stats.analyze);
                    self.obs.add("linalg.sparse.fill", stats.fill);
                }
            }
        }
        Ok(Arc::new(model))
    }
}

/// Default Newton convergence tolerance (relative update norm).
const DEFAULT_NEWTON_TOL: f64 = 1e-10;

/// Builder for additional [`Instance`]s of a [`CompiledModel`], obtained
/// from [`CompiledModel::instance_builder`]. Lets per-run settings (the
/// collector, the Newton tolerance) differ between runs of one compiled
/// artifact — the shape of a scenario sweep.
#[must_use = "call build() to construct the instance"]
pub struct InstanceBuilder {
    model: Arc<CompiledModel>,
    obs: Obs,
    newton_tol: f64,
    step_control: Option<StepControl>,
}

impl InstanceBuilder {
    /// Attaches an instrumentation collector (see
    /// [`Simulation::collector`] for the reported names).
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Overrides the Newton convergence tolerance for this run only.
    pub fn newton_tol(mut self, tol: f64) -> Self {
        self.newton_tol = tol;
        self
    }

    /// Overrides the adaptive-stepping policy for this run only — pass a
    /// [`StepControl`] to enable retry/backoff, or `None` to force
    /// fixed-`dt` stepping even when the model carries a default.
    pub fn step_control(mut self, sc: impl Into<Option<StepControl>>) -> Self {
        self.step_control = sc.into();
        self
    }

    /// Creates the run instance.
    ///
    /// # Errors
    ///
    /// * [`AmsError::InvalidTolerance`] when the tolerance override is
    ///   not positive and finite;
    /// * [`AmsError::InvalidStepControl`] when the step-control override
    ///   is inconsistent with the model's nominal step.
    pub fn build(self) -> Result<Instance, AmsError> {
        if !(self.newton_tol.is_finite() && self.newton_tol > 0.0) {
            return Err(AmsError::InvalidTolerance {
                tol: self.newton_tol,
            });
        }
        if let Some(sc) = &self.step_control {
            sc.validate(self.model.dt)?;
        }
        Ok(Instance::with_model(
            self.model,
            self.obs,
            self.newton_tol,
            self.step_control,
            false,
        ))
    }
}

impl CompiledModel {
    /// Time step the model was discretized at, in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of unknowns in the DAE system.
    pub fn dim(&self) -> usize {
        self.unknowns.len()
    }

    /// Input names in `step` order.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Number of observed outputs.
    pub fn output_count(&self) -> usize {
        self.output_indices.len()
    }

    /// Default Newton convergence tolerance for instances of this model.
    pub fn newton_tol(&self) -> f64 {
        self.newton_tol
    }

    /// Default adaptive-stepping policy for instances of this model
    /// (`None` means fixed-`dt`).
    pub fn step_control(&self) -> Option<StepControl> {
        self.step_control
    }

    /// The linear-solver backend this model's instances solve through,
    /// resolved at compile time (never [`SolverKind::Auto`]).
    pub fn solver_kind(&self) -> SolverKind {
        self.backend
    }

    /// Cheap, stable content hash of the compiled artifact.
    ///
    /// Computed once at compile time (FNV-1a over the discretized
    /// equations, unknown/input layout, outputs, `dt`, tolerance, step
    /// control, and resolved backend), so two independent compiles of the
    /// same module with the same settings — even in different processes —
    /// agree, while any numerically meaningful difference changes the
    /// hash. The serve daemon keys its model cache on it and clients can
    /// use it to verify a resubmission hit the same artifact.
    pub fn model_hash(&self) -> u64 {
        self.model_hash
    }

    /// Spawns a run instance with the model's default tolerance,
    /// step-control policy and no collector — the cheap path for sweep
    /// workers.
    pub fn instance(self: &Arc<Self>) -> Instance {
        Instance::with_model(
            Arc::clone(self),
            Obs::none(),
            self.newton_tol,
            self.step_control,
            false,
        )
    }

    /// Starts an [`InstanceBuilder`] for a run with per-run settings.
    pub fn instance_builder(self: &Arc<Self>) -> InstanceBuilder {
        InstanceBuilder {
            model: Arc::clone(self),
            obs: Obs::none(),
            newton_tol: self.newton_tol,
            step_control: self.step_control,
        }
    }
}

/// Stamps the Jacobian at the current slot state into `jt` as coordinate
/// triplets. The push order is fixed by the compiled Jacobian layout, so
/// every rebuild produces the same coordinate sequence — the contract
/// that lets the sparse backend reuse its frozen pattern without
/// re-analysis. Symbolic entries evaluate their compiled program; numeric
/// fallbacks centrally difference the residual program, perturbing the
/// unknown's slot in place (no buffer cloning).
pub(crate) fn stamp_jacobian(
    jacobian: &[Vec<(usize, JacEntry)>],
    programs: &[Program],
    slots: &mut [f64],
    stack: &mut Vec<f64>,
    jt: &mut Triplets,
) {
    jt.clear();
    for (i, row) in jacobian.iter().enumerate() {
        for (col, entry) in row {
            let v = match entry {
                JacEntry::Symbolic(prog) => prog.eval(slots, stack),
                JacEntry::Numeric => {
                    let saved = slots[*col];
                    let h = 1e-7 * (1.0 + saved.abs());
                    slots[*col] = saved + h;
                    let fp = programs[i].eval(slots, stack);
                    slots[*col] = saved - h;
                    let fm = programs[i].eval(slots, stack);
                    slots[*col] = saved;
                    (fp - fm) / (2.0 * h)
                }
            };
            jt.push(i, *col, v);
        }
    }
}

/// Lowers, discretizes and compiles `module` into a [`CompiledModel`] —
/// the immutable half shared by every run.
fn compile_model(
    module: &Module,
    dt: f64,
    newton_tol: f64,
    step_control: Option<StepControl>,
    output_specs: Vec<OutputSpec>,
    solver: SolverKind,
) -> Result<CompiledModel, AmsError> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(AmsError::InvalidTimeStep { dt });
    }
    if !(newton_tol.is_finite() && newton_tol > 0.0) {
        return Err(AmsError::InvalidTolerance { tol: newton_tol });
    }
    if let Some(sc) = &step_control {
        sc.validate(dt)?;
    }
    let model = acquire(module)?;
    let mut zeros: Vec<QExpr> = conservative_relations(&model)?
        .into_iter()
        .map(|r| r.zero)
        .collect();
    // Signal-flow variables join the system as explicit equations.
    for (name, def) in &model.folded_vars {
        zeros.push(Expr::var(Quantity::var(name.clone())) - def.clone());
    }

    // Unknowns: every non-input quantity referenced anywhere.
    let mut index: BTreeMap<Quantity, usize> = BTreeMap::new();
    for z in &zeros {
        for q in z.variables() {
            if !q.is_input() && !index.contains_key(&q) {
                index.insert(q, 0);
            }
        }
    }
    let unknowns: Vec<Quantity> = index.keys().cloned().collect();
    for (i, q) in unknowns.iter().enumerate() {
        *index.get_mut(q).expect("just built") = i;
    }
    if zeros.len() != unknowns.len() {
        return Err(AmsError::NotSquare {
            equations: zeros.len(),
            unknowns: unknowns.len(),
        });
    }

    // Discretize: replace analog operators with history placeholders.
    let mut placeholders = BTreeMap::new();
    let mut ddt_inner = Vec::new();
    let mut idt_inner = Vec::new();
    let equations: Vec<QExpr> = zeros
        .iter()
        .map(|z| discretize(z, &mut placeholders, &mut ddt_inner, &mut idt_inner).simplified())
        .collect();

    // Slot layout: [unknowns | inputs | ddt history | idt state | h | 1/h].
    // The step slots exist even for purely algebraic systems so every
    // instance can treat them uniformly.
    let n = unknowns.len();
    let input_names = model.inputs.clone();
    let input_off = n;
    let ddt_off = input_off + input_names.len();
    let idt_off = ddt_off + ddt_inner.len();
    let dt_slot = idt_off + idt_inner.len();
    let slot_count = dt_slot + 2;

    // Bytecode compiler over the slot layout. Discretization removed
    // every `ddt`/`idt`, and every variable is an unknown, an input,
    // or a history placeholder, so compilation cannot fail on
    // well-formed systems.
    let compile = |e: &QExpr| -> Program {
        vm::compile(e, &mut |q: &Quantity, delay: u32| {
            if delay != 0 {
                return None;
            }
            if let Some(ph) = placeholders.get(q) {
                return Some(match ph {
                    Placeholder::Ddt(k) => (ddt_off + k) as u32,
                    Placeholder::Idt(k) => (idt_off + k) as u32,
                    Placeholder::Dt => dt_slot as u32,
                    Placeholder::InvDt => (dt_slot + 1) as u32,
                });
            }
            match q {
                Quantity::Input(name) => input_names
                    .iter()
                    .position(|i| i == name)
                    .map(|i| (input_off + i) as u32),
                other => index.get(other).map(|&i| i as u32),
            }
        })
        .expect("discretized equations compile by construction")
    };

    let programs: Vec<Program> = equations.iter().map(&compile).collect();
    let ddt_progs: Vec<Program> = ddt_inner.iter().map(&compile).collect();
    let idt_progs: Vec<Program> = idt_inner.iter().map(&compile).collect();

    // Compiled symbolic Jacobian; entries the derivative algebra
    // cannot express fall back to in-place central differencing of the
    // residual program.
    let jacobian: Vec<Vec<(usize, JacEntry)>> = equations
        .iter()
        .map(|eq| {
            eq.current_variables()
                .into_iter()
                .filter_map(|q| {
                    if q.is_input() || placeholders.contains_key(&q) {
                        return None;
                    }
                    let col = index[&q];
                    let entry = match eq.derivative(&q) {
                        Some(d) => JacEntry::Symbolic(compile(&d)),
                        None => JacEntry::Numeric,
                    };
                    Some((col, entry))
                })
                .collect()
        })
        .collect();

    let max_stack = programs
        .iter()
        .chain(&ddt_progs)
        .chain(&idt_progs)
        .map(Program::max_stack)
        .chain(jacobian.iter().flatten().filter_map(|(_, e)| match e {
            JacEntry::Symbolic(p) => Some(p.max_stack()),
            JacEntry::Numeric => None,
        }))
        .max()
        .unwrap_or(0);

    // Resolve the observed outputs against the unknown index.
    let mut specs = output_specs;
    if specs.is_empty() {
        let first = model
            .outputs
            .first()
            .cloned()
            .ok_or_else(|| AmsError::UnknownOutput {
                spec: "<no output port>".to_string(),
                module: module.name.clone(),
            })?;
        specs.push(OutputSpec::Potential(first));
    }
    let mut output_indices = Vec::with_capacity(specs.len());
    for spec in &specs {
        let unknown = || AmsError::UnknownOutput {
            spec: spec.to_string(),
            module: module.name.clone(),
        };
        let q = spec.resolve(&model).map_err(|_| unknown())?;
        output_indices.push(index.get(&q).copied().ok_or_else(unknown)?);
    }

    // Factor the Jacobian once at the all-zero state, so every instance
    // starts from the same linearization no matter which worker spawns
    // it first (scheduling-independent, hence bit-reproducible sweeps).
    let mut slots = vec![0.0; slot_count];
    slots[dt_slot] = dt;
    slots[dt_slot + 1] = 1.0 / dt;
    let mut stack = Vec::with_capacity(max_stack);
    let mut jt = Triplets::new(n, n);
    stamp_jacobian(&jacobian, &programs, &mut slots, &mut stack, &mut jt);
    // Resolve `Auto` once, against the zero-state stamp pattern: the
    // backend is part of the compiled artifact, so every instance and
    // batch lane of this model solves the same way.
    let backend = solver.resolve(n, jt.pattern().len());
    let init_lu = AnyLu::analyze_with(backend, &jt).ok();

    // Stable content hash over everything that determines the model's
    // numerics: the discretized equations, the slot layout, the solve
    // configuration. Two compiles of the same module with the same
    // settings — in the same process or not — produce the same hash, so
    // model caches (the serve daemon's LRU) and resubmission checks can
    // key on it cheaply.
    let mut hasher = Fnv1a::new();
    hasher.write(module.name.as_bytes());
    hasher.write_u64(dt.to_bits());
    hasher.write_u64(newton_tol.to_bits());
    hasher.write(format!("{step_control:?}").as_bytes());
    hasher.write(format!("{backend:?}").as_bytes());
    for q in &unknowns {
        hasher.write(format!("{q:?}").as_bytes());
    }
    for name in &input_names {
        hasher.write(name.as_bytes());
    }
    for &i in &output_indices {
        hasher.write_u64(i as u64);
    }
    for eq in &equations {
        hasher.write(format!("{eq:?}").as_bytes());
    }
    let model_hash = hasher.finish();

    Ok(CompiledModel {
        dt,
        newton_tol,
        unknowns,
        index,
        equations,
        programs,
        jacobian,
        placeholders,
        ddt_progs,
        idt_progs,
        input_off,
        ddt_off,
        idt_off,
        dt_slot,
        slot_count,
        step_control,
        input_names,
        output_indices,
        max_stack,
        init_lu,
        backend,
        model_hash,
    })
}

/// The 64-bit FNV-1a hash — tiny, dependency-free, and stable across
/// processes and platforms (unlike `std::hash`, whose `DefaultHasher` is
/// explicitly unstable between releases).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Separate fields so ("ab","c") and ("a","bc") hash differently.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

impl AmsSimulator {
    /// Builds the per-run state over a compiled model. When
    /// `seed_compile_counters` is set the compile-time Jacobian
    /// build/factorization is accounted on this instance's local counters
    /// (the single-run [`Simulation::build`] path); sweep instances leave
    /// it unset because [`Simulation::compile`] already reported it.
    fn with_model(
        model: Arc<CompiledModel>,
        obs: Obs,
        newton_tol: f64,
        step_control: Option<StepControl>,
        seed: bool,
    ) -> Instance {
        let n = model.unknowns.len();
        let (lu, lu_valid) = match &model.init_lu {
            Some(lu) => {
                let mut lu = lu.clone();
                // Compile-time sparse work is reported by the compile
                // path (or, on the single-run `build` path, stays on the
                // seeded instance like the compile counters below).
                if !seed {
                    lu.reset_stats();
                }
                (lu, true)
            }
            // Seed identity factors on the model's backend so refreshes
            // can reuse the storage; marked invalid until the first real
            // Jacobian is factored.
            None => {
                let dim = n.max(1);
                let mut ident = Triplets::new(dim, dim);
                for i in 0..dim {
                    ident.push(i, i, 1.0);
                }
                let mut lu =
                    AnyLu::analyze_with(model.backend, &ident).expect("identity is never singular");
                lu.reset_stats();
                (lu, false)
            }
        };
        let compile_cost = if seed && model.init_lu.is_some() {
            1
        } else {
            0
        };
        let mut slots = vec![0.0; model.slot_count];
        slots[model.dt_slot] = model.dt;
        slots[model.dt_slot + 1] = 1.0 / model.dt;
        Instance {
            newton_tol,
            step_control,
            cur_dt: model.dt,
            accept_streak: 0,
            slots,
            x: vec![0.0; n],
            x_prev: vec![0.0; n],
            ws: Workspace {
                stack: Vec::with_capacity(model.max_stack),
                residual: vec![0.0; n],
                delta: vec![0.0; n],
                jt: Triplets::new(n, n),
                lu,
                lu_valid,
            },
            time: 0.0,
            steps: 0,
            newton_iters: 0,
            jacobian_builds: compile_cost,
            lu_factorizations: compile_cost,
            jacobian_reuse_hits: 0,
            jacobian_refactors: 0,
            steps_rejected: 0,
            step_retries: 0,
            dt_shrinks: 0,
            dt_grows: 0,
            snapshots_taken: 0,
            snapshots_restored: 0,
            obs,
            obs_steps: CounterTracker::default(),
            obs_newton: CounterTracker::default(),
            obs_jacobian: CounterTracker::default(),
            obs_factorizations: CounterTracker::default(),
            obs_reuse_hits: CounterTracker::default(),
            obs_refactors: CounterTracker::default(),
            obs_rejected: CounterTracker::default(),
            obs_retries: CounterTracker::default(),
            obs_shrinks: CounterTracker::default(),
            obs_grows: CounterTracker::default(),
            obs_sparse_analyze: CounterTracker::default(),
            obs_sparse_refactor: CounterTracker::default(),
            obs_sparse_fill: CounterTracker::default(),
            obs_snap_taken: CounterTracker::default(),
            obs_snap_restored: CounterTracker::default(),
            model,
        }
    }
    /// Reports counter deltas (`amsim.steps`, `amsim.newton_iterations`,
    /// `amsim.jacobian.builds`, `amsim.lu.factorizations`,
    /// `amsim.jacobian.reuse_hits`, `amsim.jacobian.refactor`) to the
    /// attached collector. Called automatically on drop; call explicitly
    /// to snapshot mid-run.
    pub fn flush_counters(&mut self) {
        if self.obs.enabled() {
            let (steps, newton, jacobian) = (self.steps, self.newton_iters, self.jacobian_builds);
            let (factorizations, reuse_hits, refactors) = (
                self.lu_factorizations,
                self.jacobian_reuse_hits,
                self.jacobian_refactors,
            );
            self.obs_steps.flush(&self.obs, "amsim.steps", steps);
            self.obs_newton
                .flush(&self.obs, "amsim.newton_iterations", newton);
            self.obs_jacobian
                .flush(&self.obs, "amsim.jacobian.builds", jacobian);
            self.obs_factorizations
                .flush(&self.obs, "amsim.lu.factorizations", factorizations);
            self.obs_reuse_hits
                .flush(&self.obs, "amsim.jacobian.reuse_hits", reuse_hits);
            self.obs_refactors
                .flush(&self.obs, "amsim.jacobian.refactor", refactors);
            let (rejected, retries, shrinks, grows) = (
                self.steps_rejected,
                self.step_retries,
                self.dt_shrinks,
                self.dt_grows,
            );
            self.obs_rejected
                .flush(&self.obs, "amsim.step.rejected", rejected);
            self.obs_retries
                .flush(&self.obs, "amsim.step.retries", retries);
            self.obs_shrinks
                .flush(&self.obs, "amsim.step.dt_shrink", shrinks);
            self.obs_grows.flush(&self.obs, "amsim.step.dt_grow", grows);
            // Sparse-backend work (all zeros on the dense backend).
            let sparse = self.ws.lu.sparse_stats();
            self.obs_sparse_analyze
                .flush(&self.obs, "linalg.sparse.analyze", sparse.analyze);
            self.obs_sparse_refactor
                .flush(&self.obs, "linalg.sparse.refactor", sparse.refactor);
            self.obs_sparse_fill
                .flush(&self.obs, "linalg.sparse.fill", sparse.fill);
            let (taken, restored) = (self.snapshots_taken, self.snapshots_restored);
            self.obs_snap_taken
                .flush(&self.obs, "amsim.snapshot.taken", taken);
            self.obs_snap_restored
                .flush(&self.obs, "amsim.snapshot.restored", restored);
        }
    }

    /// Captures a checkpoint of the current run state: slots (ddt/idt
    /// history and the reserved `h`/`1/h` slots included), committed
    /// unknowns, adaptive-step controller state, LU factors + validity,
    /// and the step/Newton watermarks. The factors are cloned with their
    /// sparse stats reset — this run has already reported that work.
    ///
    /// `&mut self` only for the `amsim.snapshot.taken` counter; the run
    /// state is untouched and stepping may continue immediately.
    pub fn snapshot(&mut self) -> Snapshot {
        let mut lu = self.ws.lu.clone();
        lu.reset_stats();
        self.snapshots_taken += 1;
        Snapshot {
            model: Arc::clone(&self.model),
            slots: self.slots.clone(),
            x: self.x.clone(),
            x_prev: self.x_prev.clone(),
            newton_tol: self.newton_tol,
            step_control: self.step_control,
            cur_dt: self.cur_dt,
            accept_streak: self.accept_streak,
            time: self.time,
            steps: self.steps,
            newton_iters: self.newton_iters,
            lu: SnapshotLu::Private {
                lu,
                valid: self.ws.lu_valid,
            },
        }
    }

    /// Rewinds this run to a checkpoint taken from the **same** compiled
    /// model. Subsequent steps are bit-identical to a run that reached
    /// the checkpoint and never stopped: the slot block replays the exact
    /// ddt/idt history, the adaptive controller resumes its sub-step and
    /// grow streak, and the captured factors (validity included) are
    /// reinstated, so the modified-Newton refresh schedule is preserved.
    ///
    /// Work counters stay monotone — they are never rewound, so an
    /// attached [`Obs`] collector cannot double-count. After rewinding
    /// the *same* instance, per-run accessors such as
    /// [`Instance::newton_iterations`] keep counting from the high-water
    /// mark; forked lanes seeded via
    /// [`BatchInstance::fork_from`](crate::BatchInstance::fork_from)
    /// instead report path-cumulative totals from the snapshot's
    /// watermarks.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different compiled model.
    pub fn restore(&mut self, snap: &Snapshot) {
        assert!(
            Arc::ptr_eq(&self.model, &snap.model),
            "Instance::restore: snapshot belongs to a different compiled model"
        );
        self.slots.copy_from_slice(&snap.slots);
        self.x.copy_from_slice(&snap.x);
        self.x_prev.copy_from_slice(&snap.x_prev);
        self.newton_tol = snap.newton_tol;
        self.step_control = snap.step_control;
        self.cur_dt = snap.cur_dt;
        self.accept_streak = snap.accept_streak;
        self.time = snap.time;
        match &snap.lu {
            SnapshotLu::Private { lu, valid } => {
                self.ws.lu = lu.clone();
                self.ws.lu_valid = *valid;
            }
            SnapshotLu::Shared { valid } => {
                if let Some(init) = &self.model.init_lu {
                    let mut lu = init.clone();
                    lu.reset_stats();
                    self.ws.lu = lu;
                    self.ws.lu_valid = *valid;
                } else {
                    // No shared zero-state factors exist: the storage is
                    // reused and the first step refactors lazily, exactly
                    // like a fresh instance.
                    self.ws.lu_valid = false;
                }
            }
        }
        self.snapshots_restored += 1;
    }

    /// Replaces the adaptive-stepping policy mid-run; `None` switches to
    /// strict fixed-`dt` stepping. [`Instance::restore`] reinstates the
    /// *snapshot's* policy, so the recovery ladder calls this right
    /// after restoring to resume under a tightened control.
    ///
    /// # Errors
    ///
    /// [`AmsError::InvalidStepControl`] when the policy does not
    /// validate against the model's nominal `dt`; the current policy is
    /// left unchanged.
    pub fn set_step_control(&mut self, sc: Option<StepControl>) -> Result<(), AmsError> {
        if let Some(sc) = &sc {
            sc.validate(self.model.dt)?;
        }
        self.step_control = sc;
        Ok(())
    }

    /// Checkpoints taken from this run (performance counter).
    pub fn snapshots_taken(&self) -> u64 {
        self.snapshots_taken
    }

    /// Checkpoints restored into this run (performance counter).
    pub fn snapshots_restored(&self) -> u64 {
        self.snapshots_restored
    }

    /// Time step in seconds.
    pub fn dt(&self) -> f64 {
        self.model.dt
    }

    /// The shared compiled artifact this run steps over.
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// Newton convergence tolerance for this run.
    pub fn newton_tol(&self) -> f64 {
        self.newton_tol
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Input names in `step` order.
    pub fn input_names(&self) -> &[String] {
        &self.model.input_names
    }

    /// Newton iterations performed so far (performance counter).
    pub fn newton_iterations(&self) -> u64 {
        self.newton_iters
    }

    /// Jacobian assemblies so far (performance counter). With the
    /// modified-Newton strategy this counts actual rebuilds, not
    /// iterations; see [`AmsSimulator::jacobian_reuse_hits`].
    pub fn jacobian_builds(&self) -> u64 {
        self.jacobian_builds
    }

    /// LU factorizations so far. Factorization follows every Jacobian
    /// build, so this currently tracks [`AmsSimulator::jacobian_builds`];
    /// it is counted separately because the obs report distinguishes
    /// assembly cost from factorization cost.
    pub fn lu_factorizations(&self) -> u64 {
        self.lu_factorizations
    }

    /// Newton iterations that reused an existing LU factorization instead
    /// of rebuilding the Jacobian (performance counter).
    pub fn jacobian_reuse_hits(&self) -> u64 {
        self.jacobian_reuse_hits
    }

    /// Factorization refreshes forced by the convergence-stall test
    /// (performance counter).
    pub fn jacobian_refactors(&self) -> u64 {
        self.jacobian_refactors
    }

    /// Sub-steps rejected by the adaptive controller (robustness counter).
    pub fn steps_rejected(&self) -> u64 {
        self.steps_rejected
    }

    /// Backoff retries spent (robustness counter). Equal to
    /// [`AmsSimulator::steps_rejected`] minus the rejections that
    /// exhausted their budget.
    pub fn step_retries(&self) -> u64 {
        self.step_retries
    }

    /// Times the sub-step was halved (robustness counter).
    pub fn dt_shrinks(&self) -> u64 {
        self.dt_shrinks
    }

    /// Times the sub-step was doubled back toward nominal (robustness
    /// counter).
    pub fn dt_grows(&self) -> u64 {
        self.dt_grows
    }

    /// Adaptive-stepping policy for this run (`None` means fixed-`dt`).
    pub fn step_control(&self) -> Option<StepControl> {
        self.step_control
    }

    /// Current adaptive sub-step in seconds (the nominal `dt` unless the
    /// controller has backed off).
    pub fn current_dt(&self) -> f64 {
        self.cur_dt
    }

    /// Number of unknowns in the DAE system.
    pub fn dim(&self) -> usize {
        self.model.unknowns.len()
    }

    /// Value of output `i` after the last step.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn output(&self, i: usize) -> f64 {
        self.x[self.model.output_indices[i]]
    }

    /// Value of an arbitrary quantity.
    pub fn value(&self, q: &Quantity) -> Option<f64> {
        self.model.index.get(q).map(|&i| self.x[i])
    }

    /// Tree-walk evaluation of `e` at the current slot state — the oracle
    /// the compiled hot path is checked against.
    fn eval_tree(&self, e: &QExpr) -> f64 {
        let m = &self.model;
        e.eval(&mut |q: &Quantity, _| {
            if let Some(ph) = m.placeholders.get(q) {
                return Some(match ph {
                    Placeholder::Ddt(k) => self.slots[m.ddt_off + k],
                    Placeholder::Idt(k) => self.slots[m.idt_off + k],
                    Placeholder::Dt => self.slots[m.dt_slot],
                    Placeholder::InvDt => self.slots[m.dt_slot + 1],
                });
            }
            match q {
                Quantity::Input(n) => m
                    .input_names
                    .iter()
                    .position(|i| i == n)
                    .map(|i| self.slots[m.input_off + i]),
                other => m.index.get(other).map(|&i| self.slots[i]),
            }
        })
        .expect("all leaves resolvable by construction")
    }

    /// Evaluates every residual at the current internal state through the
    /// compiled VM programs (the production hot path).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn residuals_vm(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.model.programs.len(), "residual dimension");
        for (o, prog) in out.iter_mut().zip(&self.model.programs) {
            *o = prog.eval(&self.slots, &mut self.ws.stack);
        }
    }

    /// Evaluates every residual at the current internal state by walking
    /// the expression trees (the debug oracle the VM path is validated
    /// against; not used for stepping).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.dim()`.
    pub fn residuals_tree(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.model.equations.len(), "residual dimension");
        for (o, eq) in out.iter_mut().zip(&self.model.equations) {
            *o = self.eval_tree(eq);
        }
    }

    /// Asserts (debug builds only) that the compiled residuals agree with
    /// the tree-walk oracle at the current state.
    #[cfg(debug_assertions)]
    fn debug_check_residual_oracle(&self) {
        for (i, eq) in self.model.equations.iter().enumerate() {
            let tree = self.eval_tree(eq);
            let vm_val = self.ws.residual[i];
            let scale = 1.0 + tree.abs().max(vm_val.abs());
            // A diverged iterate legitimately produces non-finite
            // residuals (the solver's guard rejects them right after this
            // check); the oracle only demands both paths agree on them.
            debug_assert!(
                (tree - vm_val).abs() <= 1e-9 * scale
                    || (tree.is_nan() && vm_val.is_nan())
                    || tree == vm_val,
                "VM residual {i} diverged from tree oracle: {vm_val} vs {tree}"
            );
        }
    }

    /// Builds the Jacobian at the current slot state into the workspace
    /// triplets and refreshes the factors in place through the
    /// [`Factorization`] seam (pattern-reusing refactor on the sparse
    /// backend). `iteration` and `best_residual` only label the error on
    /// a NaN/Inf Jacobian.
    fn build_and_factor(&mut self, iteration: u32, best_residual: f64) -> Result<(), AmsError> {
        self.jacobian_builds += 1;
        stamp_jacobian(
            &self.model.jacobian,
            &self.model.programs,
            &mut self.slots,
            &mut self.ws.stack,
            &mut self.ws.jt,
        );
        self.lu_factorizations += 1;
        #[cfg(feature = "fault-inject")]
        match crate::fault::active_for(0) {
            Some(crate::fault::SolverFault::RefactorSingular) => {
                linalg::fault::arm_refactor_failure(linalg::fault::RefactorFault::Singular)
            }
            Some(crate::fault::SolverFault::RefactorNonFinite) => {
                linalg::fault::arm_refactor_failure(linalg::fault::RefactorFault::NonFinite)
            }
            _ => {}
        }
        match self.ws.lu.refactor(&self.ws.jt) {
            Ok(()) => {
                self.ws.lu_valid = true;
                Ok(())
            }
            Err(e) => {
                self.ws.lu_valid = false;
                Err(match e {
                    FactorError::NonFinite { .. } => AmsError::NonFinite {
                        time: self.time,
                        iteration,
                        residual_norm: best_residual,
                    },
                    _ => AmsError::Singular,
                })
            }
        }
    }

    /// Maximum Newton iterations per step. Higher than the classic fresh-
    /// Jacobian budget because modified Newton trades extra (cheap)
    /// iterations for skipped factorizations.
    pub(crate) const MAX_NEWTON_ITERS: u32 = 50;

    /// Iterations a factorization may serve without converging before a
    /// refresh is forced regardless of the contraction rate.
    pub(crate) const MAX_STALE_ITERS: u32 = 8;

    /// Runs the Newton iteration at the current slot state — inputs and
    /// step slots already written, iterate warm-started by the caller.
    ///
    /// On success the converged solution is left in `slots[..dim]`. On
    /// failure the slots hold the diverged iterate but **no** history,
    /// accepted state or time has been touched, so an adaptive caller can
    /// rewind by re-copying `x_prev` and retry at a smaller step.
    fn newton_solve(&mut self) -> Result<(), AmsError> {
        let n = self.dim();
        let h = self.slots[self.model.dt_slot];
        // Injected faults (`fault-inject` builds; a scalar instance is
        // lane 0): a residual fault poisons the first VM evaluation of
        // this solve, a refactor fault invalidates the cached factors so
        // the forced failure fires on this solve's first factorization.
        #[cfg(feature = "fault-inject")]
        let injected = crate::fault::active_for(0);
        #[cfg(feature = "fault-inject")]
        match injected {
            Some(crate::fault::SolverFault::ResidualNan) => expr::fault::poison_next_eval(),
            Some(
                crate::fault::SolverFault::RefactorSingular
                | crate::fault::SolverFault::RefactorNonFinite,
            ) => self.ws.lu_valid = false,
            None => {}
        }
        let mut best_residual = f64::INFINITY;
        let mut prev_max_rel = f64::INFINITY;
        let mut stale_iters = 0u32;
        for iter in 1..=Self::MAX_NEWTON_ITERS {
            self.newton_iters += 1;
            // Residual through the compiled programs, tracking its
            // infinity norm for the divergence guard and error payloads.
            // Finiteness is tracked separately: `f64::max` ignores NaN,
            // so folding alone would let a NaN residual masquerade as
            // converged.
            let mut res_norm: f64 = 0.0;
            let mut finite = true;
            for (i, prog) in self.model.programs.iter().enumerate() {
                let v = prog.eval(&self.slots, &mut self.ws.stack);
                finite &= v.is_finite();
                res_norm = res_norm.max(v.abs());
                self.ws.residual[i] = v;
            }
            #[cfg(debug_assertions)]
            {
                // A poisoned residual intentionally disagrees with the
                // tree oracle — skip the check for that solve only.
                #[cfg(feature = "fault-inject")]
                let skip_oracle = matches!(injected, Some(crate::fault::SolverFault::ResidualNan));
                #[cfg(not(feature = "fault-inject"))]
                let skip_oracle = false;
                if !skip_oracle {
                    self.debug_check_residual_oracle();
                }
            }
            if !finite {
                self.ws.lu_valid = false;
                return Err(AmsError::NonFinite {
                    time: self.time,
                    iteration: iter,
                    residual_norm: best_residual,
                });
            }
            best_residual = best_residual.min(res_norm);
            // Modified Newton: factor only when no usable linearization
            // exists; otherwise reuse the previous LU factors.
            let fresh = !self.ws.lu_valid;
            if fresh {
                self.build_and_factor(iter, best_residual)?;
                stale_iters = 0;
            } else {
                self.jacobian_reuse_hits += 1;
                stale_iters += 1;
            }
            // Solve J·δ = −F (negate the residual in place as the rhs).
            self.ws.residual.iter_mut().for_each(|v| *v = -*v);
            self.ws.lu.solve_into(&self.ws.residual, &mut self.ws.delta);
            let mut max_rel: f64 = 0.0;
            let mut update_finite = true;
            for (xi, di) in self.slots[..n].iter_mut().zip(&self.ws.delta) {
                *xi += di;
                update_finite &= xi.is_finite();
                max_rel = max_rel.max(di.abs() / (1.0 + xi.abs()));
            }
            if !update_finite {
                self.ws.lu_valid = false;
                return Err(AmsError::NonFinite {
                    time: self.time,
                    iteration: iter,
                    residual_norm: best_residual,
                });
            }
            if max_rel < self.newton_tol {
                return Ok(());
            }
            // Convergence-rate test: a reused factorization must keep the
            // update norm contracting; otherwise refresh at the current
            // iterate on the next pass.
            let contracting = max_rel < 0.5 * prev_max_rel;
            let stalled = !contracting || stale_iters >= Self::MAX_STALE_ITERS;
            if !fresh && stalled {
                self.ws.lu_valid = false;
                self.jacobian_refactors += 1;
            }
            prev_max_rel = max_rel;
        }
        // The stale linearization is suspect after a failure.
        self.ws.lu_valid = false;
        Err(AmsError::NoConvergence {
            time: self.time,
            iterations: Self::MAX_NEWTON_ITERS,
            residual_norm: best_residual,
            dt: h,
        })
    }

    /// Commits the converged iterate in `slots[..dim]` after a solve at
    /// step `h`: refreshes the `ddt`/`idt` history sequentially (later
    /// operands may reference earlier placeholders), publishes the
    /// solution and advances time by `h`.
    ///
    /// History refresh happens **only** here — a rejected sub-step leaves
    /// the discretized operators exactly at the last accepted state, so
    /// retries at a halved step resample `ddt`/`idt` consistently instead
    /// of integrating a half-updated history.
    fn accept_substep(&mut self, h: f64) {
        let n = self.dim();
        for k in 0..self.model.ddt_progs.len() {
            let v = self.model.ddt_progs[k].eval(&self.slots, &mut self.ws.stack);
            self.slots[self.model.ddt_off + k] = v;
        }
        for k in 0..self.model.idt_progs.len() {
            let v = self.model.idt_progs[k].eval(&self.slots, &mut self.ws.stack);
            self.slots[self.model.idt_off + k] += h * v;
        }
        self.x.copy_from_slice(&self.slots[..n]);
        self.x_prev.copy_from_slice(&self.slots[..n]);
        self.time += h;
    }

    /// Writes the step slots. A changed step invalidates the cached LU
    /// factors: the discretized Jacobian depends on `h`.
    fn set_dt_slots(&mut self, h: f64) {
        let slot = self.model.dt_slot;
        if self.slots[slot] != h {
            self.slots[slot] = h;
            self.slots[slot + 1] = 1.0 / h;
            self.ws.lu_valid = false;
        }
    }

    /// One fixed-`dt` step: a single Newton solve at the nominal step,
    /// surfacing any failure immediately.
    fn step_fixed(&mut self) -> Result<(), AmsError> {
        let n = self.dim();
        // Warm start from the previous solution.
        self.slots[..n].copy_from_slice(&self.x_prev);
        self.newton_solve()?;
        self.accept_substep(self.model.dt);
        self.steps += 1;
        Ok(())
    }

    /// One nominal step under adaptive control: cover `[t, t + dt]` with
    /// sub-steps, halving on rejection (geometric backoff) and regrowing
    /// toward nominal after `grow_streak` clean accepts. Every sub-step
    /// size is `dt / 2^k`, so the interval closes exactly.
    fn step_adaptive(&mut self, sc: StepControl) -> Result<(), AmsError> {
        let n = self.dim();
        let nominal = self.model.dt;
        let t_start = self.time;
        let mut remaining = nominal;
        let mut consecutive_rejects = 0u32;
        // Guard against float dust; with power-of-two sub-steps the
        // remainder actually reaches 0.0 exactly.
        while remaining > nominal * 1e-12 {
            let h = self.cur_dt.min(remaining);
            self.set_dt_slots(h);
            // Warm start (or rewind, after a rejection) from the last
            // accepted solution.
            self.slots[..n].copy_from_slice(&self.x_prev);
            match self.newton_solve() {
                Ok(()) => {
                    self.accept_substep(h);
                    remaining -= h;
                    consecutive_rejects = 0;
                    if self.obs.enabled() {
                        self.obs.time("amsim.dt", h);
                    }
                    if self.cur_dt < nominal {
                        self.accept_streak += 1;
                        if self.accept_streak >= sc.grow_streak {
                            self.cur_dt = (2.0 * self.cur_dt).min(nominal);
                            self.dt_grows += 1;
                            self.accept_streak = 0;
                        }
                    }
                }
                Err(e) => {
                    self.steps_rejected += 1;
                    self.accept_streak = 0;
                    consecutive_rejects += 1;
                    let half = 0.5 * h;
                    if consecutive_rejects > sc.max_retries || half < sc.min_dt {
                        // Budget exhausted: give up with the last solver
                        // error. State and time reflect the last
                        // *accepted* sub-step, not the nominal boundary.
                        return Err(e);
                    }
                    self.step_retries += 1;
                    self.cur_dt = half;
                    self.dt_shrinks += 1;
                }
            }
        }
        // Snap to the exact nominal boundary: observable time stays a
        // multiple of `dt` regardless of the sub-step history.
        self.time = t_start + nominal;
        self.steps += 1;
        Ok(())
    }

    /// Advances the simulation by one nominal step.
    ///
    /// The Newton loop is allocation-free: residuals and Jacobian entries
    /// evaluate through compiled VM programs into preallocated workspace
    /// buffers, and the LU factorization is *reused* across iterations and
    /// accepted steps (modified Newton). The factorization refreshes only
    /// when the iteration stalls — when the update norm stops contracting
    /// — or after [`AmsSimulator::MAX_STALE_ITERS`] reuses without
    /// convergence. Linear systems therefore factor exactly once for an
    /// entire transient.
    ///
    /// With a [`StepControl`] attached, a failed solve is retried with a
    /// geometrically halved sub-step (inputs held at their step values —
    /// zero-order hold) until the interval `[t, t + dt]` closes, the
    /// retry budget is exhausted, or the backoff floor is hit; the
    /// sub-step then regrows toward nominal after a streak of clean
    /// accepts. Rejections and step rescaling are reported as
    /// `amsim.step.{rejected,retries,dt_shrink,dt_grow}` counters plus an
    /// `amsim.dt` histogram of accepted sub-steps.
    ///
    /// # Errors
    ///
    /// [`AmsError::NoConvergence`] / [`AmsError::Singular`] /
    /// [`AmsError::NonFinite`] on solver failure (after exhausting the
    /// backoff budget, if adaptive). On error the instance remains at its
    /// last accepted state — under adaptive control that can lie strictly
    /// inside the nominal interval (inspect [`AmsSimulator::time`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the declared input count.
    pub fn try_step(&mut self, inputs: &[f64]) -> Result<(), AmsError> {
        assert_eq!(inputs.len(), self.model.input_names.len(), "input arity");
        let input_off = self.model.input_off;
        self.slots[input_off..input_off + inputs.len()].copy_from_slice(inputs);
        match self.step_control {
            None => self.step_fixed(),
            Some(sc) => self.step_adaptive(sc),
        }
    }

    /// Advances the simulation by one step.
    ///
    /// # Panics
    ///
    /// Panics on Newton failure (see [`AmsSimulator::try_step`]) or input
    /// arity mismatch.
    pub fn step(&mut self, inputs: &[f64]) {
        self.try_step(inputs)
            .unwrap_or_else(|e| panic!("amsim step failed: {e}"));
    }
}

impl Drop for AmsSimulator {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

/// Replaces `ddt`/`idt` with backward-Euler forms over history
/// placeholders (`__amsim_ddt{k}` / `__amsim_idt{k}` variables). The step
/// itself enters as the placeholder variables `__amsim_dt` / `__amsim_invdt`
/// — slots, not constants — so an adaptive controller can rescale the
/// discretization at run time without recompiling. The symbolic Jacobian
/// is unaffected: placeholders are held constant by the derivative
/// algebra, exactly as the history terms always were.
fn discretize(
    e: &QExpr,
    placeholders: &mut BTreeMap<Quantity, Placeholder>,
    ddt_inner: &mut Vec<QExpr>,
    idt_inner: &mut Vec<QExpr>,
) -> QExpr {
    match e {
        Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => e.clone(),
        Expr::Neg(a) => -discretize(a, placeholders, ddt_inner, idt_inner),
        Expr::Bin(op, a, b) => Expr::bin(
            *op,
            discretize(a, placeholders, ddt_inner, idt_inner),
            discretize(b, placeholders, ddt_inner, idt_inner),
        ),
        Expr::Call(f, args) => Expr::Call(
            *f,
            args.iter()
                .map(|a| discretize(a, placeholders, ddt_inner, idt_inner))
                .collect(),
        ),
        Expr::Cond(c, t, el) => Expr::cond(
            discretize(c, placeholders, ddt_inner, idt_inner),
            discretize(t, placeholders, ddt_inner, idt_inner),
            discretize(el, placeholders, ddt_inner, idt_inner),
        ),
        Expr::Ddt(inner) => {
            let inner = discretize(inner, placeholders, ddt_inner, idt_inner);
            let k = ddt_inner.len();
            let q = Quantity::var(format!("__amsim_ddt{k}"));
            placeholders.insert(q.clone(), Placeholder::Ddt(k));
            ddt_inner.push(inner.clone());
            let inv_dt = Quantity::var(DT_INV_NAME);
            placeholders.insert(inv_dt.clone(), Placeholder::InvDt);
            (inner - Expr::var(q)) * Expr::var(inv_dt)
        }
        Expr::Idt(inner) => {
            let inner = discretize(inner, placeholders, ddt_inner, idt_inner);
            let k = idt_inner.len();
            let q = Quantity::var(format!("__amsim_idt{k}"));
            placeholders.insert(q.clone(), Placeholder::Idt(k));
            idt_inner.push(inner.clone());
            let dt_q = Quantity::var(DT_NAME);
            placeholders.insert(dt_q.clone(), Placeholder::Dt);
            Expr::var(q) + Expr::var(dt_q) * inner
        }
    }
}

/// Reserved variable name backed by the `h` slot.
const DT_NAME: &str = "__amsim_dt";
/// Reserved variable name backed by the `1/h` slot.
const DT_INV_NAME: &str = "__amsim_invdt";

#[cfg(test)]
mod tests {
    use super::*;
    use vams_parser::parse_module;

    const RC1: &str = "module rc(in, out);
        input in; output out;
        parameter real R = 5k;
        parameter real C = 25n;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) res;
        branch (out, gnd) cap;
        analog begin
          V(res) <+ R * I(res);
          I(cap) <+ C * ddt(V(cap));
        end
      endmodule";

    #[test]
    fn model_hash_is_stable_and_discriminating() {
        let m = parse_module(RC1).unwrap();
        let compile = |dt: f64| {
            Simulation::new(&m)
                .dt(dt)
                .output("V(out)")
                .compile()
                .unwrap()
        };
        // Two independent compiles of the same module + settings agree.
        assert_eq!(compile(1e-6).model_hash(), compile(1e-6).model_hash());
        // A numerically meaningful difference changes the hash.
        assert_ne!(compile(1e-6).model_hash(), compile(2e-6).model_hash());
        let other = parse_module(&amsvp_core::circuits::rc_ladder(2)).unwrap();
        let other = Simulation::new(&other)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        assert_ne!(compile(1e-6).model_hash(), other.model_hash());
        // Tolerance and step-control differences are part of the key too.
        let tol = Simulation::new(&m)
            .dt(1e-6)
            .newton_tol(1e-7)
            .output("V(out)")
            .compile()
            .unwrap();
        assert_ne!(compile(1e-6).model_hash(), tol.model_hash());
    }

    #[test]
    fn rc_step_response() {
        let m = parse_module(RC1).unwrap();
        let tau = 5e3 * 25e-9;
        let mut sim = Simulation::new(&m)
            .dt(tau / 200.0)
            .output("V(out)")
            .build()
            .unwrap();
        for _ in 0..200 {
            sim.step(&[1.0]);
        }
        let analytic = 1.0 - (-1.0_f64).exp();
        assert!((sim.output(0) - analytic).abs() < 3e-3);
        assert!((sim.time() - tau).abs() < 1e-12);
        // Linear system: one Newton iteration reaches machine precision,
        // the second confirms convergence.
        assert!(sim.newton_iterations() <= 2 * 200 + 2);
    }

    #[test]
    fn system_dimensions_are_square() {
        let m = parse_module(RC1).unwrap();
        let sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        // RC1: unknowns = V[res], I[res], V[cap], I[cap], V(out) = 5.
        assert_eq!(sim.dim(), 5);
        assert_eq!(sim.input_names(), &["in".to_string()]);
    }

    #[test]
    fn branch_quantities_observable() {
        let m = parse_module(RC1).unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .output("I(cap)")
            .build()
            .unwrap();
        sim.step(&[1.0]);
        let out = sim.output(0);
        let icap = sim.output(1);
        // KCL: the cap current equals the resistor current (in−out)/R.
        assert!((icap - (1.0 - out) / 5e3).abs() < 1e-9);
        assert_eq!(sim.value(&Quantity::node_v("out")), Some(out));
    }

    #[test]
    fn nonlinear_diode_converges() {
        // Diode + resistor: V(d) across an exponential device.
        let m = parse_module(
            "module dio(in, out);
               input in; output out;
               electrical in, out, gnd;
               ground gnd;
               branch (in, out) r;
               branch (out, gnd) d;
               analog begin
                 V(r) <+ 1k * I(r);
                 I(d) <+ 1e-12 * (exp(V(d) / 0.02585) - 1);
               end
             endmodule",
        )
        .unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        sim.step(&[0.7]);
        let vd = sim.output(0);
        // Diode drop in a sane region; the current balances through R.
        assert!(vd > 0.3 && vd < 0.7, "diode voltage {vd}");
        let ir = (0.7 - vd) / 1e3;
        let id = 1e-12 * ((vd / 0.02585).exp() - 1.0);
        assert!((ir - id).abs() < 1e-9 * ir.abs().max(1e-12));
    }

    #[test]
    fn vm_residuals_match_tree_oracle() {
        // Nonlinear (exp) plus piecewise clipping: exercises Call, Select
        // and the ddt history slots through both evaluation paths.
        let m = parse_module(
            "module clipamp(in, out);
               input in; output out;
               electrical in, out, mid, gnd;
               ground gnd;
               branch (in, mid) r;
               branch (mid, gnd) d;
               branch (mid, gnd) c;
               real v;
               analog begin
                 v = 10 * V(mid, gnd);
                 if (v > 1.0) v = 1.0;
                 else if (v < -1.0) v = -1.0;
                 V(r) <+ 1k * I(r);
                 I(d) <+ 1e-9 * (exp(V(d) / 0.1) - 1);
                 I(c) <+ 10n * ddt(V(c));
                 V(out, gnd) <+ v;
               end
             endmodule",
        )
        .unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-7)
            .output("V(out)")
            .build()
            .unwrap();
        let n = sim.dim();
        let mut vm_out = vec![0.0; n];
        let mut tree_out = vec![0.0; n];
        for k in 0..50 {
            sim.step(&[0.02 * k as f64]);
            sim.residuals_vm(&mut vm_out);
            sim.residuals_tree(&mut tree_out);
            for (i, (a, b)) in vm_out.iter().zip(&tree_out).enumerate() {
                let scale = 1.0 + a.abs().max(b.abs());
                assert!(
                    (a - b).abs() <= 1e-12 * scale,
                    "step {k} residual {i}: vm {a} vs tree {b}"
                );
            }
        }
    }

    #[test]
    fn linear_circuit_factors_once() {
        let m = parse_module(RC1).unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        for k in 0..100 {
            sim.step(&[if k < 50 { 1.0 } else { 0.0 }]);
        }
        // Modified Newton on a linear system: the Jacobian is constant, so
        // the single compile-time build/factorization serves the whole
        // transient and every iteration is a reuse.
        assert_eq!(sim.jacobian_builds(), 1);
        assert_eq!(sim.lu_factorizations(), 1);
        assert_eq!(sim.jacobian_refactors(), 0);
        assert_eq!(sim.jacobian_reuse_hits(), sim.newton_iterations());
    }

    #[test]
    fn counters_report_under_split_names() {
        let obs = Obs::recording();
        let m = parse_module(RC1).unwrap();
        {
            let mut sim = Simulation::new(&m)
                .dt(1e-6)
                .output("V(out)")
                .collector(obs.clone())
                .build()
                .unwrap();
            for _ in 0..10 {
                sim.step(&[1.0]);
            }
        } // drop flushes
        let report = obs.report().unwrap();
        assert_eq!(report.counter("amsim.steps"), 10);
        assert!(report.counter("amsim.newton_iterations") > 0);
        assert_eq!(report.counter("amsim.jacobian.builds"), 1);
        assert_eq!(report.counter("amsim.lu.factorizations"), 1);
        assert!(report.counter("amsim.jacobian.reuse_hits") > 0);
        assert_eq!(report.counter("amsim.jacobian.refactor"), 0);
    }

    #[test]
    fn nonlinear_stall_triggers_refactor() {
        // Strongly nonlinear diode with a large input swing: the first
        // step's factorization cannot serve the later bias points, so the
        // stall detector must refresh at least once.
        let m = parse_module(
            "module dio(in, out);
               input in; output out;
               electrical in, out, gnd;
               ground gnd;
               branch (in, out) r;
               branch (out, gnd) d;
               analog begin
                 V(r) <+ 1k * I(r);
                 I(d) <+ 1e-12 * (exp(V(d) / 0.02585) - 1);
               end
             endmodule",
        )
        .unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        for k in 0..20 {
            sim.step(&[0.05 * k as f64]);
        }
        assert!(sim.jacobian_refactors() > 0, "stall test never fired");
        assert!(
            sim.lu_factorizations() < sim.newton_iterations(),
            "factorization reuse must skip some iterations"
        );
        // The final operating point still balances currents.
        let vd = sim.output(0);
        let ir = (0.95 - vd) / 1e3;
        let id = 1e-12 * ((vd / 0.02585).exp() - 1.0);
        assert!((ir - id).abs() < 1e-9 * ir.abs().max(1e-12));
    }

    #[test]
    fn output_specs_validated() {
        let m = parse_module(RC1).unwrap();
        assert!(matches!(
            Simulation::new(&m).dt(1e-6).output("V(ghost)").build(),
            Err(AmsError::UnknownOutput { .. })
        ));
        assert!(matches!(
            Simulation::new(&m).dt(-1.0).output("V(out)").build(),
            Err(AmsError::InvalidTimeStep { .. })
        ));
        assert!(matches!(
            Simulation::new(&m).newton_tol(0.0).output("V(out)").build(),
            Err(AmsError::InvalidTolerance { .. })
        ));
    }

    #[test]
    fn compiled_model_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledModel>();
        assert_send_sync::<Arc<CompiledModel>>();
        // Instances migrate between threads (cosim already relies on it).
        fn assert_send<T: Send>() {}
        assert_send::<Instance>();
    }

    #[test]
    fn instance_matches_monolithic_build() {
        // compile() + instance() must reproduce build() bit for bit.
        let m = parse_module(RC1).unwrap();
        let mut whole = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let mut inst = model.instance();
        for k in 0..100 {
            let u = if k < 50 { 1.0 } else { 0.25 };
            whole.step(&[u]);
            inst.step(&[u]);
            assert_eq!(whole.output(0).to_bits(), inst.output(0).to_bits());
        }
        // The instance never rebuilt: the compile-time LU served it all.
        assert_eq!(inst.jacobian_builds(), 0);
        assert_eq!(inst.jacobian_reuse_hits(), inst.newton_iterations());
    }

    #[test]
    fn one_model_shared_across_threads() {
        let m = parse_module(RC1).unwrap();
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let mut reference = model.instance();
        for _ in 0..50 {
            reference.step(&[1.0]);
        }
        let expected = reference.output(0);
        let results: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let model = &model;
                    s.spawn(move || {
                        let mut inst = model.instance();
                        for _ in 0..50 {
                            inst.step(&[1.0]);
                        }
                        inst.output(0)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r.to_bits(), expected.to_bits());
        }
    }

    #[test]
    fn compile_reports_one_build_for_many_instances() {
        let obs = Obs::recording();
        let m = parse_module(RC1).unwrap();
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .collector(obs.clone())
            .compile()
            .unwrap();
        for _ in 0..8 {
            let mut inst = model
                .instance_builder()
                .collector(obs.clone())
                .build()
                .unwrap();
            for _ in 0..10 {
                inst.step(&[1.0]);
            }
        }
        let report = obs.report().unwrap();
        // Linear circuit: the compile-time build is the only one, no
        // matter how many instances ran.
        assert_eq!(report.counter("amsim.jacobian.builds"), 1);
        assert_eq!(report.counter("amsim.lu.factorizations"), 1);
        assert_eq!(report.counter("amsim.steps"), 80);
    }

    #[test]
    fn loose_tolerance_spends_fewer_iterations() {
        let m = parse_module(
            "module dio(in, out);
               input in; output out;
               electrical in, out, gnd;
               ground gnd;
               branch (in, out) r;
               branch (out, gnd) d;
               analog begin
                 V(r) <+ 1k * I(r);
                 I(d) <+ 1e-12 * (exp(V(d) / 0.02585) - 1);
               end
             endmodule",
        )
        .unwrap();
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let run = |tol: f64| {
            let mut inst = model.instance_builder().newton_tol(tol).build().unwrap();
            for k in 0..10 {
                inst.step(&[0.07 * k as f64]);
            }
            (inst.newton_iterations(), inst.output(0))
        };
        let (tight_iters, tight_v) = run(1e-10);
        let (loose_iters, loose_v) = run(1e-4);
        assert!(
            loose_iters < tight_iters,
            "loose {loose_iters} vs tight {tight_iters}"
        );
        // Both land on the same operating point to the loose tolerance.
        assert!((tight_v - loose_v).abs() < 1e-3, "{tight_v} vs {loose_v}");
        assert!(matches!(
            model.instance_builder().newton_tol(f64::NAN).build(),
            Err(AmsError::InvalidTolerance { .. })
        ));
    }

    #[test]
    fn signal_flow_vars_join_the_system() {
        let m = parse_module(
            "module amp(i, o); input i; output o;
               electrical i, o, gnd; ground gnd;
               real y;
               analog begin
                 y = 3 * V(i, gnd);
                 V(o, gnd) <+ y;
               end
             endmodule",
        )
        .unwrap();
        let mut sim = Simulation::new(&m).dt(1e-6).output("V(o)").build().unwrap();
        sim.step(&[0.5]);
        assert!((sim.output(0) - 1.5).abs() < 1e-9);
    }

    /// Purely algebraic stiff divider: no state, so no step size can
    /// soften the input jump — Newton fails at any `dt`.
    const STIFF_DIODE: &str = "module dio(in, out);
        input in; output out;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) r;
        branch (out, gnd) d;
        analog begin
          V(r) <+ 1k * I(r);
          I(d) <+ 1p * (exp(V(d) / 5m) - 1);
        end
      endmodule";

    /// Stiff diode clamp *with* a capacitor: backward Euler at a small
    /// sub-step stiffens the cap conductance `C/h`, which limits how far
    /// the output can move per solve — adaptive backoff rescues it.
    const STIFF_CLAMP: &str = "module clamp(in, out);
        input in; output out;
        electrical in, out, gnd;
        ground gnd;
        branch (in, out) r;
        branch (out, gnd) d;
        branch (out, gnd) c;
        analog begin
          V(r) <+ 1k * I(r);
          I(d) <+ 1p * (exp(V(d) / 5m) - 1);
          I(c) <+ 1n * ddt(V(c));
        end
      endmodule";

    #[test]
    fn adaptive_control_is_bit_transparent_on_benign_circuits() {
        // A linear circuit never rejects, so an adaptive instance must
        // reproduce the fixed-dt trajectory bit for bit with zero
        // rejection/backoff activity.
        let m = parse_module(RC1).unwrap();
        let mut fixed = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        let mut adaptive = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .step_control(StepControl::new(1e-12))
            .build()
            .unwrap();
        for k in 0..200 {
            let u = if (k / 40) % 2 == 0 { 1.0 } else { 0.0 };
            fixed.step(&[u]);
            adaptive.step(&[u]);
            assert_eq!(fixed.output(0).to_bits(), adaptive.output(0).to_bits());
        }
        assert_eq!(fixed.time().to_bits(), adaptive.time().to_bits());
        assert_eq!(adaptive.steps_rejected(), 0);
        assert_eq!(adaptive.step_retries(), 0);
        assert_eq!(adaptive.dt_shrinks(), 0);
        assert_eq!(adaptive.dt_grows(), 0);
        assert_eq!(adaptive.current_dt(), 1e-6);
    }

    #[test]
    fn non_finite_input_is_a_typed_error() {
        let m = parse_module(RC1).unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .build()
            .unwrap();
        sim.step(&[1.0]);
        let before = sim.output(0);
        let err = sim.try_step(&[f64::NAN]).unwrap_err();
        assert!(
            matches!(err, AmsError::NonFinite { iteration: 1, .. }),
            "want NonFinite at iteration 1, got {err}"
        );
        // The failure neither advanced time nor corrupted accepted state.
        assert_eq!(sim.output(0).to_bits(), before.to_bits());
        assert!((sim.time() - 1e-6).abs() < 1e-18);
        assert!(sim.try_step(&[1.0]).is_ok(), "solver must recover");
    }

    #[test]
    fn no_convergence_carries_residual_and_dt() {
        // Sharp diode (thermal voltage 5 mV) hit with a full-scale step:
        // damped-free Newton descends ~5 mV per iteration from the
        // overshoot and cannot close within the iteration cap.
        let m = parse_module(STIFF_DIODE).unwrap();
        let mut sim = Simulation::new(&m)
            .dt(1e-4)
            .output("V(out)")
            .build()
            .unwrap();
        match sim.try_step(&[1.0]) {
            Err(AmsError::NoConvergence {
                iterations,
                residual_norm,
                dt,
                ..
            }) => {
                assert_eq!(iterations, Instance::MAX_NEWTON_ITERS);
                assert!(
                    residual_norm.is_finite() && residual_norm > 0.0,
                    "best residual {residual_norm}"
                );
                assert_eq!(dt, 1e-4);
            }
            other => panic!("want NoConvergence, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_stepping_rescues_the_stiff_diode() {
        let m = parse_module(STIFF_CLAMP).unwrap();
        let obs = Obs::recording();
        let mut sim = Simulation::new(&m)
            .dt(1e-4)
            .output("V(out)")
            .step_control(StepControl::new(1e-9))
            .collector(obs.clone())
            .build()
            .unwrap();
        for _ in 0..5 {
            sim.try_step(&[1.0]).expect("adaptive run must complete");
        }
        assert!(sim.steps_rejected() > 0, "stiff edge must reject");
        assert!(sim.dt_shrinks() > 0);
        assert!(sim.dt_grows() > 0, "dt must regrow after the edge");
        assert!((sim.time() - 5e-4).abs() < 1e-15, "time {}", sim.time());
        // Operating point: diode clamps out at IS·(exp(v/VT)−1) = (1−v)/R.
        let vd = sim.output(0);
        let id = 1e-12 * ((vd / 5e-3).exp() - 1.0);
        assert!(((1.0 - vd) / 1e3 - id).abs() < 1e-8, "clamp at {vd}");
        drop(sim);
        let report = obs.report().unwrap();
        assert!(report.counter("amsim.step.rejected") > 0);
        assert!(report.counter("amsim.step.retries") > 0);
        assert!(report.counter("amsim.step.dt_shrink") > 0);
        assert!(report.counter("amsim.step.dt_grow") > 0);
        let hist = &report.timers["amsim.dt"];
        assert!(
            hist.count > 5,
            "sub-step histogram must see more accepts than nominal steps"
        );
    }

    #[test]
    fn step_control_is_validated() {
        let m = parse_module(RC1).unwrap();
        for bad in [0.0, -1e-9, f64::NAN, 1e-3] {
            let err = Simulation::new(&m)
                .dt(1e-6)
                .output("V(out)")
                .step_control(StepControl::new(bad))
                .build()
                .err()
                .expect("invalid step control must be rejected");
            assert!(
                matches!(err, AmsError::InvalidStepControl { .. }),
                "min_dt {bad}: got {err}"
            );
        }
        // Instance builders re-validate their override.
        let model = Simulation::new(&m)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        assert!(matches!(
            model
                .instance_builder()
                .step_control(StepControl::new(1e-2))
                .build(),
            Err(AmsError::InvalidStepControl { .. })
        ));
    }

    #[test]
    fn instance_builder_can_disable_model_step_control() {
        let m = parse_module(STIFF_CLAMP).unwrap();
        let model = Simulation::new(&m)
            .dt(1e-4)
            .output("V(out)")
            .step_control(StepControl::new(1e-9))
            .compile()
            .unwrap();
        assert!(model.step_control().is_some());
        // Default instances inherit the model's control and survive.
        let mut inherits = model.instance();
        assert!(inherits.try_step(&[1.0]).is_ok());
        // An explicit `None` forces fixed-dt semantics back on.
        let mut fixed = model.instance_builder().step_control(None).build().unwrap();
        assert!(matches!(
            fixed.try_step(&[1.0]),
            Err(AmsError::NoConvergence { .. })
        ));
    }

    #[test]
    fn backoff_budget_exhaustion_surfaces_the_solver_error() {
        let m = parse_module(STIFF_DIODE).unwrap();
        // min_dt only one halving away: the stiff edge cannot be rescued.
        let mut sim = Simulation::new(&m)
            .dt(1e-4)
            .output("V(out)")
            .step_control(StepControl::new(0.9e-4).max_retries(3))
            .build()
            .unwrap();
        let err = sim.try_step(&[1.0]).unwrap_err();
        assert!(matches!(err, AmsError::NoConvergence { .. }), "{err}");
        assert!(sim.steps_rejected() > 0);
        // Time stays at the last accepted boundary (here: the start).
        assert_eq!(sim.time(), 0.0);
    }

    #[test]
    fn matches_abstracted_model_on_rc() {
        use amsvp_core::Abstraction;
        let m = parse_module(RC1).unwrap();
        let tau = 5e3 * 25e-9;
        let dt = tau / 100.0;
        let mut reference = Simulation::new(&m).dt(dt).output("V(out)").build().unwrap();
        let mut abstracted = Abstraction::new(&m).dt(dt).build().unwrap();
        // Same discretization (backward Euler at the same step) ⇒ the two
        // must agree to solver tolerance, step by step.
        for k in 0..300 {
            let u = if (k / 100) % 2 == 0 { 1.0 } else { 0.0 };
            reference.step(&[u]);
            abstracted.step(&[u]);
            assert!(
                (reference.output(0) - abstracted.output(0)).abs() < 1e-8,
                "step {k}: {} vs {}",
                reference.output(0),
                abstracted.output(0)
            );
        }
    }
}
