//! Lockstep co-simulation bridge: the analog reference simulator on its
//! own thread, synchronized with the digital kernel at every analog time
//! step.
//!
//! Commercial mixed-signal co-simulation (Questa driving ELDO in the
//! paper's Table III) pays one cross-simulator synchronization per analog
//! step: the digital side hands over inputs, blocks, and receives outputs.
//! [`CosimHandle`] reproduces that honestly with a worker thread and a
//! bounded rendezvous channel per direction — the measured overhead per
//! step is genuine inter-thread communication, not a modeled constant.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use obs::{CounterTracker, Obs};

use crate::{AmsError, AmsSimulator};

enum Request {
    Step(Vec<f64>),
    Stop,
}

enum Response {
    Outputs(Vec<f64>),
    Failed(AmsError),
}

/// Client side of a co-simulated analog solver.
///
/// Each [`CosimHandle::step`] performs a full round trip to the solver
/// thread, mirroring the per-step synchronization of commercial
/// co-simulation. Dropping the handle shuts the solver thread down.
///
/// # Example
///
/// ```
/// use amsim::{cosim::CosimHandle, Simulation};
///
/// let src = "
/// module r2(i, o); input i; output o;
///   electrical i, o, gnd; ground gnd;
///   branch (i, o) r1;
///   branch (o, gnd) r2;
///   analog begin
///     V(r1) <+ 1k * I(r1);
///     V(r2) <+ 3k * I(r2);
///   end
/// endmodule";
/// let module = vams_parser::parse_module(src)?;
/// let sim = Simulation::new(&module).dt(1e-6).output("V(o)").build()?;
/// let mut cosim = CosimHandle::spawn(sim, 1);
/// let out = cosim.step(&[4.0])?;
/// assert!((out[0] - 3.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct CosimHandle {
    tx: SyncSender<Request>,
    rx: Receiver<Response>,
    worker: Option<JoinHandle<()>>,
    outputs: usize,
    steps: u64,
    obs: Obs,
    obs_handshakes: CounterTracker,
}

impl CosimHandle {
    /// Spawns the solver thread. `outputs` is the number of observed
    /// outputs the simulator was built with.
    pub fn spawn(mut sim: AmsSimulator, outputs: usize) -> CosimHandle {
        // Rendezvous channels: capacity 0 would deadlock the simple
        // protocol, capacity 1 keeps the round trip strict.
        let (req_tx, req_rx) = sync_channel::<Request>(1);
        let (resp_tx, resp_rx) = sync_channel::<Response>(1);
        let worker = std::thread::spawn(move || {
            while let Ok(msg) = req_rx.recv() {
                match msg {
                    Request::Stop => break,
                    Request::Step(inputs) => {
                        let resp = match sim.try_step(&inputs) {
                            Ok(()) => {
                                Response::Outputs((0..outputs).map(|i| sim.output(i)).collect())
                            }
                            Err(e) => Response::Failed(e),
                        };
                        if resp_tx.send(resp).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        CosimHandle {
            tx: req_tx,
            rx: resp_rx,
            worker: Some(worker),
            outputs,
            steps: 0,
            obs: Obs::none(),
            obs_handshakes: CounterTracker::default(),
        }
    }

    /// Attaches an instrumentation collector; the handle reports
    /// `cosim.handshakes` (one per step round trip) through it.
    #[must_use]
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Number of outputs returned per step.
    pub fn output_count(&self) -> usize {
        self.outputs
    }

    /// Steps synchronized so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advances the analog solver one step and returns its outputs —
    /// one full thread round trip.
    ///
    /// # Errors
    ///
    /// Propagates solver failures; also fails if the worker died.
    pub fn step(&mut self, inputs: &[f64]) -> Result<Vec<f64>, AmsError> {
        self.tx
            .send(Request::Step(inputs.to_vec()))
            .map_err(|_| AmsError::CosimDisconnected)?;
        self.steps += 1;
        match self.rx.recv() {
            Ok(Response::Outputs(o)) => Ok(o),
            Ok(Response::Failed(e)) => Err(e),
            Err(_) => Err(AmsError::CosimDisconnected),
        }
    }

    /// Reports the `cosim.handshakes` counter delta to the attached
    /// collector. Called automatically on drop.
    pub fn flush_counters(&mut self) {
        if self.obs.enabled() {
            let steps = self.steps;
            self.obs_handshakes
                .flush(&self.obs, "cosim.handshakes", steps);
        }
    }
}

impl Drop for CosimHandle {
    fn drop(&mut self) {
        self.flush_counters();
        let _ = self.tx.send(Request::Stop);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use vams_parser::parse_module;

    #[test]
    fn cosim_matches_in_process_simulation() {
        let src = "module rc(in, out);
            input in; output out;
            electrical in, out, gnd;
            ground gnd;
            branch (in, out) res;
            branch (out, gnd) cap;
            analog begin
              V(res) <+ 5k * I(res);
              I(cap) <+ 25n * ddt(V(cap));
            end
          endmodule";
        let m = parse_module(src).unwrap();
        let tau = 5e3 * 25e-9;
        let dt = tau / 50.0;
        let mut local = Simulation::new(&m).dt(dt).output("V(out)").build().unwrap();
        let remote_sim = Simulation::new(&m).dt(dt).output("V(out)").build().unwrap();
        let mut remote = CosimHandle::spawn(remote_sim, 1);
        for k in 0..100 {
            let u = if k < 50 { 1.0 } else { 0.0 };
            local.step(&[u]);
            let got = remote.step(&[u]).unwrap();
            assert!((got[0] - local.output(0)).abs() < 1e-12);
        }
        assert_eq!(remote.steps(), 100);
        assert_eq!(remote.output_count(), 1);
    }

    #[test]
    fn solver_errors_propagate() {
        // An over-constrained module fails at construction, so build a
        // valid one and drive it into Newton failure is hard for linear
        // circuits; instead check the handle shuts down cleanly.
        let src = "module r(i, o); input i; output o;
            electrical i, o, gnd; ground gnd;
            branch (i, o) a;
            branch (o, gnd) b;
            analog begin
              V(a) <+ 1k * I(a);
              V(b) <+ 1k * I(b);
            end
          endmodule";
        let m = parse_module(src).unwrap();
        let sim = Simulation::new(&m).dt(1e-6).output("V(o)").build().unwrap();
        let mut h = CosimHandle::spawn(sim, 1);
        let out = h.step(&[2.0]).unwrap();
        assert!((out[0] - 1.0).abs() < 1e-9);
        drop(h); // must join without hanging
    }
}
