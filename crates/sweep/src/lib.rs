//! Work-stealing parallel scenario sweeps over shared compiled models.
//!
//! The paper's experiments (Tables I–III) are *sweeps*: the same circuit
//! simulated many times under varying stimuli, time steps, and solver
//! settings. Compiling a Verilog-AMS module — parsing, conservative-law
//! extraction, discretization, bytecode generation, symbolic Jacobian —
//! costs far more than any single transient run, so repeating it per run
//! would dominate a sweep. This crate exploits the model/instance split
//! introduced in [`amsim`] and [`eln`]: one immutable, `Send + Sync`
//! compiled model ([`amsim::CompiledModel`], [`eln::CompiledNet`]) is
//! compiled **once**, wrapped in an [`Arc`], and shared by every worker;
//! each scenario then pays only for a cheap per-run instance.
//!
//! [`SweepEngine`] shards scenarios across a pool of `std::thread` workers
//! with a work-stealing index counter: worker *w* is seeded with scenario
//! *w* and then claims the next unclaimed index with an atomic
//! `fetch_add`, so fast workers drain the queue while slow scenarios
//! never stall the pool. Every scenario records into its own
//! [`obs::Obs`] collector (no contention on a shared lock in the hot
//! loop); the engine merges the per-scenario reports **in scenario index
//! order** — together with sweep-level counters and wall-time histograms
//! — so the merged [`Report`] is identical regardless of worker count or
//! scheduling.
//!
//! # Example
//!
//! ```
//! use amsvp_sweep::SweepEngine;
//!
//! let engine = SweepEngine::new().workers(4);
//! let scenarios: Vec<u64> = (0..32).collect();
//! let outcome = engine.run(&scenarios, |ctx, s| {
//!     ctx.obs.add("work.items", 1);
//!     s * s
//! });
//! assert_eq!(outcome.results[5], 25);
//! assert_eq!(outcome.report.counter("work.items"), 32);
//! assert_eq!(outcome.report.counter("sweep.scenarios"), 32);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use amsim::{AmsError, CompiledModel};
use amsvp_core::circuits::Stimulus;
use eln::{CompiledNet, NodeId, SourceId};
use obs::{Obs, Report};

/// Per-scenario context handed to the sweep closure.
///
/// `obs` is a fresh recording collector owned by this scenario alone —
/// attach it to the instances the scenario builds; the engine folds it
/// into the merged sweep report afterwards.
pub struct ScenarioCtx {
    /// Index of the scenario in the input slice.
    pub index: usize,
    /// Worker that executes this scenario (0-based).
    pub worker: usize,
    /// Recording collector private to this scenario.
    pub obs: Obs,
}

/// Everything a finished sweep produces.
pub struct SweepOutcome<R> {
    /// One result per scenario, in input order.
    pub results: Vec<R>,
    /// The per-scenario instrumentation reports, in input order.
    pub scenario_reports: Vec<Report>,
    /// All scenario reports merged in index order, plus the sweep-level
    /// `sweep.*` counters and timers (see [`SweepEngine::run`]).
    pub report: Report,
    /// Wall-clock duration of the whole sweep in seconds.
    pub wall: f64,
    /// Number of workers the sweep actually used.
    pub workers: usize,
}

/// A work-stealing scenario-sweep engine over a fixed worker pool.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    workers: usize,
}

impl SweepEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> SweepEngine {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepEngine { workers }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> SweepEngine {
        self.workers = n.max(1);
        self
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Runs `f` once per scenario across the worker pool and merges the
    /// per-scenario reports.
    ///
    /// Scheduling: worker *w* starts on scenario *w*, then repeatedly
    /// claims the lowest unclaimed index (atomic `fetch_add`) until the
    /// queue is empty — so with at least as many scenarios as workers,
    /// every worker executes at least one scenario.
    ///
    /// The merged [`SweepOutcome::report`] contains, beyond the summed
    /// scenario counters and timers:
    ///
    /// * `sweep.scenarios` — number of scenarios executed;
    /// * `sweep.workers` — pool size;
    /// * `sweep.worker.{w}.scenarios` — scenarios executed by worker *w*
    ///   (scheduling-dependent; everything else is not);
    /// * `sweep.scenario` — wall-time histogram over individual
    ///   scenarios, observed in index order;
    /// * `sweep.wall` — one observation: the whole sweep's wall time.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` once all workers have stopped.
    pub fn run<S, R, F>(&self, scenarios: &[S], f: F) -> SweepOutcome<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&ScenarioCtx, &S) -> R + Sync,
    {
        let workers = self.workers;
        let n = scenarios.len();
        let start = Instant::now();

        // Next index to steal. Workers 0..min(workers, n) are seeded with
        // their own index, so stealing starts past the seeds.
        let next = AtomicUsize::new(workers.min(n));
        let (tx, rx) = mpsc::channel::<(usize, usize, R, Report, f64)>();

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut scenario_reports = vec![Report::default(); n];
        let mut scenario_secs = vec![0.0_f64; n];
        let mut per_worker = vec![0u64; workers];

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut idx = if w < n { w } else { usize::MAX };
                    while idx < n {
                        let ctx = ScenarioCtx {
                            index: idx,
                            worker: w,
                            obs: Obs::recording(),
                        };
                        let t0 = Instant::now();
                        let result = f(&ctx, &scenarios[idx]);
                        let secs = t0.elapsed().as_secs_f64();
                        let report = ctx.obs.report().unwrap_or_default();
                        if tx.send((idx, w, result, report, secs)).is_err() {
                            return;
                        }
                        idx = next.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            drop(tx);
            // Drain completions on the caller's thread while workers run.
            for (idx, w, result, report, secs) in rx {
                debug_assert!(results[idx].is_none(), "scenario {idx} ran twice");
                results[idx] = Some(result);
                scenario_reports[idx] = report;
                scenario_secs[idx] = secs;
                per_worker[w] += 1;
            }
        });

        let wall = start.elapsed().as_secs_f64();

        // Merge in index order so the merged report is bit-identical
        // regardless of which worker ran which scenario.
        let mut report = Report::default();
        for r in &scenario_reports {
            report.merge(r);
        }
        let sweep_obs = Obs::recording();
        sweep_obs.add("sweep.scenarios", n as u64);
        sweep_obs.add("sweep.workers", workers as u64);
        for (w, count) in per_worker.iter().enumerate() {
            sweep_obs.add(&format!("sweep.worker.{w}.scenarios"), *count);
        }
        for secs in &scenario_secs {
            sweep_obs.time("sweep.scenario", *secs);
        }
        sweep_obs.time("sweep.wall", wall);
        report.merge(&sweep_obs.report().unwrap_or_default());

        let results = results
            .into_iter()
            .map(|r| r.expect("every scenario index is claimed exactly once"))
            .collect();
        SweepOutcome {
            results,
            scenario_reports,
            report,
            wall,
            workers,
        }
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

// ------------------------------------------------------- amsim scenarios

/// One conservative-simulator run: a stimulus, a step count, and an
/// optional Newton-tolerance override.
pub struct AmsScenario {
    /// Scenario label, carried through to [`AmsRun::name`].
    pub name: String,
    /// Stimulus driving every model input.
    pub stim: Box<dyn Stimulus + Send + Sync>,
    /// Number of fixed-dt transient steps.
    pub steps: usize,
    /// Newton tolerance override; `None` keeps the model's tolerance.
    pub newton_tol: Option<f64>,
}

/// Result of one [`AmsScenario`].
pub struct AmsRun {
    /// The scenario label.
    pub name: String,
    /// `output(0)` after every step.
    pub waveform: Vec<f64>,
    /// Newton iterations the run spent.
    pub newton_iters: u64,
}

/// Sweeps `scenarios` over one shared compiled Verilog-AMS model.
///
/// The model is compiled once by the caller ([`amsim::Simulation::compile`])
/// and only cheap [`amsim::Instance`]s are created per scenario — the
/// merged report's `amsim.jacobian.builds` therefore stays at the
/// compile-time value no matter how many scenarios run.
///
/// # Errors
///
/// [`AmsError::InvalidTolerance`] if any scenario's override is not a
/// positive finite number (checked up front, before any worker starts).
pub fn run_ams_sweep(
    engine: &SweepEngine,
    model: &Arc<CompiledModel>,
    scenarios: &[AmsScenario],
) -> Result<SweepOutcome<AmsRun>, AmsError> {
    for sc in scenarios {
        if let Some(tol) = sc.newton_tol {
            if !(tol.is_finite() && tol > 0.0) {
                return Err(AmsError::InvalidTolerance { tol });
            }
        }
    }
    let dt = model.dt();
    let n_inputs = model.input_names().len();
    Ok(engine.run(scenarios, move |ctx, sc| {
        let mut builder = model.instance_builder().collector(ctx.obs.clone());
        if let Some(tol) = sc.newton_tol {
            builder = builder.newton_tol(tol);
        }
        let mut inst = builder.build().expect("tolerances validated up front");
        let mut inputs = vec![0.0; n_inputs];
        let mut waveform = Vec::with_capacity(sc.steps);
        for k in 0..sc.steps {
            let u = sc.stim.value(k as f64 * dt);
            inputs.iter_mut().for_each(|v| *v = u);
            inst.step(&inputs);
            waveform.push(inst.output(0));
        }
        let newton_iters = inst.newton_iterations();
        inst.flush_counters();
        AmsRun {
            name: sc.name.clone(),
            waveform,
            newton_iters,
        }
    }))
}

// --------------------------------------------------------- eln scenarios

/// One ELN transient run: a stimulus on a chosen source, probed at one
/// node.
pub struct ElnScenario {
    /// Scenario label, carried through to [`ElnRun::name`].
    pub name: String,
    /// Stimulus driving [`ElnSweepSpec::source`].
    pub stim: Box<dyn Stimulus + Send + Sync>,
    /// Number of fixed-dt transient steps.
    pub steps: usize,
}

/// Which source an ELN sweep drives and which node it probes.
#[derive(Debug, Clone, Copy)]
pub struct ElnSweepSpec {
    /// Source every scenario's stimulus is applied to.
    pub source: SourceId,
    /// Node whose voltage is sampled after every step.
    pub probe: NodeId,
}

/// Result of one [`ElnScenario`].
pub struct ElnRun {
    /// The scenario label.
    pub name: String,
    /// Probe-node voltage after every step.
    pub waveform: Vec<f64>,
}

/// Sweeps `scenarios` over one shared compiled ELN network.
///
/// The MNA system is assembled and LU-factored once by the caller
/// ([`eln::Transient::compile`]); each scenario only clones per-run state.
pub fn run_eln_sweep(
    engine: &SweepEngine,
    net: &Arc<CompiledNet>,
    spec: ElnSweepSpec,
    scenarios: &[ElnScenario],
) -> SweepOutcome<ElnRun> {
    let dt = net.dt();
    engine.run(scenarios, move |ctx, sc| {
        let mut solver = net.instance_with(ctx.obs.clone());
        let mut waveform = Vec::with_capacity(sc.steps);
        for k in 0..sc.steps {
            solver.set_source(spec.source, sc.stim.value(k as f64 * dt));
            solver.step();
            waveform.push(solver.node_voltage(spec.probe));
        }
        solver.flush_counters();
        ElnRun {
            name: sc.name.clone(),
            waveform,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};

    #[test]
    fn runs_every_scenario_exactly_once_in_order() {
        let engine = SweepEngine::new().workers(3);
        let scenarios: Vec<u64> = (0..17).collect();
        let out = engine.run(&scenarios, |ctx, s| {
            ctx.obs.add("touched", 1);
            (ctx.index as u64, s * 2)
        });
        assert_eq!(out.workers, 3);
        assert_eq!(out.results.len(), 17);
        for (i, (idx, doubled)) in out.results.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*doubled, 2 * i as u64);
        }
        assert_eq!(out.report.counter("touched"), 17);
        assert_eq!(out.report.counter("sweep.scenarios"), 17);
        assert_eq!(out.report.counter("sweep.workers"), 3);
        let per_worker: u64 = (0..3)
            .map(|w| out.report.counter(&format!("sweep.worker.{w}.scenarios")))
            .sum();
        assert_eq!(per_worker, 17);
        assert_eq!(out.report.timers["sweep.scenario"].count, 17);
        assert_eq!(out.report.timers["sweep.wall"].count, 1);
    }

    #[test]
    fn tolerates_more_workers_than_scenarios() {
        let engine = SweepEngine::new().workers(8);
        let scenarios = [10usize, 20];
        let out = engine.run(&scenarios, |_, s| s + 1);
        assert_eq!(out.results, vec![11, 21]);
        assert_eq!(out.report.counter("sweep.scenarios"), 2);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let engine = SweepEngine::new().workers(2);
        let scenarios: [u8; 0] = [];
        let out = engine.run(&scenarios, |_, s| *s);
        assert!(out.results.is_empty());
        assert_eq!(out.report.counter("sweep.scenarios"), 0);
    }

    #[test]
    fn scenario_reports_stay_separate_and_merge() {
        let engine = SweepEngine::new().workers(2);
        let scenarios: Vec<u64> = vec![1, 2, 3];
        let out = engine.run(&scenarios, |ctx, s| ctx.obs.add("n", *s));
        assert_eq!(out.scenario_reports[0].counter("n"), 1);
        assert_eq!(out.scenario_reports[1].counter("n"), 2);
        assert_eq!(out.scenario_reports[2].counter("n"), 3);
        assert_eq!(out.report.counter("n"), 6);
    }

    #[test]
    fn ams_sweep_shares_one_compiled_model() {
        let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
        let obs = Obs::recording();
        let model = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .collector(obs.clone())
            .compile()
            .unwrap();
        let scenarios: Vec<AmsScenario> = (0..6)
            .map(|i| AmsScenario {
                name: format!("s{i}"),
                stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 4, 2e-5, 0.0, 1.0)),
                steps: 50,
                newton_tol: None,
            })
            .collect();
        let out = run_ams_sweep(&SweepEngine::new().workers(3), &model, &scenarios).unwrap();
        assert_eq!(out.results.len(), 6);
        for run in &out.results {
            assert_eq!(run.waveform.len(), 50);
            assert!(run.newton_iters > 0);
        }
        // The compile itself reported exactly one Jacobian build; none of
        // the six scenario instances added another.
        let mut merged = obs.report().unwrap();
        merged.merge(&out.report);
        assert_eq!(merged.counter("amsim.jacobian.builds"), 1);
    }

    #[test]
    fn ams_sweep_rejects_bad_tolerance_up_front() {
        let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
        let model = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let scenarios = vec![AmsScenario {
            name: "bad".into(),
            stim: Box::new(PiecewiseConstant::seeded(1, 2, 1e-5, 0.0, 1.0)),
            steps: 10,
            newton_tol: Some(0.0),
        }];
        let err = run_ams_sweep(&SweepEngine::new().workers(1), &model, &scenarios);
        assert!(matches!(err, Err(AmsError::InvalidTolerance { .. })));
    }
}
