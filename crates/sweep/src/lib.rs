//! Work-stealing parallel scenario sweeps over shared compiled models.
//!
//! The paper's experiments (Tables I–III) are *sweeps*: the same circuit
//! simulated many times under varying stimuli, time steps, and solver
//! settings. Compiling a Verilog-AMS module — parsing, conservative-law
//! extraction, discretization, bytecode generation, symbolic Jacobian —
//! costs far more than any single transient run, so repeating it per run
//! would dominate a sweep. This crate exploits the model/instance split
//! introduced in [`amsim`] and [`eln`]: one immutable, `Send + Sync`
//! compiled model ([`amsim::CompiledModel`], [`eln::CompiledNet`]) is
//! compiled **once**, wrapped in an [`Arc`], and shared by every worker;
//! each scenario then pays only for a cheap per-run instance.
//!
//! [`SweepEngine`] shards scenarios across a pool of `std::thread` workers
//! with a work-stealing index counter: worker *w* is seeded with scenario
//! *w* and then claims the next unclaimed index with an atomic
//! `fetch_add`, so fast workers drain the queue while slow scenarios
//! never stall the pool. Every scenario records into its own
//! [`obs::Obs`] collector (no contention on a shared lock in the hot
//! loop); the engine merges the per-scenario reports **in scenario index
//! order** — together with sweep-level counters and wall-time histograms
//! — so the merged [`Report`] is identical regardless of worker count or
//! scheduling.
//!
//! # Example
//!
//! ```
//! use amsvp_sweep::SweepEngine;
//!
//! let engine = SweepEngine::new().workers(4);
//! let scenarios: Vec<u64> = (0..32).collect();
//! let outcome = engine.run(&scenarios, |ctx, s| {
//!     ctx.obs.add("work.items", 1);
//!     s * s
//! });
//! assert_eq!(outcome.results[5], 25);
//! assert_eq!(outcome.report.counter("work.items"), 32);
//! assert_eq!(outcome.report.counter("sweep.scenarios"), 32);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use amsim::{AmsError, BatchInstance, CompiledModel, InputFrame, Snapshot};
use amsvp_core::circuits::Stimulus;
use eln::{CompiledNet, ElnError, NodeId, SourceId};
use obs::{Obs, Report};

mod recovery;
pub use recovery::{
    run_ams_sweep_recovering, run_ams_sweep_recovering_with, FaultKind, FaultPlan, FaultSpec,
    Recovery, RecoveryAttempt, RecoveryRung,
};

/// Per-scenario step/wall-clock budget for fault-isolated sweeps.
///
/// A runaway scenario — an adaptive run grinding at `min_dt`, an
/// accidental infinite stimulus — must not starve its siblings of a
/// worker forever. The scenario body charges its progress through
/// [`ScenarioCtx::tick`]; once either cap is exceeded the scenario is cut
/// short with a [`BudgetExceeded`] record instead of an `Ok` result.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScenarioBudget {
    max_steps: Option<u64>,
    max_wall: Option<f64>,
}

impl ScenarioBudget {
    /// No caps: [`ScenarioCtx::tick`] never fails.
    pub fn unlimited() -> ScenarioBudget {
        ScenarioBudget::default()
    }

    /// Caps the number of steps a scenario may charge via `tick`.
    #[must_use]
    pub fn max_steps(mut self, n: u64) -> ScenarioBudget {
        self.max_steps = Some(n);
        self
    }

    /// Caps a scenario's wall-clock time in seconds (checked at each
    /// `tick`, so a scenario that never ticks is not interrupted).
    #[must_use]
    pub fn max_wall(mut self, secs: f64) -> ScenarioBudget {
        self.max_wall = Some(secs);
        self
    }

    /// The step cap, if any.
    pub fn step_cap(&self) -> Option<u64> {
        self.max_steps
    }

    /// The wall-clock cap in seconds, if any.
    pub fn wall_cap(&self) -> Option<f64> {
        self.max_wall
    }

    /// Checks already-charged progress against both caps — the stateless
    /// core of [`ScenarioCtx::tick`], exposed so batched sweep bodies can
    /// keep **per-lane** accounts against one shared budget.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when `steps` passes `max_steps` or `wall`
    /// passes `max_wall`.
    pub fn check(&self, steps: u64, wall: f64) -> Result<(), BudgetExceeded> {
        let over_steps = self.max_steps.is_some_and(|cap| steps > cap);
        let over_wall = self.max_wall.is_some_and(|cap| wall > cap);
        if over_steps || over_wall {
            return Err(BudgetExceeded {
                steps,
                wall,
                max_steps: self.max_steps,
                max_wall: self.max_wall,
            });
        }
        Ok(())
    }
}

/// A scenario exceeded its [`ScenarioBudget`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetExceeded {
    /// Steps charged when the budget tripped (first value past the cap).
    pub steps: u64,
    /// Wall-clock seconds elapsed when the budget tripped.
    pub wall: f64,
    /// The step cap in force, if any.
    pub max_steps: Option<u64>,
    /// The wall-clock cap in force (seconds), if any.
    pub max_wall: Option<f64>,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scenario budget exceeded: {} steps / {:.3} s against caps {:?} steps / {:?} s",
            self.steps, self.wall, self.max_steps, self.max_wall
        )
    }
}

impl Error for BudgetExceeded {}

/// Why a fault-isolated scenario body stopped early.
///
/// Scenario closures under [`SweepEngine::run_isolated`] return
/// `Result<R, SweepFault<E>>`; the `From<BudgetExceeded>` impl lets
/// [`ScenarioCtx::tick`]'s error propagate with `?`.
#[derive(Debug)]
pub enum SweepFault<E> {
    /// The domain solver failed (typed error from `amsim`/`eln`/...).
    Error(E),
    /// The per-scenario budget ran out.
    Budget(BudgetExceeded),
}

impl<E> From<BudgetExceeded> for SweepFault<E> {
    fn from(b: BudgetExceeded) -> Self {
        SweepFault::Budget(b)
    }
}

/// Per-scenario verdict of a fault-isolated sweep: exactly one of these
/// lands in [`SweepOutcome::results`] for every input index — faults are
/// *recorded*, never propagated, so one bad scenario cannot discard its
/// siblings' finished waveforms.
#[derive(Debug)]
pub enum ScenarioOutcome<R, E> {
    /// The scenario completed; its result.
    Ok(R),
    /// The scenario faulted but a rung of the recovery ladder completed
    /// it ([`run_ams_sweep_recovering`]); the result is **bit-identical**
    /// to the same scenario run from `t = 0` on the rung's configuration.
    Recovered {
        /// The completed run.
        result: R,
        /// The rung that rescued the scenario.
        rung: RecoveryRung,
        /// The failures that preceded the rescue: the original fault
        /// (`rung: None`) plus one entry per failed rung.
        attempts: Vec<RecoveryAttempt>,
    },
    /// The scenario returned a typed error.
    Failed {
        /// The original typed error.
        error: E,
        /// The recovery trail, when a ladder ran and gave up: the
        /// original fault (`rung: None`) plus one entry per failed rung.
        /// Empty under the non-recovering entry points.
        attempts: Vec<RecoveryAttempt>,
    },
    /// The scenario body panicked; the stringified payload.
    Panicked(String),
    /// The scenario exceeded its [`ScenarioBudget`].
    Budget(BudgetExceeded),
}

impl<R, E> ScenarioOutcome<R, E> {
    /// Whether the scenario completed on the first attempt.
    pub fn is_ok(&self) -> bool {
        matches!(self, ScenarioOutcome::Ok(_))
    }

    /// Whether a recovery rung completed the scenario.
    pub fn is_recovered(&self) -> bool {
        matches!(self, ScenarioOutcome::Recovered { .. })
    }

    /// The result, if the scenario completed on the first attempt.
    pub fn ok(&self) -> Option<&R> {
        match self {
            ScenarioOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes the outcome into the result, if the scenario completed
    /// on the first attempt.
    pub fn into_ok(self) -> Option<R> {
        match self {
            ScenarioOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// The completed result, whether first-attempt or recovered.
    pub fn result(&self) -> Option<&R> {
        match self {
            ScenarioOutcome::Ok(r) | ScenarioOutcome::Recovered { result: r, .. } => Some(r),
            _ => None,
        }
    }

    /// Convenience shorthand for constructing a non-recovering failure.
    pub(crate) fn failed(error: E) -> Self {
        ScenarioOutcome::Failed {
            error,
            attempts: Vec::new(),
        }
    }
}

/// Per-scenario context handed to the sweep closure.
///
/// `obs` is a fresh recording collector owned by this scenario alone —
/// attach it to the instances the scenario builds; the engine folds it
/// into the merged sweep report afterwards.
pub struct ScenarioCtx {
    /// Index of the scenario in the input slice.
    pub index: usize,
    /// Worker that executes this scenario (0-based).
    pub worker: usize,
    /// Recording collector private to this scenario.
    pub obs: Obs,
    limits: ScenarioBudget,
    charged: Cell<u64>,
    started: Instant,
}

impl ScenarioCtx {
    /// Charges `steps` units of work against the scenario budget and
    /// checks both caps.
    ///
    /// Call once per solver step (or batch); under
    /// [`SweepEngine::run`] the budget is unlimited and this never fails.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] once the charged steps pass `max_steps` or the
    /// scenario's wall clock passes `max_wall`.
    pub fn tick(&self, steps: u64) -> Result<(), BudgetExceeded> {
        let charged = self.charged.get() + steps;
        self.charged.set(charged);
        let wall = if self.limits.max_wall.is_some() {
            self.started.elapsed().as_secs_f64()
        } else {
            0.0
        };
        self.limits.check(charged, wall)
    }
}

/// One finished unit of sweep work, handed to the incremental result
/// observer of [`SweepEngine::run_isolated_with`] /
/// [`SweepEngine::run_batched_with`] **before** the final merge.
///
/// Scalar sweeps deliver one scenario per event (`results.len() == 1`,
/// `first_index` = the scenario index); batched sweeps deliver one
/// lane-block per event (`first_index` = the block's first scenario
/// index, `results` in block order). Events arrive in **completion
/// order** — scheduling-dependent by nature; a streaming consumer that
/// needs a deterministic byte stream must reorder on `first_index`
/// (the per-scenario payloads themselves are bit-identical for any
/// worker count, so index order is all it takes).
///
/// `report` is the unit's private [`Obs`] snapshot, taken **after** the
/// scenario body finished — including instance `Drop`/`flush_counters`
/// — so a faulted scenario's partial solver counters are already in it
/// when the observer fires (the same guarantee merged reports have).
pub struct SweepEvent<'a, R> {
    /// Input index of the first scenario this event covers.
    pub first_index: usize,
    /// One result per covered scenario, in input order.
    pub results: &'a [R],
    /// The unit's instrumentation snapshot (counters already flushed).
    pub report: &'a Report,
    /// Worker that executed the unit (scheduling-dependent).
    pub worker: usize,
}

/// Everything a finished sweep produces.
pub struct SweepOutcome<R> {
    /// One result per scenario, in input order.
    pub results: Vec<R>,
    /// The per-scenario instrumentation reports, in input order.
    pub scenario_reports: Vec<Report>,
    /// All scenario reports merged in index order, plus the sweep-level
    /// `sweep.*` counters and timers (see [`SweepEngine::run`]).
    pub report: Report,
    /// Wall-clock duration of the whole sweep in seconds.
    pub wall: f64,
    /// Number of workers the sweep actually used.
    pub workers: usize,
}

/// A work-stealing scenario-sweep engine over a fixed worker pool.
#[derive(Debug, Clone)]
pub struct SweepEngine {
    workers: usize,
}

impl SweepEngine {
    /// An engine sized to the machine's available parallelism.
    pub fn new() -> SweepEngine {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        SweepEngine { workers }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> SweepEngine {
        self.workers = n.max(1);
        self
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Runs `f` once per scenario across the worker pool and merges the
    /// per-scenario reports.
    ///
    /// Scheduling: worker *w* starts on scenario *w*, then repeatedly
    /// claims the lowest unclaimed index (atomic `fetch_add`) until the
    /// queue is empty — so with at least as many scenarios as workers,
    /// every worker executes at least one scenario.
    ///
    /// The merged [`SweepOutcome::report`] contains, beyond the summed
    /// scenario counters and timers:
    ///
    /// * `sweep.scenarios` — number of scenarios executed;
    /// * `sweep.workers` — pool size;
    /// * `sweep.worker.{w}.scenarios` — scenarios executed by worker *w*
    ///   (scheduling-dependent; everything else is not);
    /// * `sweep.scenario` — wall-time histogram over individual
    ///   scenarios, observed in index order;
    /// * `sweep.wall` — one observation: the whole sweep's wall time.
    ///
    /// # Panics
    ///
    /// Propagates panics from `f` once all workers have stopped.
    pub fn run<S, R, F>(&self, scenarios: &[S], f: F) -> SweepOutcome<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&ScenarioCtx, &S) -> R + Sync,
    {
        self.run_with_budget(scenarios, ScenarioBudget::unlimited(), f, |_| {})
    }

    /// Runs `f` once per scenario with full fault isolation: the body is
    /// wrapped in [`std::panic::catch_unwind`] and charged against a
    /// per-scenario [`ScenarioBudget`] (via [`ScenarioCtx::tick`]), so a
    /// panicking, diverging, or runaway scenario yields a typed
    /// [`ScenarioOutcome`] in its slot instead of tearing down the pool.
    ///
    /// On top of [`SweepEngine::run`]'s counters, the merged report tallies
    /// `sweep.scenarios.{ok,failed,panicked,budget}` — all four keys are
    /// always present, so downstream dashboards see stable schemas.
    ///
    /// Surviving scenarios keep the bit-identical-for-any-worker-count
    /// guarantee: faults are per-index records merged in input order, not
    /// scheduling-dependent state.
    pub fn run_isolated<S, R, E, F>(
        &self,
        scenarios: &[S],
        budget: &ScenarioBudget,
        f: F,
    ) -> SweepOutcome<ScenarioOutcome<R, E>>
    where
        S: Sync,
        R: Send,
        E: Send,
        F: Fn(&ScenarioCtx, &S) -> Result<R, SweepFault<E>> + Sync,
    {
        self.run_isolated_with(scenarios, budget, f, |_| {})
    }

    /// [`SweepEngine::run_isolated`] with an incremental result observer:
    /// `observe` fires on the caller's thread once per finished scenario,
    /// in completion order, **before** the final merge — the seam a
    /// streaming consumer (the serve daemon) taps to emit per-scenario
    /// records without buffering the whole sweep.
    ///
    /// Each [`SweepEvent`] carries the scenario's own report snapshot,
    /// taken after the body returned (instance drops included), so a
    /// faulted scenario's partial solver counters are visible at observe
    /// time. The returned [`SweepOutcome`] is identical to
    /// [`SweepEngine::run_isolated`]'s.
    pub fn run_isolated_with<S, R, E, F, O>(
        &self,
        scenarios: &[S],
        budget: &ScenarioBudget,
        f: F,
        observe: O,
    ) -> SweepOutcome<ScenarioOutcome<R, E>>
    where
        S: Sync,
        R: Send,
        E: Send,
        F: Fn(&ScenarioCtx, &S) -> Result<R, SweepFault<E>> + Sync,
        O: FnMut(SweepEvent<'_, ScenarioOutcome<R, E>>),
    {
        let mut out = self.run_with_budget(
            scenarios,
            *budget,
            |ctx, s| match catch_unwind(AssertUnwindSafe(|| f(ctx, s))) {
                Ok(Ok(r)) => ScenarioOutcome::Ok(r),
                Ok(Err(SweepFault::Error(e))) => ScenarioOutcome::failed(e),
                Ok(Err(SweepFault::Budget(b))) => ScenarioOutcome::Budget(b),
                Err(payload) => ScenarioOutcome::Panicked(panic_message(payload)),
            },
            observe,
        );
        merge_fault_tally(&mut out.report, &out.results, false);
        out
    }

    /// Runs `f` once per **lane-block** of up to `lane_width` scenarios
    /// (threads × lanes): blocks are work-stolen across the pool exactly
    /// like scenarios under [`SweepEngine::run`], and the body returns
    /// one result per scenario in its block, in block order.
    ///
    /// The `ctx` handed to the body belongs to the whole block: its
    /// `index` is the block's **first** scenario index and its `obs`
    /// collector records for the block; the merged report attaches each
    /// block's report at that first index, so the merge order — and hence
    /// the merged [`Report`] — is independent of worker count and
    /// scheduling, same as the scalar path.
    ///
    /// Beyond [`SweepEngine::run`]'s `sweep.scenarios` / `sweep.workers` /
    /// `sweep.worker.{w}.scenarios` counters (which keep counting
    /// *scenarios*, not blocks), the merged report gains:
    ///
    /// * `sweep.batch.blocks` — number of lane-blocks executed;
    /// * `sweep.block` — wall-time histogram over blocks (replaces the
    ///   per-scenario `sweep.scenario` histogram, which a batched run
    ///   cannot observe).
    ///
    /// # Panics
    ///
    /// Panics if the body returns a result count different from its
    /// block's scenario count; propagates panics from `f` once all
    /// workers have stopped. (Fault isolation *within* a block is the
    /// body's job — see [`run_ams_sweep_batched`].)
    pub fn run_batched<S, R, F>(&self, scenarios: &[S], lane_width: usize, f: F) -> SweepOutcome<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&ScenarioCtx, &[S]) -> Vec<R> + Sync,
    {
        self.run_batched_with(scenarios, lane_width, f, |_| {})
    }

    /// [`SweepEngine::run_batched`] with an incremental result observer:
    /// `observe` fires on the caller's thread once per finished
    /// lane-block, in completion order, **before** the final merge. The
    /// event's `first_index` is the block's first scenario index and its
    /// `results` cover the block in input order; its `report` is the
    /// block's snapshot taken after the body returned (so a body that
    /// flushes its batch counters before returning — as
    /// [`run_ams_sweep_batched`] does — delivers every lane's partial
    /// counters with the event, faulted lanes included).
    pub fn run_batched_with<S, R, F, O>(
        &self,
        scenarios: &[S],
        lane_width: usize,
        f: F,
        mut observe: O,
    ) -> SweepOutcome<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&ScenarioCtx, &[S]) -> Vec<R> + Sync,
        O: FnMut(SweepEvent<'_, R>),
    {
        let lane_width = lane_width.max(1);
        let workers = self.workers;
        let n = scenarios.len();
        let blocks: Vec<&[S]> = scenarios.chunks(lane_width).collect();
        let nb = blocks.len();
        let start = Instant::now();

        let next = AtomicUsize::new(workers.min(nb));
        let (tx, rx) = mpsc::channel::<(usize, usize, Vec<R>, Report, f64)>();

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut scenario_reports = vec![Report::default(); n];
        let mut block_secs = vec![0.0_f64; nb];
        let mut per_worker = vec![0u64; workers];

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                let blocks = &blocks;
                scope.spawn(move || {
                    let mut b = if w < nb { w } else { usize::MAX };
                    while b < nb {
                        let ctx = ScenarioCtx {
                            index: b * lane_width,
                            worker: w,
                            obs: Obs::recording(),
                            limits: ScenarioBudget::unlimited(),
                            charged: Cell::new(0),
                            started: Instant::now(),
                        };
                        let t0 = Instant::now();
                        let rs = f(&ctx, blocks[b]);
                        assert_eq!(
                            rs.len(),
                            blocks[b].len(),
                            "batched body must return one result per scenario in the block"
                        );
                        let secs = t0.elapsed().as_secs_f64();
                        let report = ctx.obs.report().unwrap_or_default();
                        if tx.send((b, w, rs, report, secs)).is_err() {
                            return;
                        }
                        b = next.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            drop(tx);
            for (b, w, rs, report, secs) in rx {
                let base = b * lane_width;
                observe(SweepEvent {
                    first_index: base,
                    results: &rs,
                    report: &report,
                    worker: w,
                });
                per_worker[w] += rs.len() as u64;
                for (i, r) in rs.into_iter().enumerate() {
                    debug_assert!(
                        results[base + i].is_none(),
                        "scenario {} ran twice",
                        base + i
                    );
                    results[base + i] = Some(r);
                }
                scenario_reports[base] = report;
                block_secs[b] = secs;
            }
        });

        let wall = start.elapsed().as_secs_f64();

        // Merge in index order (block reports sit at their block's first
        // scenario index) so the merged report is bit-identical
        // regardless of which worker ran which block.
        let mut report = Report::default();
        for r in &scenario_reports {
            report.merge(r);
        }
        let sweep_obs = Obs::recording();
        sweep_obs.add("sweep.scenarios", n as u64);
        sweep_obs.add("sweep.workers", workers as u64);
        sweep_obs.add("sweep.batch.blocks", nb as u64);
        for (w, count) in per_worker.iter().enumerate() {
            sweep_obs.add(&format!("sweep.worker.{w}.scenarios"), *count);
        }
        for secs in &block_secs {
            sweep_obs.time("sweep.block", *secs);
        }
        sweep_obs.time("sweep.wall", wall);
        report.merge(&sweep_obs.report().unwrap_or_default());

        let results = results
            .into_iter()
            .map(|r| r.expect("every scenario index is covered by exactly one block"))
            .collect();
        SweepOutcome {
            results,
            scenario_reports,
            report,
            wall,
            workers,
        }
    }

    fn run_with_budget<S, R, F, O>(
        &self,
        scenarios: &[S],
        budget: ScenarioBudget,
        f: F,
        mut observe: O,
    ) -> SweepOutcome<R>
    where
        S: Sync,
        R: Send,
        F: Fn(&ScenarioCtx, &S) -> R + Sync,
        O: FnMut(SweepEvent<'_, R>),
    {
        let workers = self.workers;
        let n = scenarios.len();
        let start = Instant::now();

        // Next index to steal. Workers 0..min(workers, n) are seeded with
        // their own index, so stealing starts past the seeds.
        let next = AtomicUsize::new(workers.min(n));
        let (tx, rx) = mpsc::channel::<(usize, usize, R, Report, f64)>();

        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        let mut scenario_reports = vec![Report::default(); n];
        let mut scenario_secs = vec![0.0_f64; n];
        let mut per_worker = vec![0u64; workers];

        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut idx = if w < n { w } else { usize::MAX };
                    while idx < n {
                        let ctx = ScenarioCtx {
                            index: idx,
                            worker: w,
                            obs: Obs::recording(),
                            limits: budget,
                            charged: Cell::new(0),
                            started: Instant::now(),
                        };
                        let t0 = Instant::now();
                        let result = f(&ctx, &scenarios[idx]);
                        let secs = t0.elapsed().as_secs_f64();
                        let report = ctx.obs.report().unwrap_or_default();
                        if tx.send((idx, w, result, report, secs)).is_err() {
                            return;
                        }
                        idx = next.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            drop(tx);
            // Drain completions on the caller's thread while workers run.
            for (idx, w, result, report, secs) in rx {
                observe(SweepEvent {
                    first_index: idx,
                    results: std::slice::from_ref(&result),
                    report: &report,
                    worker: w,
                });
                debug_assert!(results[idx].is_none(), "scenario {idx} ran twice");
                results[idx] = Some(result);
                scenario_reports[idx] = report;
                scenario_secs[idx] = secs;
                per_worker[w] += 1;
            }
        });

        let wall = start.elapsed().as_secs_f64();

        // Merge in index order so the merged report is bit-identical
        // regardless of which worker ran which scenario.
        let mut report = Report::default();
        for r in &scenario_reports {
            report.merge(r);
        }
        let sweep_obs = Obs::recording();
        sweep_obs.add("sweep.scenarios", n as u64);
        sweep_obs.add("sweep.workers", workers as u64);
        for (w, count) in per_worker.iter().enumerate() {
            sweep_obs.add(&format!("sweep.worker.{w}.scenarios"), *count);
        }
        for secs in &scenario_secs {
            sweep_obs.time("sweep.scenario", *secs);
        }
        sweep_obs.time("sweep.wall", wall);
        report.merge(&sweep_obs.report().unwrap_or_default());

        let results = results
            .into_iter()
            .map(|r| r.expect("every scenario index is claimed exactly once"))
            .collect();
        SweepOutcome {
            results,
            scenario_reports,
            report,
            wall,
            workers,
        }
    }
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

/// Stringifies a panic payload: `panic!("...")` payloads are `String` or
/// `&'static str`; anything else gets a placeholder.
///
/// Public so callers that build their own fault-isolated block bodies on
/// [`SweepEngine::run_batched`] (the fleet runner does) record the same
/// payload text in their [`ScenarioOutcome::Panicked`] slots as the
/// built-in sweeps.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Per-outcome counts of a fault-isolated run — the tally behind the
/// `sweep.scenarios.{ok,failed,panicked,budget}` counters, generalized
/// over the counter namespace so other units of isolation (the fleet
/// runner's *devices*) report the same stable schema under their own
/// prefix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeTally {
    /// Scenarios that completed on the first attempt.
    pub ok: u64,
    /// Scenarios a recovery rung completed.
    pub recovered: u64,
    /// Scenarios that returned a typed error.
    pub failed: u64,
    /// Scenarios whose body panicked.
    pub panicked: u64,
    /// Scenarios that exceeded their [`ScenarioBudget`].
    pub budget: u64,
}

impl OutcomeTally {
    /// Tallies one outcome slice.
    pub fn of<R, E>(results: &[ScenarioOutcome<R, E>]) -> OutcomeTally {
        let mut t = OutcomeTally::default();
        for r in results {
            match r {
                ScenarioOutcome::Ok(_) => t.ok += 1,
                ScenarioOutcome::Recovered { .. } => t.recovered += 1,
                ScenarioOutcome::Failed { .. } => t.failed += 1,
                ScenarioOutcome::Panicked(_) => t.panicked += 1,
                ScenarioOutcome::Budget(_) => t.budget += 1,
            }
        }
        t
    }

    /// Total outcomes tallied — always the input slice's length, so
    /// `ok + recovered + failed + panicked + budget == N` is the
    /// conservation law every fault-isolated run must satisfy.
    pub fn total(&self) -> u64 {
        self.ok + self.recovered + self.failed + self.panicked + self.budget
    }

    /// Folds the tally into `report` as `{prefix}.{ok,failed,panicked,
    /// budget}` — all four keys always present, so downstream dashboards
    /// see stable schemas. `with_recovered` additionally emits
    /// `{prefix}.recovered`; only the recovering entry point
    /// ([`run_ams_sweep_recovering`]) opts in, so every pre-existing
    /// sweep keeps its historical report schema exactly.
    pub fn merge_into(&self, report: &mut Report, prefix: &str, with_recovered: bool) {
        let fault_obs = Obs::recording();
        fault_obs.add(&format!("{prefix}.ok"), self.ok);
        if with_recovered {
            fault_obs.add(&format!("{prefix}.recovered"), self.recovered);
        }
        fault_obs.add(&format!("{prefix}.failed"), self.failed);
        fault_obs.add(&format!("{prefix}.panicked"), self.panicked);
        fault_obs.add(&format!("{prefix}.budget"), self.budget);
        report.merge(&fault_obs.report().unwrap_or_default());
    }
}

/// Folds the per-scenario fault tally into `report` under the sweep's
/// historical `sweep.scenarios.*` namespace.
fn merge_fault_tally<R, E>(
    report: &mut Report,
    results: &[ScenarioOutcome<R, E>],
    with_recovered: bool,
) {
    OutcomeTally::of(results).merge_into(report, "sweep.scenarios", with_recovered);
}

// ------------------------------------------------------- amsim scenarios

/// One conservative-simulator run: a stimulus, a step count, and
/// optional per-scenario solver overrides.
pub struct AmsScenario {
    /// Scenario label, carried through to [`AmsRun::name`].
    pub name: String,
    /// Stimulus driving every model input.
    pub stim: Box<dyn Stimulus + Send + Sync>,
    /// Number of nominal-dt transient steps.
    pub steps: usize,
    /// Newton tolerance override; `None` keeps the model's tolerance.
    pub newton_tol: Option<f64>,
    /// Adaptive step-control override; `None` keeps the model's control
    /// (which may itself be fixed-dt).
    pub step_control: Option<amsim::StepControl>,
}

/// Result of one [`AmsScenario`].
#[derive(Debug)]
pub struct AmsRun {
    /// The scenario label.
    pub name: String,
    /// `output(0)` after every step.
    pub waveform: Vec<f64>,
    /// Newton iterations the run spent.
    pub newton_iters: u64,
}

/// Sweeps `scenarios` over one shared compiled Verilog-AMS model, fault
/// isolated: the result slot of a scenario that fails Newton, exceeds
/// `budget`, or panics holds a typed [`ScenarioOutcome`] record while its
/// siblings' waveforms survive untouched.
///
/// The model is compiled once by the caller ([`amsim::Simulation::compile`])
/// and only cheap [`amsim::Instance`]s are created per scenario — the
/// merged report's `amsim.jacobian.builds` therefore stays at the
/// compile-time value no matter how many scenarios run. Instances flush
/// their counters on drop, so even a faulted scenario's partial solver
/// counters reach the merged report.
///
/// # Errors
///
/// [`AmsError::InvalidTolerance`] / [`AmsError::InvalidStepControl`] if
/// any scenario's override is ill-formed (checked up front, before any
/// worker starts — configuration mistakes are the caller's bug and fail
/// the sweep; only *runtime* faults are isolated).
pub fn run_ams_sweep(
    engine: &SweepEngine,
    model: &Arc<CompiledModel>,
    scenarios: &[AmsScenario],
    budget: &ScenarioBudget,
) -> Result<SweepOutcome<ScenarioOutcome<AmsRun, AmsError>>, AmsError> {
    for sc in scenarios {
        if let Some(tol) = sc.newton_tol {
            if !(tol.is_finite() && tol > 0.0) {
                return Err(AmsError::InvalidTolerance { tol });
            }
        }
        if let Some(ctrl) = sc.step_control {
            ctrl.validate(model.dt())?;
        }
    }
    let dt = model.dt();
    let n_inputs = model.input_names().len();
    Ok(engine.run_isolated(scenarios, budget, move |ctx, sc| {
        let mut builder = model.instance_builder().collector(ctx.obs.clone());
        if let Some(tol) = sc.newton_tol {
            builder = builder.newton_tol(tol);
        }
        if let Some(ctrl) = sc.step_control {
            builder = builder.step_control(ctrl);
        }
        let mut inst = builder.build().expect("overrides validated up front");
        let mut inputs = vec![0.0; n_inputs];
        let mut waveform = Vec::with_capacity(sc.steps);
        for k in 0..sc.steps {
            ctx.tick(1)?;
            let u = sc.stim.value(k as f64 * dt);
            inputs.iter_mut().for_each(|v| *v = u);
            inst.try_step(&inputs).map_err(SweepFault::Error)?;
            waveform.push(inst.output(0));
        }
        let newton_iters = inst.newton_iterations();
        inst.flush_counters();
        Ok(AmsRun {
            name: sc.name.clone(),
            waveform,
            newton_iters,
        })
    }))
}

/// Sweeps `scenarios` over one shared compiled Verilog-AMS model in
/// **lane-blocks** of up to `lane_width` scenarios per
/// [`amsim::BatchInstance`] (threads × lanes): each worker advances a
/// whole block per batched bytecode pass instead of one scenario at a
/// time.
///
/// Every lane's waveform is **bit-identical** to the same scenario under
/// [`run_ams_sweep`] — the batch performs the scalar path's IEEE ops in
/// the scalar order, per lane — so `lane_width` (like the worker count)
/// is a pure performance knob. Fault isolation is per **lane**: a lane
/// that fails Newton is retired by the batch with its typed
/// [`AmsError`], a panicking stimulus is caught around that lane's
/// sample alone, and the shared `budget` is accounted per lane
/// ([`ScenarioBudget::check`]) — siblings in the same block finish
/// normally in all three cases. `max_wall` is charged per lane too:
/// stimulus-sampling time goes to the sampling lane alone and each
/// batched solve's time is split evenly over the lanes that entered it,
/// so a slow sibling cannot trip a healthy lane's wall cap.
///
/// The merged report carries the scalar sweep's `amsim.*` and
/// `sweep.scenarios.{ok,failed,panicked,budget}` families plus the
/// batch counters `amsim.batch.{lanes,masked_iterations}` and
/// `sweep.batch.blocks`.
///
/// # Errors
///
/// As for [`run_ams_sweep`]: ill-formed per-scenario overrides fail the
/// sweep up front, before any worker starts.
pub fn run_ams_sweep_batched(
    engine: &SweepEngine,
    model: &Arc<CompiledModel>,
    scenarios: &[AmsScenario],
    lane_width: usize,
    budget: &ScenarioBudget,
) -> Result<SweepOutcome<ScenarioOutcome<AmsRun, AmsError>>, AmsError> {
    run_ams_sweep_batched_with(engine, model, scenarios, lane_width, budget, |_| {})
}

/// [`run_ams_sweep_batched`] with an incremental result observer
/// ([`SweepEngine::run_batched_with`]): `observe` fires once per finished
/// lane-block with that block's [`ScenarioOutcome`]s and its counter
/// snapshot, before the final merge. The block body flushes its batch
/// instance's counters **before** returning, so the event's report
/// already contains every lane's partial `amsim.*` counters — including
/// lanes that faulted, panicked, or tripped the budget mid-block (the
/// `Drop`-flush guarantee merged reports have, extended to the stream).
pub fn run_ams_sweep_batched_with<O>(
    engine: &SweepEngine,
    model: &Arc<CompiledModel>,
    scenarios: &[AmsScenario],
    lane_width: usize,
    budget: &ScenarioBudget,
    observe: O,
) -> Result<SweepOutcome<ScenarioOutcome<AmsRun, AmsError>>, AmsError>
where
    O: FnMut(SweepEvent<'_, ScenarioOutcome<AmsRun, AmsError>>),
{
    for sc in scenarios {
        if let Some(tol) = sc.newton_tol {
            if !(tol.is_finite() && tol > 0.0) {
                return Err(AmsError::InvalidTolerance { tol });
            }
        }
        if let Some(ctrl) = sc.step_control {
            ctrl.validate(model.dt())?;
        }
    }
    let dt = model.dt();
    let n_inputs = model.input_names().len();
    let body = move |ctx: &ScenarioCtx, block: &[AmsScenario]| {
        let lanes = block.len();
        let mut builder = model
            .batch_instance_builder(lanes)
            .collector(ctx.obs.clone());
        for (l, sc) in block.iter().enumerate() {
            if let Some(tol) = sc.newton_tol {
                builder = builder.lane_newton_tol(l, tol);
            }
            if let Some(ctrl) = sc.step_control {
                builder = builder.lane_step_control(l, ctrl);
            }
        }
        let mut batch = builder.build().expect("overrides validated up front");
        let track_wall = budget.wall_cap().is_some();
        let max_steps = block.iter().map(|sc| sc.steps).max().unwrap_or(0);
        let mut waveforms: Vec<Vec<f64>> = block
            .iter()
            .map(|sc| Vec::with_capacity(sc.steps))
            .collect();
        // Per-lane faults the *batch* cannot see (stimulus panics, budget
        // trips); Newton faults live on the batch's lanes themselves.
        let mut lane_fault: Vec<Option<ScenarioOutcome<AmsRun, AmsError>>> =
            (0..lanes).map(|_| None).collect();
        let mut charged = vec![0u64; lanes];
        // Per-lane wall account: each lane is charged only for time spent
        // on its own behalf (its stimulus samples, its share of each
        // batched solve), so a slow sibling cannot trip a healthy lane's
        // `max_wall` the way the block's shared clock used to.
        let mut lane_wall = vec![0.0f64; lanes];
        let mut in_solve = vec![false; lanes];
        let mut inputs = InputFrame::new(n_inputs, lanes);
        for k in 0..max_steps {
            // Sample every healthy lane's stimulus, catching panics and
            // charging the budget per lane so one bad scenario never
            // poisons its block.
            for (l, sc) in block.iter().enumerate() {
                if lane_fault[l].is_some() || !batch.lane_active(l) {
                    continue;
                }
                if k >= sc.steps {
                    // Shorter scenario: done — mask it out of the block.
                    batch.retire(l);
                    continue;
                }
                charged[l] += 1;
                if let Err(b) = budget.check(charged[l], lane_wall[l]) {
                    lane_fault[l] = Some(ScenarioOutcome::Budget(b));
                    batch.retire(l);
                    continue;
                }
                let sample_t0 = track_wall.then(Instant::now);
                match catch_unwind(AssertUnwindSafe(|| sc.stim.value(k as f64 * dt))) {
                    Ok(u) => inputs.broadcast(l, u),
                    Err(payload) => {
                        lane_fault[l] = Some(ScenarioOutcome::Panicked(panic_message(payload)));
                        batch.retire(l);
                    }
                }
                if let Some(t0) = sample_t0 {
                    lane_wall[l] += t0.elapsed().as_secs_f64();
                }
            }
            let solving = batch.active_lanes();
            if solving == 0 {
                break;
            }
            for (l, s) in in_solve.iter_mut().enumerate() {
                *s = batch.lane_active(l);
            }
            let solve_t0 = track_wall.then(Instant::now);
            batch.try_step(inputs.as_slice());
            if let Some(t0) = solve_t0 {
                let share = t0.elapsed().as_secs_f64() / solving as f64;
                for (l, _) in in_solve.iter().enumerate().filter(|(_, s)| **s) {
                    lane_wall[l] += share;
                }
            }
            for (l, sc) in block.iter().enumerate() {
                if k < sc.steps && lane_fault[l].is_none() && batch.lane_active(l) {
                    waveforms[l].push(batch.output(0, l));
                }
            }
        }
        let results: Vec<ScenarioOutcome<AmsRun, AmsError>> = block
            .iter()
            .enumerate()
            .zip(waveforms)
            .map(|((l, sc), waveform)| {
                if let Some(fault) = lane_fault[l].take() {
                    return fault;
                }
                if let Some(e) = batch.lane_error(l) {
                    return ScenarioOutcome::failed(e.clone());
                }
                ScenarioOutcome::Ok(AmsRun {
                    name: sc.name.clone(),
                    waveform,
                    newton_iters: batch.lane_newton_iterations(l),
                })
            })
            .collect();
        batch.flush_counters();
        results
    };
    let mut out = engine.run_batched_with(scenarios, lane_width, body, observe);
    // Same stable fault-tally schema as the scalar isolated sweep.
    merge_fault_tally(&mut out.report, &out.results, false);
    Ok(out)
}

// ----------------------------------------------------- scenario trees

/// One stimulus segment of a scenario tree: `steps` nominal-dt steps
/// driven by `stim` (sampled at **absolute** simulation time), then a
/// fork into `children`. A segment with no children is a leaf and
/// produces one [`AmsRun`] whose waveform spans the whole root-to-leaf
/// path.
pub struct ScenarioSegment {
    /// Segment label; a leaf's label becomes [`AmsRun::name`].
    pub name: String,
    /// Stimulus driving every model input over this segment. Sampled at
    /// absolute time `t = (global step index) · dt`, so moving a segment
    /// boundary never changes what any path sees.
    pub stim: Box<dyn Stimulus + Send + Sync>,
    /// Nominal-dt steps this segment contributes to every path below it.
    pub steps: usize,
    /// Divergent continuations; empty makes this segment a leaf.
    pub children: Vec<ScenarioSegment>,
}

impl ScenarioSegment {
    fn count_nodes(&self) -> usize {
        1 + self.children.iter().map(Self::count_nodes).sum::<usize>()
    }

    fn count_leaves(&self) -> usize {
        if self.children.is_empty() {
            1
        } else {
            self.children.iter().map(Self::count_leaves).sum()
        }
    }
}

/// One root of a [`ScenarioTree`]: a segment tree plus the solver
/// overrides for **every** path below it. Overrides are per root by
/// construction — forked lanes inherit them through the snapshot, so a
/// path cannot change tolerance or step policy mid-run (which would
/// break bit-identity with the flat sweep).
pub struct TreeScenario {
    /// Newton tolerance override; `None` keeps the model's tolerance.
    pub newton_tol: Option<f64>,
    /// Adaptive step-control override; `None` keeps the model's control.
    pub step_control: Option<amsim::StepControl>,
    /// The root stimulus segment.
    pub segment: ScenarioSegment,
}

/// A forest of stimulus segments for [`run_ams_sweep_tree`]: shared
/// prefixes are simulated **once** and children fork from a snapshot at
/// each segment boundary.
///
/// Leaves are indexed depth-first, left to right — result slot `i` of
/// the tree sweep is the `i`-th leaf in that order. A flat
/// `Vec<AmsScenario>` converts into the equivalent depth-1 forest via
/// `From`, making the tree API a strict superset of the flat one.
pub struct ScenarioTree {
    /// The independent root scenarios.
    pub roots: Vec<TreeScenario>,
}

impl ScenarioTree {
    /// Total segments in the forest.
    pub fn node_count(&self) -> usize {
        self.roots.iter().map(|r| r.segment.count_nodes()).sum()
    }

    /// Total leaves — the number of result slots a tree sweep produces.
    pub fn leaf_count(&self) -> usize {
        self.roots.iter().map(|r| r.segment.count_leaves()).sum()
    }
}

impl From<Vec<AmsScenario>> for ScenarioTree {
    /// A flat scenario list is a depth-1 forest: every scenario becomes
    /// a childless root, so [`run_ams_sweep_tree`] degenerates to the
    /// flat batched sweep (same results, same per-scenario budget
    /// accounting, leaf order = input order).
    fn from(scenarios: Vec<AmsScenario>) -> ScenarioTree {
        ScenarioTree {
            roots: scenarios
                .into_iter()
                .map(|sc| TreeScenario {
                    newton_tol: sc.newton_tol,
                    step_control: sc.step_control,
                    segment: ScenarioSegment {
                        name: sc.name,
                        stim: sc.stim,
                        steps: sc.steps,
                        children: Vec::new(),
                    },
                })
                .collect(),
        }
    }
}

/// Flattened view of one segment, in depth-first preorder.
struct FlatNode<'t> {
    seg: &'t ScenarioSegment,
    /// Preorder ids of the segment's children.
    children: Vec<usize>,
    /// Absolute step index at which this segment starts.
    k0: usize,
    /// First leaf index below this node (leaves below any node are
    /// contiguous in depth-first order).
    first_leaf: usize,
    /// Number of leaves below this node (≥ 1); the amortization share
    /// for budget charging.
    leaves_below: usize,
    /// Root overrides, copied down so root-chunk jobs can build lanes.
    newton_tol: Option<f64>,
    step_control: Option<amsim::StepControl>,
}

fn flatten_segment<'t>(
    seg: &'t ScenarioSegment,
    k0: usize,
    first_leaf: usize,
    newton_tol: Option<f64>,
    step_control: Option<amsim::StepControl>,
    flat: &mut Vec<FlatNode<'t>>,
) -> usize {
    let id = flat.len();
    flat.push(FlatNode {
        seg,
        children: Vec::new(),
        k0,
        first_leaf,
        leaves_below: 0,
        newton_tol,
        step_control,
    });
    if seg.children.is_empty() {
        flat[id].leaves_below = 1;
        return id;
    }
    let mut leaf = first_leaf;
    let mut child_ids = Vec::with_capacity(seg.children.len());
    for child in &seg.children {
        let cid = flatten_segment(child, k0 + seg.steps, leaf, newton_tol, step_control, flat);
        leaf += flat[cid].leaves_below;
        child_ids.push(cid);
    }
    flat[id].children = child_ids;
    flat[id].leaves_below = leaf - first_leaf;
    id
}

/// One chunk of sibling segments simulated as one [`BatchInstance`]:
/// either a root chunk (fresh lanes from `t = 0`) or a fork chunk
/// seeded from the parent's snapshot.
struct TreeJob {
    /// Preorder node ids, ≤ `lane_width` of them, one per lane.
    nodes: Vec<usize>,
    /// Checkpoint to fork from; `None` for root chunks.
    snap: Option<Arc<Snapshot>>,
    /// Waveform of the shared prefix (chained back to the root).
    prefix: Option<Arc<WaveSeg>>,
    /// Amortized budget steps already charged to this path at entry.
    charged: f64,
    /// Wall seconds already attributed to this path at entry.
    wall: f64,
}

/// One segment's worth of `output(0)` samples, chained to its parent —
/// leaves concatenate the chain into a full root-to-leaf waveform.
struct WaveSeg {
    parent: Option<Arc<WaveSeg>>,
    samples: Vec<f64>,
}

fn path_waveform(prefix: &Option<Arc<WaveSeg>>, own: &[f64]) -> Vec<f64> {
    let mut chain = Vec::new();
    let mut cur = prefix.as_ref();
    while let Some(seg) = cur {
        chain.push(seg);
        cur = seg.parent.as_ref();
    }
    let total: usize = chain.iter().map(|s| s.samples.len()).sum::<usize>() + own.len();
    let mut wave = Vec::with_capacity(total);
    for seg in chain.iter().rev() {
        wave.extend_from_slice(&seg.samples);
    }
    wave.extend_from_slice(own);
    wave
}

/// A fault that retires a whole subtree: recorded once on the faulting
/// lane, materialized into every leaf slot below it.
enum SubtreeFault {
    Failed(AmsError),
    Panicked(String),
    Budget(BudgetExceeded),
}

impl SubtreeFault {
    fn outcome(&self) -> ScenarioOutcome<AmsRun, AmsError> {
        match self {
            SubtreeFault::Failed(e) => ScenarioOutcome::failed(e.clone()),
            SubtreeFault::Panicked(msg) => ScenarioOutcome::Panicked(msg.clone()),
            SubtreeFault::Budget(b) => ScenarioOutcome::Budget(*b),
        }
    }
}

/// Work queue for subtree jobs. Unlike the fixed-list engines, jobs
/// *create* jobs (a finished prefix fans its children out), so the pool
/// tracks outstanding work explicitly: workers sleep on the condvar
/// while the queue is empty but running jobs may still fork, and exit
/// once no job is queued or running.
struct TreeQueue {
    /// `(queued jobs, jobs created but not yet completed)`.
    state: Mutex<(VecDeque<TreeJob>, usize)>,
    cv: Condvar,
}

impl TreeQueue {
    fn seeded(jobs: Vec<TreeJob>) -> TreeQueue {
        let outstanding = jobs.len();
        TreeQueue {
            state: Mutex::new((jobs.into(), outstanding)),
            cv: Condvar::new(),
        }
    }

    /// Claims a job, blocking while outstanding jobs may still fork new
    /// ones; `None` once the whole forest is drained.
    fn pop(&self) -> Option<TreeJob> {
        let mut s = self.state.lock().expect("tree queue poisoned");
        loop {
            if let Some(job) = s.0.pop_front() {
                return Some(job);
            }
            if s.1 == 0 {
                return None;
            }
            s = self.cv.wait(s).expect("tree queue poisoned");
        }
    }

    /// Enqueues fork jobs created by a running (still-outstanding) job.
    fn push(&self, jobs: Vec<TreeJob>) {
        let mut s = self.state.lock().expect("tree queue poisoned");
        s.1 += jobs.len();
        s.0.extend(jobs);
        drop(s);
        self.cv.notify_all();
    }

    /// Marks one claimed job finished; wakes sleepers when the forest is
    /// drained so they can exit.
    fn complete(&self) {
        let mut s = self.state.lock().expect("tree queue poisoned");
        s.1 -= 1;
        let drained = s.1 == 0;
        drop(s);
        if drained {
            self.cv.notify_all();
        }
    }
}

/// Sweeps a [`ScenarioTree`] over one shared compiled Verilog-AMS model,
/// simulating every shared prefix **once**: a segment with children runs
/// as a single lane, snapshots at its end
/// ([`BatchInstance::snapshot_lane`]), and fans the children out into
/// fresh lane-blocks seeded from that checkpoint
/// ([`BatchInstance::fork_from`]). Subtrees are work-stolen by the
/// engine's pool, so independent branches simulate concurrently.
///
/// Results land in **leaf order** (depth-first, left to right), one
/// [`ScenarioOutcome`] per leaf. Every leaf's waveform is
/// **bit-identical** to the same root-to-leaf path simulated flat from
/// `t = 0` — the snapshot replays the exact ddt/idt history, adaptive-dt
/// state and factorization validity, and stimuli are sampled at absolute
/// time — so tree structure (like `lane_width` and the worker count) is
/// a pure performance knob. A flat `Vec<AmsScenario>` converted via
/// `ScenarioTree::from` reproduces [`run_ams_sweep_batched`] exactly.
///
/// **Budgets** are charged against each lane's own path: a step of a
/// segment shared by `s` leaves charges `1/s` of a step to the lane
/// (the flat sweep would have charged it `s` times across those leaves),
/// and wall time is attributed like the batched sweep — sampling to the
/// sampling lane, each solve split over its entering lanes — divided by
/// the same share. A depth-1 tree therefore degenerates to the flat
/// accounting. **Fault isolation** is per subtree: a fault (Newton,
/// panic, budget) on a segment retires only that lane and records the
/// fault in every leaf slot below it; sibling subtrees are untouched.
///
/// The merged report carries the batched sweep's families plus
/// `sweep.tree.nodes` (static segment count),
/// `sweep.tree.forks` (segments that completed and fanned out) and
/// `sweep.tree.prefix_steps_saved` (nominal steps the flat sweep would
/// have re-simulated: `Σ steps · (leaves_below − 1)` over forked
/// segments), and `amsim.snapshot.{taken,restored}` from the solver
/// layer. `sweep.scenarios` counts leaves.
///
/// # Errors
///
/// As for [`run_ams_sweep`]: ill-formed per-root overrides fail the
/// sweep up front, before any worker starts.
pub fn run_ams_sweep_tree(
    engine: &SweepEngine,
    model: &Arc<CompiledModel>,
    tree: &ScenarioTree,
    lane_width: usize,
    budget: &ScenarioBudget,
) -> Result<SweepOutcome<ScenarioOutcome<AmsRun, AmsError>>, AmsError> {
    for root in &tree.roots {
        if let Some(tol) = root.newton_tol {
            if !(tol.is_finite() && tol > 0.0) {
                return Err(AmsError::InvalidTolerance { tol });
            }
        }
        if let Some(ctrl) = root.step_control {
            ctrl.validate(model.dt())?;
        }
    }
    let lane_width = lane_width.max(1);
    let workers = engine.worker_count();
    let dt = model.dt();
    let n_inputs = model.input_names().len();
    let start = Instant::now();

    // Flatten the forest in depth-first preorder; leaves below any node
    // come out contiguous, so a subtree fault maps to a leaf range.
    let mut flat: Vec<FlatNode<'_>> = Vec::new();
    let mut root_ids = Vec::with_capacity(tree.roots.len());
    let mut first_leaf = 0;
    for root in &tree.roots {
        let id = flatten_segment(
            &root.segment,
            0,
            first_leaf,
            root.newton_tol,
            root.step_control,
            &mut flat,
        );
        first_leaf += flat[id].leaves_below;
        root_ids.push(id);
    }
    let n_leaves = first_leaf;
    let n_nodes = flat.len();

    // Seed the queue with root chunks; forks are pushed by running jobs.
    let seed_jobs: Vec<TreeJob> = root_ids
        .chunks(lane_width)
        .map(|nodes| TreeJob {
            nodes: nodes.to_vec(),
            snap: None,
            prefix: None,
            charged: 0.0,
            wall: 0.0,
        })
        .collect();
    let queue = TreeQueue::seeded(seed_jobs);

    type LeafResults = Vec<(usize, ScenarioOutcome<AmsRun, AmsError>)>;
    let (tx, rx) = mpsc::channel::<(usize, usize, LeafResults, Report, f64)>();

    let mut results: Vec<Option<ScenarioOutcome<AmsRun, AmsError>>> = Vec::with_capacity(n_leaves);
    results.resize_with(n_leaves, || None);
    let mut scenario_reports = vec![Report::default(); n_leaves];
    let mut per_worker = vec![0u64; workers];
    // `(first node id, report, secs)` per job, sorted by node id before
    // merging so the merged report never depends on scheduling.
    let mut job_reports: Vec<(usize, Report, f64)> = Vec::new();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let flat = &flat;
            scope.spawn(move || {
                while let Some(job) = queue.pop() {
                    let t0 = Instant::now();
                    let obs = Obs::recording();
                    let (leaves, forks) =
                        run_tree_job(&job, flat, model, dt, n_inputs, lane_width, budget, &obs);
                    let secs = t0.elapsed().as_secs_f64();
                    let report = obs.report().unwrap_or_default();
                    let disconnected = tx.send((job.nodes[0], w, leaves, report, secs)).is_err();
                    // Children go in before this job completes, so the
                    // outstanding count never transiently hits zero.
                    queue.push(forks);
                    queue.complete();
                    if disconnected {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for (node0, w, leaves, report, secs) in rx {
            per_worker[w] += leaves.len() as u64;
            for (leaf, outcome) in leaves {
                debug_assert!(results[leaf].is_none(), "leaf {leaf} resolved twice");
                results[leaf] = Some(outcome);
            }
            job_reports.push((node0, report, secs));
        }
    });

    let wall = start.elapsed().as_secs_f64();

    // A job's report is attached at its first node's first leaf. Two
    // jobs can share that leaf (a prefix and its first fork chunk), so
    // reports are merged in node-id order — deterministic for any
    // scheduling — rather than assigned.
    job_reports.sort_by_key(|(node0, _, _)| *node0);
    for (node0, report, _) in &job_reports {
        scenario_reports[flat[*node0].first_leaf].merge(report);
    }
    let mut report = Report::default();
    for r in &scenario_reports {
        report.merge(r);
    }
    let sweep_obs = Obs::recording();
    sweep_obs.add("sweep.scenarios", n_leaves as u64);
    sweep_obs.add("sweep.workers", workers as u64);
    sweep_obs.add("sweep.batch.blocks", job_reports.len() as u64);
    sweep_obs.add("sweep.tree.nodes", n_nodes as u64);
    for (w, count) in per_worker.iter().enumerate() {
        sweep_obs.add(&format!("sweep.worker.{w}.scenarios"), *count);
    }
    for (_, _, secs) in &job_reports {
        sweep_obs.time("sweep.block", *secs);
    }
    sweep_obs.time("sweep.wall", wall);
    report.merge(&sweep_obs.report().unwrap_or_default());

    let results: Vec<ScenarioOutcome<AmsRun, AmsError>> = results
        .into_iter()
        .map(|r| r.expect("every leaf is resolved by exactly one job"))
        .collect();
    // Same stable fault-tally schema as the other isolated sweeps.
    merge_fault_tally(&mut report, &results, false);

    Ok(SweepOutcome {
        results,
        scenario_reports,
        report,
        wall,
        workers,
    })
}

/// Leaf results of one tree job: `(leaf index, outcome)` pairs.
type LeafOutcomes = Vec<(usize, ScenarioOutcome<AmsRun, AmsError>)>;

/// Runs one [`TreeJob`]: steps its sibling segments as a lane-block,
/// then classifies each lane into leaf outcomes (emitted now) or fork
/// jobs (returned for the queue).
#[allow(clippy::too_many_arguments)]
fn run_tree_job(
    job: &TreeJob,
    flat: &[FlatNode<'_>],
    model: &Arc<CompiledModel>,
    dt: f64,
    n_inputs: usize,
    lane_width: usize,
    budget: &ScenarioBudget,
    obs: &Obs,
) -> (LeafOutcomes, Vec<TreeJob>) {
    let lanes = job.nodes.len();
    let mut batch = match &job.snap {
        Some(snap) => BatchInstance::fork_from(snap, lanes, obs.clone()),
        None => {
            let mut builder = model.batch_instance_builder(lanes).collector(obs.clone());
            for (l, &id) in job.nodes.iter().enumerate() {
                if let Some(tol) = flat[id].newton_tol {
                    builder = builder.lane_newton_tol(l, tol);
                }
                if let Some(ctrl) = flat[id].step_control {
                    builder = builder.lane_step_control(l, ctrl);
                }
            }
            builder.build().expect("overrides validated up front")
        }
    };
    let track_wall = budget.wall_cap().is_some();
    let max_steps = job
        .nodes
        .iter()
        .map(|&id| flat[id].seg.steps)
        .max()
        .unwrap_or(0);
    let mut waveforms: Vec<Vec<f64>> = job
        .nodes
        .iter()
        .map(|&id| Vec::with_capacity(flat[id].seg.steps))
        .collect();
    let mut lane_fault: Vec<Option<SubtreeFault>> = (0..lanes).map(|_| None).collect();
    // Budget accounts continue the path's: a step of a segment shared by
    // `s` leaves charges 1/s of a step (and 1/s of the measured wall
    // share), amortizing prefix cost exactly over its beneficiaries.
    let mut charged = vec![job.charged; lanes];
    let mut lane_wall = vec![job.wall; lanes];
    let mut in_solve = vec![false; lanes];
    let mut inputs = vec![0.0; n_inputs * lanes];
    for k in 0..max_steps {
        for (l, &id) in job.nodes.iter().enumerate() {
            if lane_fault[l].is_some() || !batch.lane_active(l) {
                continue;
            }
            let node = &flat[id];
            if k >= node.seg.steps {
                // Shorter sibling: done — mask it out of the block.
                batch.retire(l);
                continue;
            }
            let share = node.leaves_below as f64;
            charged[l] += 1.0 / share;
            if let Err(b) = budget.check(charged[l].round() as u64, lane_wall[l]) {
                lane_fault[l] = Some(SubtreeFault::Budget(b));
                batch.retire(l);
                continue;
            }
            let sample_t0 = track_wall.then(Instant::now);
            // Absolute-time sampling: the same instant the flat run
            // would have sampled at step `k0 + k`.
            let t = (node.k0 + k) as f64 * dt;
            match catch_unwind(AssertUnwindSafe(|| node.seg.stim.value(t))) {
                Ok(u) => {
                    for i in 0..n_inputs {
                        inputs[i * lanes + l] = u;
                    }
                }
                Err(payload) => {
                    lane_fault[l] = Some(SubtreeFault::Panicked(panic_message(payload)));
                    batch.retire(l);
                }
            }
            if let Some(t0) = sample_t0 {
                lane_wall[l] += t0.elapsed().as_secs_f64() / share;
            }
        }
        let solving = batch.active_lanes();
        if solving == 0 {
            break;
        }
        for (l, s) in in_solve.iter_mut().enumerate() {
            *s = batch.lane_active(l);
        }
        let solve_t0 = track_wall.then(Instant::now);
        batch.try_step(&inputs);
        if let Some(t0) = solve_t0 {
            let split = t0.elapsed().as_secs_f64() / solving as f64;
            for (l, &id) in job.nodes.iter().enumerate() {
                if in_solve[l] {
                    lane_wall[l] += split / flat[id].leaves_below as f64;
                }
            }
        }
        for (l, &id) in job.nodes.iter().enumerate() {
            if k < flat[id].seg.steps && lane_fault[l].is_none() && batch.lane_active(l) {
                waveforms[l].push(batch.output(0, l));
            }
        }
    }

    let mut leaves: Vec<(usize, ScenarioOutcome<AmsRun, AmsError>)> = Vec::new();
    let mut forks: Vec<TreeJob> = Vec::new();
    for (l, &id) in job.nodes.iter().enumerate() {
        let node = &flat[id];
        // A fault retires the whole subtree: every leaf below gets the
        // record, and no children are forked.
        let fault = match lane_fault[l].take() {
            Some(f) => Some(f),
            None => batch.lane_error(l).map(|e| SubtreeFault::Failed(e.clone())),
        };
        if let Some(fault) = fault {
            for leaf in node.first_leaf..node.first_leaf + node.leaves_below {
                leaves.push((leaf, fault.outcome()));
            }
            continue;
        }
        if node.children.is_empty() {
            leaves.push((
                node.first_leaf,
                ScenarioOutcome::Ok(AmsRun {
                    name: node.seg.name.clone(),
                    waveform: path_waveform(&job.prefix, &waveforms[l]),
                    // Path-cumulative: fork_from seeds the lane from the
                    // snapshot's watermark, so this equals the flat
                    // run's count for the same root-to-leaf path.
                    newton_iters: batch.lane_newton_iterations(l),
                }),
            ));
            continue;
        }
        // Healthy internal segment: checkpoint once, fan children out.
        let snap = Arc::new(batch.snapshot_lane(l));
        let prefix = Arc::new(WaveSeg {
            parent: job.prefix.clone(),
            samples: std::mem::take(&mut waveforms[l]),
        });
        obs.add("sweep.tree.forks", 1);
        obs.add(
            "sweep.tree.prefix_steps_saved",
            node.seg.steps as u64 * (node.leaves_below as u64 - 1),
        );
        for chunk in node.children.chunks(lane_width) {
            forks.push(TreeJob {
                nodes: chunk.to_vec(),
                snap: Some(Arc::clone(&snap)),
                prefix: Some(Arc::clone(&prefix)),
                charged: charged[l],
                wall: lane_wall[l],
            });
        }
    }
    batch.flush_counters();
    (leaves, forks)
}

// --------------------------------------------------------- eln scenarios

/// One ELN transient run: a stimulus on a chosen source, probed at one
/// node.
pub struct ElnScenario {
    /// Scenario label, carried through to [`ElnRun::name`].
    pub name: String,
    /// Stimulus driving [`ElnSweepSpec::source`].
    pub stim: Box<dyn Stimulus + Send + Sync>,
    /// Number of fixed-dt transient steps.
    pub steps: usize,
}

/// Which source an ELN sweep drives and which node it probes.
#[derive(Debug, Clone, Copy)]
pub struct ElnSweepSpec {
    /// Source every scenario's stimulus is applied to.
    pub source: SourceId,
    /// Node whose voltage is sampled after every step.
    pub probe: NodeId,
}

/// Result of one [`ElnScenario`].
#[derive(Debug)]
pub struct ElnRun {
    /// The scenario label.
    pub name: String,
    /// Probe-node voltage after every step.
    pub waveform: Vec<f64>,
}

/// Sweeps `scenarios` over one shared compiled ELN network, fault
/// isolated like [`run_ams_sweep`]: a diverging, over-budget, or
/// panicking scenario becomes a [`ScenarioOutcome`] record in its slot.
///
/// The MNA system is assembled and LU-factored once by the caller
/// ([`eln::Transient::compile`]); each scenario only clones per-run state.
pub fn run_eln_sweep(
    engine: &SweepEngine,
    net: &Arc<CompiledNet>,
    spec: ElnSweepSpec,
    scenarios: &[ElnScenario],
    budget: &ScenarioBudget,
) -> SweepOutcome<ScenarioOutcome<ElnRun, ElnError>> {
    let dt = net.dt();
    engine.run_isolated(scenarios, budget, move |ctx, sc| {
        let mut solver = net.instance_with(ctx.obs.clone());
        let mut waveform = Vec::with_capacity(sc.steps);
        for k in 0..sc.steps {
            ctx.tick(1)?;
            solver.set_source(spec.source, sc.stim.value(k as f64 * dt));
            solver.try_step().map_err(SweepFault::Error)?;
            waveform.push(solver.node_voltage(spec.probe));
        }
        solver.flush_counters();
        Ok(ElnRun {
            name: sc.name.clone(),
            waveform,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};

    #[test]
    fn runs_every_scenario_exactly_once_in_order() {
        let engine = SweepEngine::new().workers(3);
        let scenarios: Vec<u64> = (0..17).collect();
        let out = engine.run(&scenarios, |ctx, s| {
            ctx.obs.add("touched", 1);
            (ctx.index as u64, s * 2)
        });
        assert_eq!(out.workers, 3);
        assert_eq!(out.results.len(), 17);
        for (i, (idx, doubled)) in out.results.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*doubled, 2 * i as u64);
        }
        assert_eq!(out.report.counter("touched"), 17);
        assert_eq!(out.report.counter("sweep.scenarios"), 17);
        assert_eq!(out.report.counter("sweep.workers"), 3);
        let per_worker: u64 = (0..3)
            .map(|w| out.report.counter(&format!("sweep.worker.{w}.scenarios")))
            .sum();
        assert_eq!(per_worker, 17);
        assert_eq!(out.report.timers["sweep.scenario"].count, 17);
        assert_eq!(out.report.timers["sweep.wall"].count, 1);
    }

    #[test]
    fn tolerates_more_workers_than_scenarios() {
        let engine = SweepEngine::new().workers(8);
        let scenarios = [10usize, 20];
        let out = engine.run(&scenarios, |_, s| s + 1);
        assert_eq!(out.results, vec![11, 21]);
        assert_eq!(out.report.counter("sweep.scenarios"), 2);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let engine = SweepEngine::new().workers(2);
        let scenarios: [u8; 0] = [];
        let out = engine.run(&scenarios, |_, s| *s);
        assert!(out.results.is_empty());
        assert_eq!(out.report.counter("sweep.scenarios"), 0);
    }

    #[test]
    fn scenario_reports_stay_separate_and_merge() {
        let engine = SweepEngine::new().workers(2);
        let scenarios: Vec<u64> = vec![1, 2, 3];
        let out = engine.run(&scenarios, |ctx, s| ctx.obs.add("n", *s));
        assert_eq!(out.scenario_reports[0].counter("n"), 1);
        assert_eq!(out.scenario_reports[1].counter("n"), 2);
        assert_eq!(out.scenario_reports[2].counter("n"), 3);
        assert_eq!(out.report.counter("n"), 6);
    }

    #[test]
    fn ams_sweep_shares_one_compiled_model() {
        let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
        let obs = Obs::recording();
        let model = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .collector(obs.clone())
            .compile()
            .unwrap();
        let scenarios: Vec<AmsScenario> = (0..6)
            .map(|i| AmsScenario {
                name: format!("s{i}"),
                stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 4, 2e-5, 0.0, 1.0)),
                steps: 50,
                newton_tol: None,
                step_control: None,
            })
            .collect();
        let out = run_ams_sweep(
            &SweepEngine::new().workers(3),
            &model,
            &scenarios,
            &ScenarioBudget::unlimited(),
        )
        .unwrap();
        assert_eq!(out.results.len(), 6);
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 6);
        for outcome in &out.results {
            let run = outcome.ok().expect("healthy scenarios complete");
            assert_eq!(run.waveform.len(), 50);
            assert!(run.newton_iters > 0);
        }
        // The compile itself reported exactly one Jacobian build; none of
        // the six scenario instances added another.
        let mut merged = obs.report().unwrap();
        merged.merge(&out.report);
        assert_eq!(merged.counter("amsim.jacobian.builds"), 1);
    }

    #[test]
    fn ams_sweep_rejects_bad_tolerance_up_front() {
        let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
        let model = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let scenarios = vec![AmsScenario {
            name: "bad".into(),
            stim: Box::new(PiecewiseConstant::seeded(1, 2, 1e-5, 0.0, 1.0)),
            steps: 10,
            newton_tol: Some(0.0),
            step_control: None,
        }];
        let err = run_ams_sweep(
            &SweepEngine::new().workers(1),
            &model,
            &scenarios,
            &ScenarioBudget::unlimited(),
        );
        assert!(matches!(err, Err(AmsError::InvalidTolerance { .. })));

        let scenarios = vec![AmsScenario {
            name: "bad-control".into(),
            stim: Box::new(PiecewiseConstant::seeded(1, 2, 1e-5, 0.0, 1.0)),
            steps: 10,
            newton_tol: None,
            step_control: Some(amsim::StepControl::new(1.0)),
        }];
        let err = run_ams_sweep(
            &SweepEngine::new().workers(1),
            &model,
            &scenarios,
            &ScenarioBudget::unlimited(),
        );
        assert!(matches!(err, Err(AmsError::InvalidStepControl { .. })));
    }

    #[test]
    fn panicking_scenario_is_contained() {
        let engine = SweepEngine::new().workers(4);
        let scenarios: Vec<u64> = (0..16).collect();
        let out = engine.run_isolated::<_, _, (), _>(
            &scenarios,
            &ScenarioBudget::unlimited(),
            |ctx, s| {
                ctx.obs.add("body.entered", 1);
                if *s == 7 {
                    panic!("injected failure in scenario {s}");
                }
                Ok(s * s)
            },
        );
        assert_eq!(out.results.len(), 16);
        for (i, r) in out.results.iter().enumerate() {
            if i == 7 {
                match r {
                    ScenarioOutcome::Panicked(msg) => {
                        assert!(msg.contains("injected failure"), "payload lost: {msg}")
                    }
                    other => panic!("slot 7: want Panicked, got {other:?}"),
                }
            } else {
                assert_eq!(*r.ok().expect("healthy slot"), (i * i) as u64);
            }
        }
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 15);
        assert_eq!(out.report.counter("sweep.scenarios.panicked"), 1);
        assert_eq!(out.report.counter("sweep.scenarios.failed"), 0);
        assert_eq!(out.report.counter("sweep.scenarios.budget"), 0);
        // The panicking body still entered and its obs merged.
        assert_eq!(out.report.counter("body.entered"), 16);
    }

    #[test]
    fn typed_failures_land_in_their_slot() {
        let engine = SweepEngine::new().workers(2);
        let scenarios: Vec<u64> = (0..8).collect();
        let out = engine.run_isolated(&scenarios, &ScenarioBudget::unlimited(), |_, s| {
            if s % 3 == 0 {
                Err(SweepFault::Error(format!("no solution for {s}")))
            } else {
                Ok(*s)
            }
        });
        let failed: Vec<usize> = out
            .results
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, ScenarioOutcome::Failed { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(failed, vec![0, 3, 6]);
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 5);
        assert_eq!(out.report.counter("sweep.scenarios.failed"), 3);
    }

    #[test]
    fn step_budget_cuts_runaway_scenarios() {
        let engine = SweepEngine::new().workers(2);
        let scenarios: Vec<u64> = (0..4).collect();
        let budget = ScenarioBudget::unlimited().max_steps(10);
        let out = engine.run_isolated::<_, _, (), _>(&scenarios, &budget, |ctx, s| {
            // Scenario 2 never stops on its own.
            let steps = if *s == 2 { u64::MAX } else { 5 };
            let mut done = 0u64;
            while done < steps {
                ctx.tick(1)?;
                done += 1;
            }
            Ok(done)
        });
        for (i, r) in out.results.iter().enumerate() {
            if i == 2 {
                match r {
                    ScenarioOutcome::Budget(b) => {
                        assert_eq!(b.steps, 11, "tripped on the first step past the cap");
                        assert_eq!(b.max_steps, Some(10));
                    }
                    other => panic!("slot 2: want Budget, got {other:?}"),
                }
            } else {
                assert_eq!(*r.ok().expect("within budget"), 5);
            }
        }
        assert_eq!(out.report.counter("sweep.scenarios.budget"), 1);
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 3);
    }

    #[test]
    fn eln_sweep_isolates_divergence() {
        let mut net = eln::ElnNetwork::new();
        let a = net.node("a");
        let out_node = net.node("out");
        let v = net.vsource("vin", a, eln::ElnNetwork::GROUND);
        net.resistor("r", a, out_node, 5e3);
        net.capacitor("c", out_node, eln::ElnNetwork::GROUND, 25e-9);
        let compiled = eln::Transient::new(&net).dt(1e-6).compile().unwrap();
        struct NanAt(usize, usize);
        impl Stimulus for NanAt {
            fn value(&self, t: f64) -> f64 {
                let k = (t / 1e-6).round() as usize;
                if self.0 == 1 && k >= self.1 {
                    f64::NAN
                } else {
                    1.0
                }
            }
        }
        let scenarios: Vec<ElnScenario> = (0..4)
            .map(|i| ElnScenario {
                name: format!("e{i}"),
                stim: Box::new(NanAt(i, 3)),
                steps: 8,
            })
            .collect();
        let spec = ElnSweepSpec {
            source: v,
            probe: out_node,
        };
        let out = run_eln_sweep(
            &SweepEngine::new().workers(2),
            &compiled,
            spec,
            &scenarios,
            &ScenarioBudget::unlimited(),
        );
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 3);
        assert_eq!(out.report.counter("sweep.scenarios.failed"), 1);
        match &out.results[1] {
            ScenarioOutcome::Failed {
                error: ElnError::NonFiniteSolution { .. },
                ..
            } => {}
            other => panic!("slot 1: want NonFiniteSolution, got {other:?}"),
        }
        for i in [0usize, 2, 3] {
            assert_eq!(out.results[i].ok().expect("healthy").waveform.len(), 8);
        }
    }

    #[test]
    fn batched_sweep_matches_scalar_bitwise_for_any_lane_width_and_workers() {
        let module = vams_parser::parse_module(&rc_ladder(2)).unwrap();
        let model = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        let mk = || -> Vec<AmsScenario> {
            (0..13)
                .map(|i| AmsScenario {
                    name: format!("s{i}"),
                    stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 4, 2e-5, 0.0, 1.0)),
                    steps: 40,
                    newton_tol: if i % 3 == 0 { Some(1e-8) } else { None },
                    step_control: None,
                })
                .collect()
        };
        let scalar = run_ams_sweep(
            &SweepEngine::new().workers(2),
            &model,
            &mk(),
            &ScenarioBudget::unlimited(),
        )
        .unwrap();
        for (lane_width, workers) in [(1usize, 1usize), (4, 2), (8, 8), (13, 3)] {
            let batched = run_ams_sweep_batched(
                &SweepEngine::new().workers(workers),
                &model,
                &mk(),
                lane_width,
                &ScenarioBudget::unlimited(),
            )
            .unwrap();
            assert_eq!(
                batched.report.counter("sweep.batch.blocks"),
                13u64.div_ceil(lane_width as u64),
                "lane_width {lane_width}"
            );
            assert_eq!(batched.report.counter("amsim.batch.lanes"), 13);
            assert_eq!(batched.report.counter("sweep.scenarios"), 13);
            assert_eq!(batched.report.counter("sweep.scenarios.ok"), 13);
            for (i, (b, s)) in batched.results.iter().zip(&scalar.results).enumerate() {
                let (b, s) = (b.ok().unwrap(), s.ok().unwrap());
                assert_eq!(b.newton_iters, s.newton_iters, "scenario {i}");
                assert_eq!(b.waveform.len(), s.waveform.len());
                for (k, (x, y)) in b.waveform.iter().zip(&s.waveform).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "scenario {i} step {k}: lane_width {lane_width} workers {workers}"
                    );
                }
            }
            // The shared amsim counter families are conserved: batching
            // changes scheduling, never the per-scenario work.
            for c in [
                "amsim.steps",
                "amsim.newton_iterations",
                "amsim.jacobian.reuse_hits",
            ] {
                assert_eq!(
                    batched.report.counter(c),
                    scalar.report.counter(c),
                    "{c} at lane_width {lane_width}"
                );
            }
        }
    }

    #[test]
    fn observer_sees_every_scenario_once_with_its_report() {
        let engine = SweepEngine::new().workers(3);
        let scenarios: Vec<u64> = (0..17).collect();
        let mut seen: Vec<(usize, u64)> = Vec::new();
        let out = engine.run_isolated_with::<_, _, (), _, _>(
            &scenarios,
            &ScenarioBudget::unlimited(),
            |ctx, s| {
                ctx.obs.add("unit.work", *s);
                Ok(s * 3)
            },
            |ev| {
                assert_eq!(ev.results.len(), 1, "scalar events cover one scenario");
                seen.push((ev.first_index, ev.report.counter("unit.work")));
            },
        );
        assert_eq!(seen.len(), 17);
        seen.sort_by_key(|(i, _)| *i);
        for (i, (idx, work)) in seen.iter().enumerate() {
            assert_eq!(*idx, i, "every index observed exactly once");
            assert_eq!(*work, i as u64, "event carries the scenario's own report");
        }
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 17);
    }

    /// The result-callback seam's flush guarantee: by the time a block's
    /// event fires, the batch instance's counters — including a faulted
    /// lane's partial steps — are already flushed into the event report,
    /// exactly like they reach merged reports via `Drop`/`flush_counters`.
    #[test]
    fn observer_events_carry_faulted_lanes_partial_counters() {
        let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
        let model = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        struct PanicAt(usize);
        impl Stimulus for PanicAt {
            fn value(&self, t: f64) -> f64 {
                let k = (t / 1e-6).round() as usize;
                if k >= self.0 {
                    panic!("injected stimulus panic at step {k}");
                }
                1.0
            }
        }
        // One block of 4: lane 1 panics at step 5 of 20, siblings finish.
        let scenarios: Vec<AmsScenario> = (0..4)
            .map(|i| AmsScenario {
                name: format!("s{i}"),
                stim: if i == 1 {
                    Box::new(PanicAt(5))
                } else {
                    Box::new(PiecewiseConstant::seeded(i as u64 + 1, 3, 1e-5, 0.0, 1.0))
                },
                steps: 20,
                newton_tol: None,
                step_control: None,
            })
            .collect();
        let mut events = 0usize;
        let out = run_ams_sweep_batched_with(
            &SweepEngine::new().workers(1),
            &model,
            &scenarios,
            4,
            &ScenarioBudget::unlimited(),
            |ev| {
                events += 1;
                assert_eq!(ev.first_index, 0);
                assert_eq!(ev.results.len(), 4);
                assert!(matches!(ev.results[1], ScenarioOutcome::Panicked(_)));
                // The faulted lane ran 5 steps before panicking; the
                // event report must already include them (block total =
                // 3 × 20 survivors + 5 partial).
                assert_eq!(ev.report.counter("amsim.steps"), 65);
                assert!(ev.report.counter("amsim.newton_iterations") > 0);
            },
        )
        .unwrap();
        assert_eq!(events, 1, "one block, one event");
        // The merged report agrees with what the event saw.
        assert_eq!(out.report.counter("amsim.steps"), 65);
        assert_eq!(out.report.counter("sweep.scenarios.panicked"), 1);
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 3);
    }

    #[test]
    fn batched_sweep_accounts_budget_per_lane() {
        let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
        let model = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .unwrap();
        // Scenario 1 wants 30 steps against a 10-step cap; its block
        // siblings stay within budget and must be unaffected.
        let scenarios: Vec<AmsScenario> = [8usize, 30, 8, 8]
            .iter()
            .enumerate()
            .map(|(i, &steps)| AmsScenario {
                name: format!("s{i}"),
                stim: Box::new(PiecewiseConstant::seeded(i as u64 + 1, 3, 1e-5, 0.0, 1.0)),
                steps,
                newton_tol: None,
                step_control: None,
            })
            .collect();
        let budget = ScenarioBudget::unlimited().max_steps(10);
        let out = run_ams_sweep_batched(
            &SweepEngine::new().workers(2),
            &model,
            &scenarios,
            4,
            &budget,
        )
        .unwrap();
        match &out.results[1] {
            ScenarioOutcome::Budget(b) => {
                assert_eq!(b.steps, 11, "tripped on the first step past the cap");
                assert_eq!(b.max_steps, Some(10));
            }
            other => panic!("slot 1: want Budget, got {other:?}"),
        }
        for i in [0usize, 2, 3] {
            assert_eq!(
                out.results[i].ok().expect("within budget").waveform.len(),
                8
            );
        }
        assert_eq!(out.report.counter("sweep.scenarios.budget"), 1);
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 3);
    }

    #[test]
    fn batched_engine_runs_generic_blocks() {
        let engine = SweepEngine::new().workers(3);
        let scenarios: Vec<u64> = (0..11).collect();
        let out = engine.run_batched(&scenarios, 4, |ctx, block| {
            ctx.obs.add("blocks.seen", 1);
            block.iter().map(|s| s * 2).collect()
        });
        assert_eq!(out.results, (0..11).map(|s| s * 2).collect::<Vec<_>>());
        assert_eq!(out.report.counter("sweep.batch.blocks"), 3);
        assert_eq!(out.report.counter("blocks.seen"), 3);
        assert_eq!(out.report.counter("sweep.scenarios"), 11);
        let per_worker: u64 = (0..3)
            .map(|w| out.report.counter(&format!("sweep.worker.{w}.scenarios")))
            .sum();
        assert_eq!(per_worker, 11);
        assert_eq!(out.report.timers["sweep.block"].count, 3);
        // Empty input: no blocks, no results.
        let empty: [u64; 0] = [];
        let out = engine.run_batched(&empty, 4, |_, block| block.to_vec());
        assert!(out.results.is_empty());
        assert_eq!(out.report.counter("sweep.batch.blocks"), 0);
    }

    /// Stimulus that switches sources at `t0` — the flat-run equivalent
    /// of a segment boundary in a scenario tree.
    struct SwitchAt {
        t0: f64,
        before: Box<dyn Stimulus + Send + Sync>,
        after: Box<dyn Stimulus + Send + Sync>,
    }

    impl Stimulus for SwitchAt {
        fn value(&self, t: f64) -> f64 {
            if t < self.t0 {
                self.before.value(t)
            } else {
                self.after.value(t)
            }
        }
    }

    const TREE_DT: f64 = 1e-6;
    const SEG_STEPS: usize = 10;

    fn tree_model() -> Arc<CompiledModel> {
        let module = vams_parser::parse_module(&rc_ladder(2)).unwrap();
        amsim::Simulation::new(&module)
            .dt(TREE_DT)
            .output("V(out)")
            .compile()
            .unwrap()
    }

    fn seg_stim(seed: u64) -> Box<dyn Stimulus + Send + Sync> {
        Box::new(PiecewiseConstant::seeded(seed, 4, 3.0 * TREE_DT, 0.0, 1.0))
    }

    /// Two-level test forest (6 nodes, 4 leaves): a shared root, three
    /// children, the first child itself forking into two grandchildren.
    ///
    /// ```text
    /// root ─┬─ c0 ─┬─ g0
    ///       │      └─ g1
    ///       ├─ c1
    ///       └─ c2
    /// ```
    fn two_level_tree() -> ScenarioTree {
        let grandchildren = vec![
            ScenarioSegment {
                name: "g0".into(),
                stim: seg_stim(20),
                steps: SEG_STEPS,
                children: Vec::new(),
            },
            ScenarioSegment {
                name: "g1".into(),
                stim: seg_stim(21),
                steps: SEG_STEPS,
                children: Vec::new(),
            },
        ];
        ScenarioTree {
            roots: vec![TreeScenario {
                newton_tol: Some(1e-8),
                step_control: None,
                segment: ScenarioSegment {
                    name: "root".into(),
                    stim: seg_stim(99),
                    steps: SEG_STEPS,
                    children: vec![
                        ScenarioSegment {
                            name: "c0".into(),
                            stim: seg_stim(10),
                            steps: SEG_STEPS,
                            children: grandchildren,
                        },
                        ScenarioSegment {
                            name: "c1".into(),
                            stim: seg_stim(11),
                            steps: SEG_STEPS,
                            children: Vec::new(),
                        },
                        ScenarioSegment {
                            name: "c2".into(),
                            stim: seg_stim(12),
                            steps: SEG_STEPS,
                            children: Vec::new(),
                        },
                    ],
                },
            }],
        }
    }

    /// The flat scenarios equivalent to [`two_level_tree`]'s four
    /// root-to-leaf paths, stitched with [`SwitchAt`] at the segment
    /// boundaries so every path samples the identical stimulus values.
    fn two_level_flat() -> Vec<AmsScenario> {
        let t1 = SEG_STEPS as f64 * TREE_DT;
        let t2 = 2.0 * t1;
        let leaf = |name: &str, mid: u64, last: Option<u64>| -> AmsScenario {
            let after: Box<dyn Stimulus + Send + Sync> = match last {
                Some(seed) => Box::new(SwitchAt {
                    t0: t2,
                    before: seg_stim(mid),
                    after: seg_stim(seed),
                }),
                None => seg_stim(mid),
            };
            AmsScenario {
                name: name.into(),
                stim: Box::new(SwitchAt {
                    t0: t1,
                    before: seg_stim(99),
                    after,
                }),
                steps: SEG_STEPS * if last.is_some() { 3 } else { 2 },
                newton_tol: Some(1e-8),
                step_control: None,
            }
        };
        vec![
            leaf("g0", 10, Some(20)),
            leaf("g1", 10, Some(21)),
            leaf("c1", 11, None),
            leaf("c2", 12, None),
        ]
    }

    #[test]
    fn tree_sweep_depth1_conversion_matches_batched_sweep_bitwise() {
        let model = tree_model();
        let mk = || -> Vec<AmsScenario> {
            (0..7)
                .map(|i| AmsScenario {
                    name: format!("s{i}"),
                    stim: seg_stim(i as u64 + 1),
                    steps: 25,
                    newton_tol: if i % 2 == 0 { Some(1e-8) } else { None },
                    step_control: None,
                })
                .collect()
        };
        let flat = run_ams_sweep_batched(
            &SweepEngine::new().workers(2),
            &model,
            &mk(),
            4,
            &ScenarioBudget::unlimited(),
        )
        .unwrap();
        let tree = ScenarioTree::from(mk());
        assert_eq!(tree.node_count(), 7);
        assert_eq!(tree.leaf_count(), 7);
        for workers in [1usize, 2, 8] {
            let out = run_ams_sweep_tree(
                &SweepEngine::new().workers(workers),
                &model,
                &tree,
                4,
                &ScenarioBudget::unlimited(),
            )
            .unwrap();
            assert_eq!(out.results.len(), 7);
            assert_eq!(out.report.counter("sweep.scenarios"), 7);
            assert_eq!(out.report.counter("sweep.scenarios.ok"), 7);
            assert_eq!(out.report.counter("sweep.tree.nodes"), 7);
            // Depth-1: no shared prefixes, so nothing forks or is saved.
            assert_eq!(out.report.counter("sweep.tree.forks"), 0);
            assert_eq!(out.report.counter("sweep.tree.prefix_steps_saved"), 0);
            assert_eq!(out.report.counter("amsim.snapshot.taken"), 0);
            for (i, (t, f)) in out.results.iter().zip(&flat.results).enumerate() {
                let (t, f) = (t.ok().unwrap(), f.ok().unwrap());
                assert_eq!(t.name, f.name);
                assert_eq!(t.newton_iters, f.newton_iters, "leaf {i}");
                let tb: Vec<u64> = t.waveform.iter().map(|v| v.to_bits()).collect();
                let fb: Vec<u64> = f.waveform.iter().map(|v| v.to_bits()).collect();
                assert_eq!(tb, fb, "leaf {i} at {workers} workers");
            }
            for c in ["amsim.steps", "amsim.newton_iterations"] {
                assert_eq!(out.report.counter(c), flat.report.counter(c), "{c}");
            }
        }
    }

    #[test]
    fn tree_sweep_forked_paths_match_flat_runs_bitwise() {
        let model = tree_model();
        let flat = run_ams_sweep_batched(
            &SweepEngine::new().workers(2),
            &model,
            &two_level_flat(),
            4,
            &ScenarioBudget::unlimited(),
        )
        .unwrap();
        let tree = two_level_tree();
        assert_eq!(tree.node_count(), 6);
        assert_eq!(tree.leaf_count(), 4);
        let mut reference: Option<Vec<(String, u64)>> = None;
        for (workers, lane_width) in [(1usize, 1usize), (2, 2), (8, 4)] {
            let out = run_ams_sweep_tree(
                &SweepEngine::new().workers(workers),
                &model,
                &tree,
                lane_width,
                &ScenarioBudget::unlimited(),
            )
            .unwrap();
            assert_eq!(out.results.len(), 4);
            assert_eq!(out.report.counter("sweep.scenarios.ok"), 4);
            assert_eq!(out.report.counter("sweep.tree.nodes"), 6);
            // Two segments fan out: the root (4 leaves below) and c0 (2).
            assert_eq!(out.report.counter("sweep.tree.forks"), 2);
            assert_eq!(
                out.report.counter("sweep.tree.prefix_steps_saved"),
                (SEG_STEPS * 3 + SEG_STEPS) as u64
            );
            assert_eq!(out.report.counter("amsim.snapshot.taken"), 2);
            assert_eq!(out.report.counter("amsim.snapshot.restored"), 5);
            for (i, (t, f)) in out.results.iter().zip(&flat.results).enumerate() {
                let (t, f) = (t.ok().unwrap(), f.ok().unwrap());
                assert_eq!(t.name, f.name, "leaf order is depth-first");
                assert_eq!(t.newton_iters, f.newton_iters, "leaf {i} path-cumulative");
                assert_eq!(t.waveform.len(), f.waveform.len());
                let tb: Vec<u64> = t.waveform.iter().map(|v| v.to_bits()).collect();
                let fb: Vec<u64> = f.waveform.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    tb, fb,
                    "leaf {i}: forked waveform must be byte-identical to flat"
                );
            }
            // Solver-work counters are scheduling-independent. Only the
            // scheduling-dependent per-worker tallies and the job count
            // (`sweep.batch.blocks` follows lane_width chunking) vary.
            let stable: Vec<(String, u64)> = out
                .report
                .counters
                .iter()
                .filter(|(k, _)| !k.starts_with("sweep.worker") && *k != "sweep.batch.blocks")
                .map(|(k, v)| (k.clone(), *v))
                .collect();
            match &reference {
                None => reference = Some(stable),
                Some(r) => assert_eq!(&stable, r, "{workers} workers / {lane_width} lanes"),
            }
            let per_worker: u64 = (0..workers)
                .map(|w| out.report.counter(&format!("sweep.worker.{w}.scenarios")))
                .sum();
            assert_eq!(per_worker, 4, "every leaf resolved exactly once");
        }
    }

    #[test]
    fn tree_sweep_amortizes_budget_over_shared_prefix() {
        let model = tree_model();
        // Each root-to-leaf path simulates 2·SEG_STEPS steps, but the
        // root is shared by two leaves, so a lane's own account is
        // SEG_STEPS/2 + SEG_STEPS = 15 charged steps.
        let tree = ScenarioTree {
            roots: vec![TreeScenario {
                newton_tol: None,
                step_control: None,
                segment: ScenarioSegment {
                    name: "root".into(),
                    stim: seg_stim(99),
                    steps: SEG_STEPS,
                    children: vec![
                        ScenarioSegment {
                            name: "a".into(),
                            stim: seg_stim(1),
                            steps: SEG_STEPS,
                            children: Vec::new(),
                        },
                        ScenarioSegment {
                            name: "b".into(),
                            stim: seg_stim(2),
                            steps: SEG_STEPS,
                            children: Vec::new(),
                        },
                    ],
                },
            }],
        };
        // A 15-step cap covers the amortized path cost: both leaves pass
        // where the flat 20-step path would have tripped.
        let out = run_ams_sweep_tree(
            &SweepEngine::new().workers(2),
            &model,
            &tree,
            2,
            &ScenarioBudget::unlimited().max_steps(15),
        )
        .unwrap();
        assert_eq!(out.report.counter("sweep.scenarios.ok"), 2);
        // A cap below the amortized cost still trips — on the lane's own
        // account, not the block clock.
        let out = run_ams_sweep_tree(
            &SweepEngine::new().workers(2),
            &model,
            &tree,
            2,
            &ScenarioBudget::unlimited().max_steps(12),
        )
        .unwrap();
        assert_eq!(out.report.counter("sweep.scenarios.budget"), 2);
        for r in &out.results {
            match r {
                ScenarioOutcome::Budget(b) => assert_eq!(b.steps, 13),
                other => panic!("want Budget, got {other:?}"),
            }
        }
    }

    #[test]
    fn tree_sweep_fault_retires_only_its_subtree() {
        struct PanicAt(f64);
        impl Stimulus for PanicAt {
            fn value(&self, t: f64) -> f64 {
                assert!(t < self.0, "injected tree stimulus failure at t = {t}");
                0.5
            }
        }
        let model = tree_model();
        // The faulting segment has two leaves below it: both slots must
        // carry the panic record while the sibling subtree survives.
        let tree = ScenarioTree {
            roots: vec![TreeScenario {
                newton_tol: None,
                step_control: None,
                segment: ScenarioSegment {
                    name: "root".into(),
                    stim: seg_stim(99),
                    steps: SEG_STEPS,
                    children: vec![
                        ScenarioSegment {
                            name: "bad".into(),
                            stim: Box::new(PanicAt((SEG_STEPS + 3) as f64 * TREE_DT)),
                            steps: SEG_STEPS,
                            children: vec![
                                ScenarioSegment {
                                    name: "bad-0".into(),
                                    stim: seg_stim(1),
                                    steps: SEG_STEPS,
                                    children: Vec::new(),
                                },
                                ScenarioSegment {
                                    name: "bad-1".into(),
                                    stim: seg_stim(2),
                                    steps: SEG_STEPS,
                                    children: Vec::new(),
                                },
                            ],
                        },
                        ScenarioSegment {
                            name: "good".into(),
                            stim: seg_stim(3),
                            steps: SEG_STEPS,
                            children: Vec::new(),
                        },
                    ],
                },
            }],
        };
        for workers in [1usize, 2, 8] {
            let out = run_ams_sweep_tree(
                &SweepEngine::new().workers(workers),
                &model,
                &tree,
                2,
                &ScenarioBudget::unlimited(),
            )
            .unwrap();
            assert_eq!(out.results.len(), 3);
            for i in [0usize, 1] {
                match &out.results[i] {
                    ScenarioOutcome::Panicked(msg) => {
                        assert!(msg.contains("injected tree stimulus failure"), "{msg}");
                    }
                    other => panic!("leaf {i}: want Panicked, got {other:?}"),
                }
            }
            let good = out.results[2].ok().expect("sibling subtree survives");
            assert_eq!(good.name, "good");
            assert_eq!(good.waveform.len(), 2 * SEG_STEPS);
            assert_eq!(out.report.counter("sweep.scenarios.ok"), 1);
            assert_eq!(out.report.counter("sweep.scenarios.panicked"), 2);
            assert_eq!(out.report.counter("sweep.scenarios"), 3);
        }
    }

    #[test]
    fn tree_sweep_empty_forest_is_fine() {
        let model = tree_model();
        let tree = ScenarioTree { roots: Vec::new() };
        let out = run_ams_sweep_tree(
            &SweepEngine::new().workers(4),
            &model,
            &tree,
            8,
            &ScenarioBudget::unlimited(),
        )
        .unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.report.counter("sweep.scenarios"), 0);
        assert_eq!(out.report.counter("sweep.tree.nodes"), 0);
    }
}
