//! Deterministic fault plans and the automatic recovery ladder.
//!
//! [`run_ams_sweep_recovering`] is the batched AMS sweep
//! ([`crate::run_ams_sweep_batched`]) plus two seams:
//!
//! * **Fault injection** ([`FaultPlan`]): planned failures — a poisoned
//!   residual, a singular/non-finite refactorization, a panicking or
//!   stalling stimulus — fired at an exact `(scenario, step)` through
//!   the production error paths (`amsim::fault`, `expr::fault`,
//!   `linalg::fault`). The plan is *pure*: which scenarios fault, with
//!   which kind, at which step depends only on `(plan, index, steps)`,
//!   never on worker count, lane width, or scheduling. Arming is
//!   compiled out unless the `fault-inject` cargo feature is enabled;
//!   the plan types themselves always exist so configuration layers
//!   (the serve daemon) can parse and carry them unconditionally.
//!
//! * **The recovery ladder** ([`Recovery`]): a lane that faults is not
//!   retired outright — the engine escalates deterministically, on the
//!   worker that ran the block:
//!
//!   1. **Resume** — restore the lane's last periodic [`Snapshot`] into
//!      a scalar [`amsim::Instance`] (demoting it out of the batch) and
//!      replay under a *tightened* step control
//!      ([`RecoveryPolicy::tightened`]: smaller `min_dt` floor, more
//!      in-step retries).
//!   2. **Restart** — fresh scalar instance from `t = 0` under the
//!      tightened control.
//!   3. **Backend** — fresh scalar instance from `t = 0` on the
//!      fallback compiled model (typically the same circuit recompiled
//!      onto the dense solver backend).
//!
//!   Rungs that don't apply (no checkpoint yet, no fallback configured)
//!   are skipped; the ladder is truncated to
//!   [`RecoveryPolicy::max_recoveries`] attempts. Every replayed step
//!   is charged against the same per-lane [`ScenarioBudget`] account as
//!   the nominal run, so recovery cannot spend past the caps.
//!
//! A scenario rescued at rung *r* reports
//! [`ScenarioOutcome::Recovered`] with a waveform **bit-identical** to
//! the same scenario run from `t = 0` on rung *r*'s configuration:
//! snapshots replay exact solver state (PR 7), batch lanes are
//! bit-equal to scalar runs (PR 5), and tightening only moves the
//! give-up point — it never changes the accept/reject decision of a
//! step the looser control accepted.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use amsim::{AmsError, CompiledModel, RecoveryPolicy, Snapshot};
use obs::Obs;

use crate::{
    merge_fault_tally, panic_message, AmsRun, AmsScenario, BudgetExceeded, ScenarioBudget,
    ScenarioCtx, ScenarioOutcome, SweepEngine, SweepEvent, SweepOutcome,
};

// ------------------------------------------------------------ fault plans

/// A failure mode the fault plan can inject into one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The residual evaluation returns NaN at the planned step
    /// (surfaces as [`AmsError::NonFinite`]).
    ResidualNan,
    /// The Jacobian refactorization at the planned step reports a
    /// singular matrix (surfaces as [`AmsError::Singular`]).
    RefactorSingular,
    /// The Jacobian refactorization at the planned step reports a
    /// non-finite entry (surfaces as [`AmsError::NonFinite`]).
    RefactorNonFinite,
    /// The stimulus sample at the planned step panics.
    StimulusPanic,
    /// The stimulus sample at the planned step stalls for `millis`
    /// milliseconds — the lane stays healthy but burns wall clock
    /// (exercises `max_wall` budgets and the serve watchdog). Only
    /// available through targeted plans, never the seeded rotation.
    StimulusStall {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
}

impl FaultKind {
    /// Stable lower-case label, used in `fault.injected.*` counter keys
    /// and serve's job configuration.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::ResidualNan => "residual_nan",
            FaultKind::RefactorSingular => "refactor_singular",
            FaultKind::RefactorNonFinite => "refactor_non_finite",
            FaultKind::StimulusPanic => "stimulus_panic",
            FaultKind::StimulusStall { .. } => "stimulus_stall",
        }
    }
}

/// One planned injection: `kind` fires at nominal step `step` of its
/// scenario (a step index at or past the scenario's end never fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The failure mode to force.
    pub kind: FaultKind,
    /// Nominal step index at which it fires.
    pub step: u64,
}

/// A deterministic injection plan over a sweep's scenario indices.
///
/// Two layers compose: explicit per-index targets ([`FaultPlan::target`],
/// which win) and a seeded pseudo-random rotation ([`FaultPlan::seeded`])
/// that faults roughly one scenario in `period` via a scenario-indexed
/// xorshift hash. [`FaultPlan::fault_for`] is a pure function of the
/// plan and `(index, steps)`, so the same plan over the same scenario
/// list injects identically at any worker count or lane width.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    targeted: BTreeMap<usize, FaultSpec>,
    /// `(seed, period)`; `None` disables the seeded layer.
    seeded: Option<(u64, u64)>,
}

impl FaultPlan {
    /// An empty plan: injects nothing.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Plans `spec` for scenario `index` (overriding any seeded pick).
    #[must_use]
    pub fn target(mut self, index: usize, spec: FaultSpec) -> FaultPlan {
        self.targeted.insert(index, spec);
        self
    }

    /// Enables the seeded layer: roughly one scenario in `period` gets a
    /// fault, with the victim set, fault kind, and firing step all drawn
    /// from an xorshift hash of `(seed, index)`. `period == 0` disables
    /// the layer.
    #[must_use]
    pub fn seeded(mut self, seed: u64, period: u64) -> FaultPlan {
        self.seeded = (period > 0).then_some((seed, period));
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.targeted.is_empty() && self.seeded.is_none()
    }

    /// The fault planned for scenario `index` of `steps` nominal steps,
    /// if any. Pure — depends only on the plan and the arguments.
    pub fn fault_for(&self, index: usize, steps: u64) -> Option<FaultSpec> {
        if let Some(spec) = self.targeted.get(&index) {
            return Some(*spec);
        }
        let (seed, period) = self.seeded?;
        let h = xorshift64(seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if !h.is_multiple_of(period) {
            return None;
        }
        // The seeded rotation only deals recoverable solver/stimulus
        // faults; stalls are a targeted-only tool.
        let kind = match (h >> 8) % 4 {
            0 => FaultKind::ResidualNan,
            1 => FaultKind::RefactorSingular,
            2 => FaultKind::RefactorNonFinite,
            _ => FaultKind::StimulusPanic,
        };
        Some(FaultSpec {
            kind,
            step: (h >> 16) % steps.max(1),
        })
    }
}

/// Splitmix-seeded xorshift64; 0 is the xorshift fixed point, so seeds
/// are nudged off it.
fn xorshift64(mut x: u64) -> u64 {
    x = x.max(1);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

// -------------------------------------------------------------- the ladder

/// The rung of the recovery ladder that rescued (or tried to rescue) a
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryRung {
    /// Restored the last periodic checkpoint into a scalar instance and
    /// resumed under the tightened step control.
    Resume,
    /// Re-ran from `t = 0` on a scalar instance under the tightened
    /// control.
    Restart,
    /// Re-ran from `t = 0` on the fallback compiled model under the
    /// tightened control.
    Backend,
}

impl RecoveryRung {
    /// Stable lower-case label, used in `recovery.*` counter keys and
    /// serve's stream records.
    pub fn name(&self) -> &'static str {
        match self {
            RecoveryRung::Resume => "resume",
            RecoveryRung::Restart => "restart",
            RecoveryRung::Backend => "backend",
        }
    }
}

/// One failed attempt in a scenario's recovery trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryAttempt {
    /// The rung that failed; `None` marks the original, pre-ladder fault.
    pub rung: Option<RecoveryRung>,
    /// Stringified error of the attempt (panic payloads are prefixed
    /// with `panic: `).
    pub error: String,
}

/// Configuration for [`run_ams_sweep_recovering`]: ladder policy,
/// fallback backend, fault plan, and an external kill switch.
///
/// The default — ladder enabled with [`RecoveryPolicy::default`], no
/// fallback, empty plan, no cancel token — recovers via resume/restart
/// only and injects nothing.
#[derive(Clone, Default)]
pub struct Recovery {
    /// Snapshot cadence, rung budget, and tightening knobs.
    /// `max_recoveries == 0` disables the ladder *and* periodic
    /// checkpoints, reducing the sweep to [`crate::run_ams_sweep_batched`]
    /// exactly (bit-identical results and report).
    pub policy: RecoveryPolicy,
    /// Model the backend rung re-runs on — typically the same circuit
    /// recompiled onto the dense solver. Must share the nominal `dt`
    /// and input/output interface with the primary model; `None` skips
    /// the rung.
    pub fallback: Option<Arc<CompiledModel>>,
    /// Deterministic fault plan. Carried (and parseable) always; armed
    /// only when the `fault-inject` feature is compiled in.
    pub plan: FaultPlan,
    /// Cooperative kill switch: once set, every still-running lane —
    /// nominal or mid-rung — is cut with a [`ScenarioOutcome::Budget`]
    /// verdict at its next step boundary. This is the serve watchdog's
    /// hard-kill path; killed scenarios are *not* laddered.
    pub cancel: Option<Arc<AtomicBool>>,
}

/// [`run_ams_sweep_batched`](crate::run_ams_sweep_batched) with
/// deterministic fault injection and the automatic recovery ladder.
///
/// Healthy scenarios behave exactly like the plain batched sweep (same
/// bit-identical waveforms, plus periodic checkpoints when the ladder
/// is enabled). A lane that faults with a typed error or a panic is
/// escalated through the ladder (see the module docs); the outcome is
/// [`ScenarioOutcome::Recovered`] on success — carrying the rescuing
/// rung and the full attempt trail — or [`ScenarioOutcome::Failed`]
/// with the trail once every rung is exhausted. Budget trips are never
/// laddered: the budget is the outer cap, and recovery work itself is
/// charged against the same per-lane account.
///
/// On top of the batched sweep's counter families, the merged report
/// tallies `sweep.scenarios.recovered` (ladder enabled only),
/// `recovery.attempts.{resume,restart,backend}`,
/// `recovery.recovered.{resume,restart,backend}`, `recovery.gave_up`,
/// and — with the `fault-inject` feature — `fault.injected.*`. All are
/// per-block counters merged in scenario-index order, so the report is
/// scheduling-independent.
///
/// # Errors
///
/// As for [`run_ams_sweep`](crate::run_ams_sweep): ill-formed
/// per-scenario overrides fail the sweep up front (validated against
/// the fallback model's `dt` too, so a backend rung can never fail on
/// configuration).
pub fn run_ams_sweep_recovering(
    engine: &SweepEngine,
    model: &Arc<CompiledModel>,
    scenarios: &[AmsScenario],
    lane_width: usize,
    budget: &ScenarioBudget,
    recovery: &Recovery,
) -> Result<SweepOutcome<ScenarioOutcome<AmsRun, AmsError>>, AmsError> {
    run_ams_sweep_recovering_with(
        engine,
        model,
        scenarios,
        lane_width,
        budget,
        recovery,
        |_| {},
    )
}

/// [`run_ams_sweep_recovering`] with an incremental result observer
/// ([`crate::SweepEngine::run_batched_with`]): `observe` fires once per
/// finished lane-block — recovery already applied, counters already
/// flushed — so a streaming consumer sees `Recovered` outcomes exactly
/// like terminal ones.
#[allow(clippy::too_many_arguments)]
pub fn run_ams_sweep_recovering_with<O>(
    engine: &SweepEngine,
    model: &Arc<CompiledModel>,
    scenarios: &[AmsScenario],
    lane_width: usize,
    budget: &ScenarioBudget,
    recovery: &Recovery,
    observe: O,
) -> Result<SweepOutcome<ScenarioOutcome<AmsRun, AmsError>>, AmsError>
where
    O: FnMut(SweepEvent<'_, ScenarioOutcome<AmsRun, AmsError>>),
{
    for sc in scenarios {
        if let Some(tol) = sc.newton_tol {
            if !(tol.is_finite() && tol > 0.0) {
                return Err(AmsError::InvalidTolerance { tol });
            }
        }
        if let Some(ctrl) = sc.step_control {
            ctrl.validate(model.dt())?;
            if let Some(fb) = &recovery.fallback {
                ctrl.validate(fb.dt())?;
            }
        }
    }
    let dt = model.dt();
    let n_inputs = model.input_names().len();
    let ladder = recovery.policy.max_recoveries > 0;
    let snap_every = if ladder {
        recovery.policy.snapshot_every_n_steps
    } else {
        0
    };
    let cancel = recovery.cancel.as_deref();

    let body = move |ctx: &ScenarioCtx, block: &[AmsScenario]| {
        let lanes = block.len();
        let mut builder = model
            .batch_instance_builder(lanes)
            .collector(ctx.obs.clone());
        for (l, sc) in block.iter().enumerate() {
            if let Some(tol) = sc.newton_tol {
                builder = builder.lane_newton_tol(l, tol);
            }
            if let Some(ctrl) = sc.step_control {
                builder = builder.lane_step_control(l, ctrl);
            }
        }
        let mut batch = builder.build().expect("overrides validated up front");
        let track_wall = budget.wall_cap().is_some();
        let max_steps = block.iter().map(|sc| sc.steps).max().unwrap_or(0);
        let mut waveforms: Vec<Vec<f64>> = block
            .iter()
            .map(|sc| Vec::with_capacity(sc.steps))
            .collect();
        let mut lane_fault: Vec<Option<ScenarioOutcome<AmsRun, AmsError>>> =
            (0..lanes).map(|_| None).collect();
        let mut charged = vec![0u64; lanes];
        let mut lane_wall = vec![0.0f64; lanes];
        let mut in_solve = vec![false; lanes];
        let mut inputs = vec![0.0; n_inputs * lanes];
        // Last periodic checkpoint per lane, with the waveform length at
        // capture time (= the nominal step the resume rung restarts at).
        let mut lane_snap: Vec<Option<(Snapshot, usize)>> = (0..lanes).map(|_| None).collect();
        // The plan's pick per lane: keyed by *global* scenario index, so
        // the same scenarios fault at any lane width.
        #[cfg(feature = "fault-inject")]
        let lane_plan: Vec<Option<FaultSpec>> = block
            .iter()
            .enumerate()
            .map(|(l, sc)| recovery.plan.fault_for(ctx.index + l, sc.steps as u64))
            .collect();
        let mut cancelled = false;

        for k in 0..max_steps {
            if !cancelled && cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
                cancelled = true;
            }
            for (l, sc) in block.iter().enumerate() {
                if lane_fault[l].is_some() || !batch.lane_active(l) {
                    continue;
                }
                if k >= sc.steps {
                    batch.retire(l);
                    continue;
                }
                if cancelled {
                    // Hard kill: a budget verdict, not a ladder entry.
                    lane_fault[l] = Some(ScenarioOutcome::Budget(BudgetExceeded {
                        steps: charged[l],
                        wall: lane_wall[l],
                        max_steps: budget.step_cap(),
                        max_wall: budget.wall_cap(),
                    }));
                    batch.retire(l);
                    continue;
                }
                charged[l] += 1;
                if let Err(b) = budget.check(charged[l], lane_wall[l]) {
                    lane_fault[l] = Some(ScenarioOutcome::Budget(b));
                    batch.retire(l);
                    continue;
                }
                // Planned stimulus faults fire in place of/around the
                // real sample.
                #[cfg(feature = "fault-inject")]
                let stim_fault = lane_plan[l]
                    .filter(|spec| spec.step == k as u64)
                    .map(|spec| spec.kind)
                    .filter(|kind| {
                        matches!(
                            kind,
                            FaultKind::StimulusPanic | FaultKind::StimulusStall { .. }
                        )
                    });
                #[cfg(not(feature = "fault-inject"))]
                let stim_fault: Option<FaultKind> = None;
                if let Some(kind) = stim_fault {
                    ctx.obs.add(&format!("fault.injected.{}", kind.name()), 1);
                    if let FaultKind::StimulusStall { millis } = kind {
                        std::thread::sleep(std::time::Duration::from_millis(millis));
                    }
                }
                let sample_t0 = track_wall.then(Instant::now);
                match catch_unwind(AssertUnwindSafe(|| {
                    if matches!(stim_fault, Some(FaultKind::StimulusPanic)) {
                        panic!("injected stimulus panic at step {k}");
                    }
                    sc.stim.value(k as f64 * dt)
                })) {
                    Ok(u) => {
                        for i in 0..n_inputs {
                            inputs[i * lanes + l] = u;
                        }
                    }
                    Err(payload) => {
                        lane_fault[l] = Some(ScenarioOutcome::Panicked(panic_message(payload)));
                        batch.retire(l);
                    }
                }
                if let Some(t0) = sample_t0 {
                    lane_wall[l] += t0.elapsed().as_secs_f64();
                }
            }
            let solving = batch.active_lanes();
            if solving == 0 {
                break;
            }
            for (l, s) in in_solve.iter_mut().enumerate() {
                *s = batch.lane_active(l);
            }
            // Arm this step's planned solver faults around the one
            // nominal batched step. The guard drops right after, so
            // ladder replays never re-inject.
            #[cfg(feature = "fault-inject")]
            let guard = {
                let mut armed: Vec<(usize, amsim::fault::SolverFault)> = Vec::new();
                for (l, spec) in lane_plan.iter().enumerate() {
                    let Some(spec) = spec else { continue };
                    if spec.step != k as u64 || !in_solve[l] {
                        continue;
                    }
                    let sf = match spec.kind {
                        FaultKind::ResidualNan => amsim::fault::SolverFault::ResidualNan,
                        FaultKind::RefactorSingular => amsim::fault::SolverFault::RefactorSingular,
                        FaultKind::RefactorNonFinite => {
                            amsim::fault::SolverFault::RefactorNonFinite
                        }
                        _ => continue,
                    };
                    ctx.obs
                        .add(&format!("fault.injected.{}", spec.kind.name()), 1);
                    armed.push((l, sf));
                }
                amsim::fault::inject(&armed)
            };
            let solve_t0 = track_wall.then(Instant::now);
            batch.try_step(&inputs);
            #[cfg(feature = "fault-inject")]
            drop(guard);
            if let Some(t0) = solve_t0 {
                let share = t0.elapsed().as_secs_f64() / solving as f64;
                for (l, _) in in_solve.iter().enumerate().filter(|(_, s)| **s) {
                    lane_wall[l] += share;
                }
            }
            for (l, sc) in block.iter().enumerate() {
                if k < sc.steps && lane_fault[l].is_none() && batch.lane_active(l) {
                    waveforms[l].push(batch.output(0, l));
                }
            }
            // Periodic checkpoints feed the resume rung. Snapshots read
            // (never mutate) lane state, so healthy waveforms stay
            // bit-identical to the plain batched sweep.
            if snap_every > 0 && (k as u64 + 1).is_multiple_of(snap_every) {
                for (l, sc) in block.iter().enumerate() {
                    if k + 1 < sc.steps && lane_fault[l].is_none() && batch.lane_active(l) {
                        lane_snap[l] = Some((batch.snapshot_lane(l), waveforms[l].len()));
                    }
                }
            }
        }

        let mut results: Vec<ScenarioOutcome<AmsRun, AmsError>> = Vec::with_capacity(lanes);
        for (l, sc) in block.iter().enumerate() {
            let outcome = match lane_fault[l].take() {
                Some(f) => f,
                None => match batch.lane_error(l) {
                    Some(e) => ScenarioOutcome::failed(e.clone()),
                    None => {
                        results.push(ScenarioOutcome::Ok(AmsRun {
                            name: sc.name.clone(),
                            waveform: std::mem::take(&mut waveforms[l]),
                            newton_iters: batch.lane_newton_iterations(l),
                        }));
                        continue;
                    }
                },
            };
            if !ladder {
                results.push(outcome);
                continue;
            }
            let seed = match outcome {
                ScenarioOutcome::Failed { error, .. } => LadderSeed::Error(error),
                ScenarioOutcome::Panicked(msg) => LadderSeed::Panic(msg),
                // Budget verdicts (including watchdog kills) are final.
                other => {
                    results.push(other);
                    continue;
                }
            };
            results.push(run_ladder(LadderLane {
                model,
                recovery,
                sc,
                seed,
                snap: lane_snap[l].take(),
                prefix: &waveforms[l],
                budget,
                charged: &mut charged[l],
                lane_wall: &mut lane_wall[l],
                track_wall,
                n_inputs,
                obs: &ctx.obs,
                cancel,
            }));
        }
        batch.flush_counters();
        results
    };
    let mut out = engine.run_batched_with(scenarios, lane_width, body, observe);
    merge_fault_tally(&mut out.report, &out.results, ladder);
    Ok(out)
}

/// The original fault that put a lane on the ladder.
enum LadderSeed {
    Error(AmsError),
    Panic(String),
}

/// Everything one lane's ladder run needs, bundled to keep the call
/// site readable.
struct LadderLane<'a> {
    model: &'a Arc<CompiledModel>,
    recovery: &'a Recovery,
    sc: &'a AmsScenario,
    seed: LadderSeed,
    /// Last periodic checkpoint and the waveform length at capture time.
    snap: Option<(Snapshot, usize)>,
    /// The lane's healthy nominal samples (resume replays from a prefix
    /// of these).
    prefix: &'a [f64],
    budget: &'a ScenarioBudget,
    /// The lane's budget account — recovery keeps charging it.
    charged: &'a mut u64,
    lane_wall: &'a mut f64,
    track_wall: bool,
    n_inputs: usize,
    obs: &'a Obs,
    cancel: Option<&'a AtomicBool>,
}

/// Escalates one faulted lane through the applicable rungs; returns the
/// lane's final outcome.
fn run_ladder(mut lane: LadderLane<'_>) -> ScenarioOutcome<AmsRun, AmsError> {
    let mut attempts = vec![RecoveryAttempt {
        rung: None,
        error: match &lane.seed {
            LadderSeed::Error(e) => e.to_string(),
            LadderSeed::Panic(msg) => format!("panic: {msg}"),
        },
    }];
    let mut rungs: Vec<RecoveryRung> = Vec::new();
    if lane.snap.is_some() {
        rungs.push(RecoveryRung::Resume);
    }
    rungs.push(RecoveryRung::Restart);
    if lane.recovery.fallback.is_some() {
        rungs.push(RecoveryRung::Backend);
    }
    rungs.truncate(lane.recovery.policy.max_recoveries as usize);

    for rung in rungs {
        lane.obs
            .add(&format!("recovery.attempts.{}", rung.name()), 1);
        match catch_unwind(AssertUnwindSafe(|| replay_rung(rung, &mut lane))) {
            Ok(Ok(run)) => {
                lane.obs
                    .add(&format!("recovery.recovered.{}", rung.name()), 1);
                return ScenarioOutcome::Recovered {
                    result: run,
                    rung,
                    attempts,
                };
            }
            Ok(Err(RungFault::Error(e))) => {
                attempts.push(RecoveryAttempt {
                    rung: Some(rung),
                    error: e.to_string(),
                });
            }
            Ok(Err(RungFault::Budget(b))) => {
                // The budget is the outer cap: exhausting it mid-rung
                // ends the scenario with the budget verdict (which, like
                // every `Budget` outcome, carries no attempt trail).
                lane.obs.add("recovery.gave_up", 1);
                return ScenarioOutcome::Budget(b);
            }
            Err(payload) => {
                lane.obs.add("recovery.gave_up", 1);
                return ScenarioOutcome::Panicked(panic_message(payload));
            }
        }
    }
    lane.obs.add("recovery.gave_up", 1);
    match lane.seed {
        LadderSeed::Error(error) => ScenarioOutcome::Failed { error, attempts },
        LadderSeed::Panic(msg) => ScenarioOutcome::Panicked(msg),
    }
}

/// Why one rung's replay stopped short.
enum RungFault {
    Error(AmsError),
    Budget(BudgetExceeded),
}

/// Replays one scenario on one rung's configuration, charging the
/// lane's budget account per step. Panics (from the stimulus or the
/// solver) propagate to the `catch_unwind` in [`run_ladder`].
fn replay_rung(rung: RecoveryRung, lane: &mut LadderLane<'_>) -> Result<AmsRun, RungFault> {
    let model = match rung {
        RecoveryRung::Backend => lane
            .recovery
            .fallback
            .as_ref()
            .expect("backend rung only enters the ladder with a fallback"),
        _ => lane.model,
    };
    let sc = lane.sc;
    let mut builder = model.instance_builder().collector(lane.obs.clone());
    if let Some(tol) = sc.newton_tol {
        builder = builder.newton_tol(tol);
    }
    if let Some(ctrl) = sc.step_control {
        builder = builder.step_control(ctrl);
    }
    let mut inst = builder.build().expect("overrides validated up front");
    let mut waveform = Vec::with_capacity(sc.steps);
    let start_k = match rung {
        RecoveryRung::Resume => {
            let (snap, wave_len) = lane
                .snap
                .as_ref()
                .expect("resume rung only enters the ladder with a checkpoint");
            inst.restore(snap);
            waveform.extend_from_slice(&lane.prefix[..*wave_len]);
            *wave_len
        }
        _ => 0,
    };
    // `restore` reinstates the snapshot's control; every rung then
    // tightens whatever policy is in force. Tightening never changes
    // the accept/reject decision of a step the looser control accepted,
    // which is what keeps a resumed waveform bit-identical to a full
    // tightened run from `t = 0`.
    let tightened = lane.recovery.policy.tightened(inst.step_control());
    inst.set_step_control(tightened).map_err(RungFault::Error)?;
    let dt = model.dt();
    let mut inputs = vec![0.0; lane.n_inputs];
    for k in start_k..sc.steps {
        *lane.charged += 1;
        if lane.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return Err(RungFault::Budget(BudgetExceeded {
                steps: *lane.charged,
                wall: *lane.lane_wall,
                max_steps: lane.budget.step_cap(),
                max_wall: lane.budget.wall_cap(),
            }));
        }
        if let Err(b) = lane.budget.check(*lane.charged, *lane.lane_wall) {
            return Err(RungFault::Budget(b));
        }
        let t0 = lane.track_wall.then(Instant::now);
        let u = sc.stim.value(k as f64 * dt);
        inputs.iter_mut().for_each(|v| *v = u);
        let stepped = inst.try_step(&inputs);
        if let Some(t0) = t0 {
            *lane.lane_wall += t0.elapsed().as_secs_f64();
        }
        stepped.map_err(RungFault::Error)?;
        waveform.push(inst.output(0));
    }
    // A resumed run's per-run counter starts at zero (fresh instance);
    // the snapshot's watermark restores the path-cumulative total the
    // flat run would report.
    let newton_iters = match rung {
        RecoveryRung::Resume => {
            let (snap, _) = lane.snap.as_ref().expect("checked above");
            snap.newton_iterations() + inst.newton_iterations()
        }
        _ => inst.newton_iterations(),
    };
    inst.flush_counters();
    Ok(AmsRun {
        name: sc.name.clone(),
        waveform,
        newton_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_is_pure_and_seed_sensitive() {
        let plan = FaultPlan::new().seeded(42, 8);
        let a: Vec<Option<FaultSpec>> = (0..256).map(|i| plan.fault_for(i, 100)).collect();
        let b: Vec<Option<FaultSpec>> = (0..256).map(|i| plan.fault_for(i, 100)).collect();
        assert_eq!(a, b, "fault_for is a pure function of (plan, index)");
        let hits = a.iter().flatten().count();
        assert!(
            hits > 8 && hits < 96,
            "period 8 over 256 scenarios should fault a deterministic minority, got {hits}"
        );
        for spec in a.iter().flatten() {
            assert!(spec.step < 100, "seeded steps land inside the scenario");
        }
        let other = FaultPlan::new().seeded(43, 8);
        let c: Vec<Option<FaultSpec>> = (0..256).map(|i| other.fault_for(i, 100)).collect();
        assert_ne!(a, c, "different seeds pick different victims");
    }

    #[test]
    fn targeted_faults_override_the_seeded_layer() {
        let spec = FaultSpec {
            kind: FaultKind::StimulusStall { millis: 5 },
            step: 3,
        };
        let plan = FaultPlan::new().seeded(7, 2).target(11, spec);
        assert_eq!(plan.fault_for(11, 100), Some(spec));
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert!(
            FaultPlan::new().seeded(1, 0).is_empty(),
            "period 0 disables the seeded layer"
        );
    }
}
