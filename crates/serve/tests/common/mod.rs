//! A minimal blocking HTTP client for exercising the serve daemon over
//! real sockets in tests: just enough request writing and
//! chunked-response decoding to read back a job stream.

// Each test binary compiles this module separately and uses a different
// subset of it.
#![allow(dead_code)]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded HTTP response.
pub struct Response {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    /// Chunk-decoded (or plain) body bytes.
    pub body: String,
}

impl Response {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body split into JSON-lines records.
    pub fn records(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

/// POSTs `body` to `path` on a one-shot connection and reads the full
/// response (panics on transport or framing errors — tests want loud
/// failures).
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        s,
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    read_response(&mut s)
}

/// GETs `path` on a one-shot connection.
pub fn get(addr: SocketAddr, path: &str) -> Response {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    read_response(&mut s)
}

/// Reads one response from an already-written connection.
pub fn read_response(s: &mut TcpStream) -> Response {
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read response");
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Response {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    let head = std::str::from_utf8(&raw[..head_end]).expect("UTF-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.to_string(), v.trim().to_string()))
        .collect();
    let mut body_bytes = &raw[head_end + 4..];
    let chunked = headers
        .iter()
        .any(|(n, v)| n.eq_ignore_ascii_case("transfer-encoding") && v == "chunked");
    let body = if chunked {
        let mut out = Vec::new();
        loop {
            let line_end = body_bytes
                .windows(2)
                .position(|w| w == b"\r\n")
                .expect("chunk size line");
            let size = usize::from_str_radix(
                std::str::from_utf8(&body_bytes[..line_end]).expect("chunk size UTF-8"),
                16,
            )
            .expect("hex chunk size");
            body_bytes = &body_bytes[line_end + 2..];
            if size == 0 {
                break;
            }
            out.extend_from_slice(&body_bytes[..size]);
            assert_eq!(&body_bytes[size..size + 2], b"\r\n", "chunk trailer");
            body_bytes = &body_bytes[size + 2..];
        }
        out
    } else {
        body_bytes.to_vec()
    };
    Response {
        status,
        headers,
        body: String::from_utf8(body).expect("UTF-8 body"),
    }
}
