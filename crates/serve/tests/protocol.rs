//! Protocol hardening: the hand-rolled HTTP/JSON surface against
//! malformed, truncated, and adversarial input over real sockets.
//! Invariant under test: hostile bytes yield a typed 4xx (or a clean
//! close when no response is possible) — never a panic, never a 5xx,
//! never a hung worker. After every battery the same server instance
//! must still answer `/v1/health` and drain cleanly.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use amsvp_core::circuits::{rc_ladder, XorShift64};
use amsvp_serve::http::Limits;
use amsvp_serve::json::JsonBuf;
use amsvp_serve::{ServeConfig, Server};

fn test_server() -> Server {
    Server::start(ServeConfig {
        limits: Limits {
            max_header_bytes: 2048,
            max_body_bytes: 4096,
        },
        read_timeout: Some(Duration::from_millis(250)),
        ..ServeConfig::default()
    })
    .expect("server starts")
}

/// Sends raw bytes, optionally half-closing early, and returns whatever
/// the server answered (empty on immediate close).
fn send_raw(server: &Server, bytes: &[u8]) -> Vec<u8> {
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = s.write_all(bytes);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

fn status_of(response: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(response).ok()?;
    text.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()
}

#[test]
fn malformed_requests_get_typed_4xx() {
    let server = test_server();
    let cases: &[(&[u8], u16)] = &[
        (b"GARBAGE\r\n\r\n", 400),
        (b"GET / HTTP/2.0\r\n\r\n", 400),
        (b"GET / HTTP/1.1\r\nNoColon\r\n\r\n", 400),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: zebra\r\n\r\n",
            400,
        ),
        (
            b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
            400,
        ),
        (b"\xff\xfe\xfd / HTTP/1.1\r\n\r\n", 400),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 9999\r\n\r\n",
            413,
        ),
        (b"GET /nowhere HTTP/1.1\r\n\r\n", 404),
        // Body present but not JSON, or JSON but not a job.
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 3\r\n\r\n}{(",
            400,
        ),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
            400,
        ),
        (
            b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n\"\xf0\x28\"",
            400,
        ),
    ];
    for (bytes, want) in cases {
        let resp = send_raw(&server, bytes);
        assert_eq!(
            status_of(&resp),
            Some(*want),
            "wrong status for request {:?}",
            String::from_utf8_lossy(bytes)
        );
    }
    // Oversized header block: 431.
    let mut big = b"GET /v1/health HTTP/1.1\r\nX-Pad: ".to_vec();
    big.extend(std::iter::repeat_n(b'a', 4096));
    big.extend(b"\r\n\r\n");
    assert_eq!(status_of(&send_raw(&server, &big)), Some(431));

    assert_eq!(common::get(server.local_addr(), "/v1/health").status, 200);
    server.shutdown_within(Duration::from_secs(10));
}

#[test]
fn truncated_requests_never_hang_a_worker() {
    let server = test_server();
    for bytes in [
        b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"mod".as_slice(),
        b"GET /v1/health HTTP/1.1\r\nHos",
        b"P",
        b"",
    ] {
        // Half-close after the truncated prefix: the server sees EOF
        // mid-request and must drop the connection without panicking.
        let resp = send_raw(&server, bytes);
        if let Some(status) = status_of(&resp) {
            assert!((400..500).contains(&status), "got {status}");
        }
    }
    // A stalled connection (bytes withheld, socket left open) trips the
    // read timeout as a 408 instead of pinning the worker forever.
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.write_all(b"GET /v1/health HT").unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    assert_eq!(status_of(&out), Some(408));

    assert_eq!(common::get(server.local_addr(), "/v1/health").status, 200);
    server.shutdown_within(Duration::from_secs(10));
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = test_server();
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(
        b"GET /v1/health HTTP/1.1\r\nHost: t\r\n\r\n\
          GET /v1/stats HTTP/1.1\r\nHost: t\r\n\r\n\
          GET /v1/health HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    )
    .unwrap();
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("responses");
    let text = String::from_utf8(raw).expect("UTF-8 responses");
    let statuses: Vec<&str> = text.matches("HTTP/1.1 200 OK").collect();
    assert_eq!(statuses.len(), 3, "three pipelined responses: {text}");
    assert!(text.contains("\"status\":\"ok\""));
    assert!(text.contains("counters"), "stats response present");
    server.shutdown_within(Duration::from_secs(10));
}

#[test]
fn disconnect_mid_stream_is_absorbed() {
    // Default limits: the 48-scenario submission is a legitimate job,
    // only the client's half of the exchange is hostile here.
    let server = Server::start(ServeConfig {
        read_timeout: Some(Duration::from_millis(250)),
        ..ServeConfig::default()
    })
    .expect("server starts");
    // A job big enough that the stream outlives the client: read a few
    // bytes of the response, then vanish.
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("module", &rc_ladder(1))
        .f64_field("dt", 1e-6)
        .str_field("output", "V(out)");
    b.begin_arr("scenarios");
    for i in 0..48u64 {
        b.begin_obj()
            .str_field("name", &format!("s{i}"))
            .u64_field("steps", 400)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "pwc")
            .u64_field("seed", i + 1)
            .u64_field("segments", 4)
            .f64_field("hold", 1e-4)
            .f64_field("lo", 0.0)
            .f64_field("hi", 1.0)
            .end_obj();
        b.end_obj();
    }
    b.end_arr();
    b.end_obj();
    let body = b.into_string();
    {
        let mut s = TcpStream::connect(server.local_addr()).expect("connect");
        write!(
            s,
            "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut first = [0u8; 64];
        s.read_exact(&mut first).expect("stream began");
        assert!(first.starts_with(b"HTTP/1.1 200 OK"));
        // Drop: client gone mid-stream.
    }
    // The job still completes and is accounted; the worker is released.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = common::get(server.local_addr(), "/v1/stats");
        assert_eq!(stats.status, 200);
        if stats.body.contains("\"serve.jobs.completed\": 1")
            || stats.body.contains("\"serve.jobs.completed\":1")
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never completed after client disconnect: {}",
            stats.body
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let report = server.shutdown_within(Duration::from_secs(10));
    assert_eq!(report.counter("serve.jobs.accepted"), 1);
    assert_eq!(report.counter("serve.jobs.completed"), 1);
}

#[test]
fn hard_drain_ends_streams_with_a_typed_record() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    // A long job on one worker so the drain deadline can overtake it.
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("module", &rc_ladder(1))
        .f64_field("dt", 1e-6)
        .str_field("output", "V(out)");
    b.begin_arr("scenarios");
    for i in 0..128u64 {
        b.begin_obj()
            .str_field("name", &format!("s{i}"))
            .u64_field("steps", 1000)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "const")
            .f64_field("value", 0.5)
            .end_obj();
        b.end_obj();
    }
    b.end_arr();
    b.end_obj();
    let body = b.into_string();
    let client = std::thread::spawn(move || common::post(addr, "/v1/jobs", &body));

    // Wait for the job to be accepted, then drain with an immediate
    // hard deadline.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let stats = common::get(addr, "/v1/stats");
        if stats.body.contains("serve.jobs.accepted") {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "job never accepted");
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = server.shutdown_within(Duration::from_millis(1));

    // The client still gets a well-formed chunked stream (the decoder in
    // `common` asserts the framing) that ends in a typed record — either
    // the drain marker or, if the sweep outran the deadline, job.done.
    let resp = client.join().expect("client thread");
    assert_eq!(resp.status, 200);
    let records = resp.records();
    let last = amsvp_serve::json::parse(records.last().expect("at least one record"))
        .expect("last record parses");
    let kind = last.get("type").unwrap().as_str().unwrap();
    assert!(
        kind == "server.draining" || kind == "job.done",
        "stream must end in a typed record, got {kind}"
    );
    // Hard drain never abandons the in-flight job's accounting.
    assert_eq!(report.counter("serve.jobs.accepted"), 1);
    assert_eq!(report.counter("serve.jobs.completed"), 1);
}

/// Seeded fuzz: random mutations of a valid submission (byte flips,
/// truncations, appended garbage) plus outright random bytes. Every
/// exchange must end in a 4xx, a clean close, or — for the rare mutant
/// that stays well-formed — a legitimate 2xx stream; never a 5xx and
/// never a stuck connection.
#[test]
fn fuzzed_requests_never_break_the_server() {
    let server = test_server();
    let mut valid_body = JsonBuf::new();
    valid_body
        .begin_obj()
        .str_field("module", &rc_ladder(1))
        .f64_field("dt", 1e-6)
        .str_field("output", "V(out)");
    valid_body.begin_arr("scenarios");
    valid_body
        .begin_obj()
        .str_field("name", "s0")
        .u64_field("steps", 10)
        .key("stim");
    valid_body
        .begin_obj()
        .str_field("kind", "const")
        .f64_field("value", 0.5)
        .end_obj();
    valid_body.end_obj();
    valid_body.end_arr();
    valid_body.end_obj();
    let body = valid_body.into_string();
    let template = format!(
        "POST /v1/jobs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let template = template.as_bytes();

    let mut rng = XorShift64::new(0xF00D);
    for round in 0..300 {
        let mut bytes = template.to_vec();
        match rng.next_u64() % 4 {
            // Truncate somewhere.
            0 => bytes.truncate((rng.next_u64() as usize) % bytes.len()),
            // Flip a handful of bytes.
            1 => {
                for _ in 0..1 + rng.next_u64() % 8 {
                    let i = (rng.next_u64() as usize) % bytes.len();
                    bytes[i] = (rng.next_u64() & 0xff) as u8;
                }
            }
            // Random garbage of random length.
            2 => {
                let len = (rng.next_u64() as usize) % 512;
                bytes = (0..len).map(|_| (rng.next_u64() & 0xff) as u8).collect();
            }
            // Valid request with trailing garbage pipelined behind it.
            _ => {
                let len = (rng.next_u64() as usize) % 64;
                bytes.extend((0..len).map(|_| (rng.next_u64() & 0xff) as u8));
            }
        }
        let resp = send_raw(&server, &bytes);
        if let Some(status) = status_of(&resp) {
            assert!(
                status < 500,
                "round {round}: server answered {status} to {:?}",
                String::from_utf8_lossy(&bytes)
            );
        }
    }

    // The server survived the battery: still healthy, still serving.
    assert_eq!(common::get(server.local_addr(), "/v1/health").status, 200);
    let report = server.shutdown_within(Duration::from_secs(10));
    assert_eq!(
        report.counter("serve.jobs.completed") + report.counter("serve.jobs.failed"),
        report.counter("serve.jobs.accepted"),
        "every accepted job must resolve"
    );
}
