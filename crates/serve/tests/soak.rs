//! Release-gated soak battery: thousands of jobs from dozens of client
//! threads against one in-process server, with a deliberately nasty
//! mix — three interleaved model variants churning a 2-entry cache,
//! injected stimulus panics, budget-tripping scenarios, and a job cap
//! low enough that clients constantly bounce off 429s.
//!
//! What must hold at the end:
//!
//! - every submission eventually lands (429 is backpressure, not loss),
//! - every accepted job streams its scenario records exactly once, in
//!   index order, with tallies matching its composition,
//! - the `serve.*` / `jobs.sweep.*` counters conserve: accepted =
//!   completed, rejections equal client-observed 429s, stream records
//!   and scenario totals match what clients read, cache hits + misses =
//!   accepted with evictions = misses − capacity,
//! - shutdown after the storm is a clean drain.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amsvp_core::circuits::rc_ladder;
use amsvp_serve::json::{self, JsonBuf};
use amsvp_serve::{ServeConfig, Server};

const CLIENTS: usize = 16;
const JOBS_PER_CLIENT: usize = 80;
const CACHE_CAPACITY: usize = 2;
const BUDGET_STEPS: u64 = 25;
const BASE_STEPS: u64 = 20;

struct JobShape {
    body: String,
    scenarios: u64,
    ok: u64,
    panicked: u64,
    budget: u64,
}

/// Builds job `k` of a client: dt rotates over three values (three cache
/// keys against a two-slot cache), every 3rd job carries a
/// budget-tripping scenario and every 8th an injected panic.
fn job_shape(module: &str, k: usize) -> JobShape {
    let dt = [1e-6, 2e-6, 4e-6][k % 3];
    let with_budget_trip = k.is_multiple_of(3);
    let with_panic = k.is_multiple_of(8);
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("module", module)
        .f64_field("dt", dt)
        .str_field("output", "V(out)");
    b.key("budget");
    b.begin_obj().u64_field("max_steps", BUDGET_STEPS).end_obj();
    b.begin_arr("scenarios");
    let mut scenarios = 0u64;
    for i in 0..3u64 {
        b.begin_obj()
            .str_field("name", &format!("a{i}"))
            .u64_field("steps", BASE_STEPS)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "pwc")
            .u64_field("seed", k as u64 * 31 + i + 1)
            .u64_field("segments", 4)
            .f64_field("hold", 5e-6)
            .f64_field("lo", 0.0)
            .f64_field("hi", 1.0)
            .end_obj();
        b.end_obj();
        scenarios += 1;
    }
    if with_budget_trip {
        b.begin_obj()
            .str_field("name", "greedy")
            .u64_field("steps", BUDGET_STEPS + 25)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "const")
            .f64_field("value", 0.5)
            .end_obj();
        b.end_obj();
        scenarios += 1;
    }
    if with_panic {
        b.begin_obj()
            .str_field("name", "hostile")
            .u64_field("steps", BASE_STEPS)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "panic_at")
            .u64_field("step", 3)
            .end_obj();
        b.end_obj();
        scenarios += 1;
    }
    b.end_arr();
    b.end_obj();
    JobShape {
        body: b.into_string(),
        scenarios,
        ok: 3,
        panicked: with_panic as u64,
        budget: with_budget_trip as u64,
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak battery is release-gated: run with `cargo test --release -p amsvp-serve --test soak`"
)]
fn soak_thousands_of_jobs_conserve_every_record() {
    let server = Server::start(ServeConfig {
        workers: 4,
        lane_width: 4,
        max_jobs: 3,
        cache_models: CACHE_CAPACITY,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let module = Arc::new(rc_ladder(1));

    let rejected = Arc::new(AtomicU64::new(0));
    let exp_scenarios = Arc::new(AtomicU64::new(0));
    let exp_ok = Arc::new(AtomicU64::new(0));
    let exp_panicked = Arc::new(AtomicU64::new(0));
    let exp_budget = Arc::new(AtomicU64::new(0));

    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let module = Arc::clone(&module);
            let rejected = Arc::clone(&rejected);
            let exp_scenarios = Arc::clone(&exp_scenarios);
            let exp_ok = Arc::clone(&exp_ok);
            let exp_panicked = Arc::clone(&exp_panicked);
            let exp_budget = Arc::clone(&exp_budget);
            std::thread::spawn(move || {
                for k in 0..JOBS_PER_CLIENT {
                    let shape = job_shape(&module, c * JOBS_PER_CLIENT + k);
                    // Bounce off 429 backpressure until a slot frees up.
                    let resp = loop {
                        let resp = common::post(addr, "/v1/jobs", &shape.body);
                        if resp.status == 429 {
                            assert!(
                                resp.header("Retry-After").is_some(),
                                "429 must advise when to retry"
                            );
                            rejected.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(500));
                            continue;
                        }
                        break resp;
                    };
                    assert_eq!(resp.status, 200, "job rejected: {}", resp.body);
                    verify_stream(&resp.body, &shape);
                    exp_scenarios.fetch_add(shape.scenarios, Ordering::Relaxed);
                    exp_ok.fetch_add(shape.ok, Ordering::Relaxed);
                    exp_panicked.fetch_add(shape.panicked, Ordering::Relaxed);
                    exp_budget.fetch_add(shape.budget, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let total_jobs = (CLIENTS * JOBS_PER_CLIENT) as u64;
    let report = server.shutdown();

    // Job conservation: everything submitted was eventually accepted and
    // completed; rejections match what clients saw.
    assert_eq!(report.counter("serve.jobs.accepted"), total_jobs);
    assert_eq!(report.counter("serve.jobs.completed"), total_jobs);
    assert_eq!(report.counter("serve.jobs.failed"), 0);
    assert_eq!(
        report.counter("serve.jobs.rejected"),
        rejected.load(Ordering::Relaxed)
    );

    // Stream conservation: each job emitted job.accepted + one record
    // per scenario + job.report + job.done, and nothing else.
    assert_eq!(
        report.counter("serve.stream.records"),
        exp_scenarios.load(Ordering::Relaxed) + 3 * total_jobs
    );

    // Cache conservation: one lookup per job; every miss inserted, and
    // with the cache forever full past warmup, evictions lag misses by
    // exactly the capacity.
    let hits = report.counter("serve.cache.hits");
    let misses = report.counter("serve.cache.misses");
    assert_eq!(hits + misses, total_jobs);
    assert!(misses >= 3, "three dt variants cannot fit {misses} misses");
    assert_eq!(
        report.counter("serve.cache.evictions"),
        misses - CACHE_CAPACITY as u64
    );

    // Sweep conservation under the `jobs.` prefix: per-scenario verdicts
    // summed over every job match the client-side composition.
    assert_eq!(
        report.counter("jobs.sweep.scenarios"),
        exp_scenarios.load(Ordering::Relaxed)
    );
    assert_eq!(
        report.counter("jobs.sweep.scenarios.ok"),
        exp_ok.load(Ordering::Relaxed)
    );
    assert_eq!(
        report.counter("jobs.sweep.scenarios.panicked"),
        exp_panicked.load(Ordering::Relaxed)
    );
    assert_eq!(
        report.counter("jobs.sweep.scenarios.budget"),
        exp_budget.load(Ordering::Relaxed)
    );
    assert_eq!(report.counter("jobs.sweep.scenarios.failed"), 0);

    // Every completed job left one wall-time observation.
    let job_timer = report.timers.get("serve.job").expect("serve.job histogram");
    assert_eq!(job_timer.count, total_jobs);
}

/// Chaos variant of the battery (ISSUE 9): the same 16-thread job mix,
/// but every job runs under an active `FaultPlan` — injected residual
/// NaNs and singular refactorizations that the recovery ladder must
/// absorb, watchdog-killed stalls, and mid-stream socket resets. The
/// conservation contract tightens to accepted = completed +
/// watchdog-killed, every readable stream stays record-for-record in
/// index order, and shutdown still drains cleanly (no hung workers).
#[cfg(feature = "fault-inject")]
mod chaos {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    const CLIENTS: usize = 16;
    const JOBS_PER_CLIENT: usize = 5;
    const STEPS: u64 = 16;
    /// `k % JOBS_PER_CLIENT` slots: this one stalls + gets watchdogged.
    const WATCHDOG_SLOT: usize = 4;
    /// This one has its response socket reset mid-stream.
    const RESET_SLOT: usize = 2;

    /// A fault-carrying job: four healthy pwc scenarios with two
    /// injected solver faults — one past the first checkpoint (resume
    /// rung) and one before it (restart rung) — or, in the watchdog
    /// slot, a stalled stimulus under a much shorter deadline.
    fn chaos_job(module: &str, k: usize) -> String {
        let watchdog = k % JOBS_PER_CLIENT == WATCHDOG_SLOT;
        let mut b = JsonBuf::new();
        b.begin_obj()
            .str_field("module", module)
            .f64_field("dt", 1e-6)
            .str_field("output", "V(out)");
        b.key("recovery");
        b.begin_obj().u64_field("snapshot_every", 4).end_obj();
        b.begin_arr("faults");
        if watchdog {
            b.begin_obj()
                .str_field("kind", "stimulus_stall")
                .u64_field("index", 2)
                .u64_field("step", 2)
                .u64_field("millis", 500)
                .end_obj();
        } else {
            b.begin_obj()
                .str_field("kind", "residual_nan")
                .u64_field("index", 1)
                .u64_field("step", 10)
                .end_obj();
            b.begin_obj()
                .str_field("kind", "refactor_singular")
                .u64_field("index", 2)
                .u64_field("step", 1)
                .end_obj();
        }
        b.end_arr();
        if watchdog {
            b.f64_field("watchdog_secs", 0.1);
        }
        b.begin_arr("scenarios");
        for i in 0..4u64 {
            b.begin_obj()
                .str_field("name", &format!("c{i}"))
                .u64_field("steps", STEPS)
                .key("stim");
            b.begin_obj()
                .str_field("kind", "pwc")
                .u64_field("seed", k as u64 * 37 + i + 1)
                .u64_field("segments", 4)
                .f64_field("hold", 5e-6)
                .f64_field("lo", 0.0)
                .f64_field("hi", 1.0)
                .end_obj();
            b.end_obj();
        }
        b.end_arr();
        b.end_obj();
        b.into_string()
    }

    /// Best-effort POST that survives an injected mid-stream reset:
    /// returns the status (if the head arrived) and the raw body bytes.
    fn lossy_post(
        addr: std::net::SocketAddr,
        body: &str,
        fault_header: Option<&str>,
    ) -> (Option<u16>, Vec<u8>) {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let fault = fault_header.map_or(String::new(), |f| format!("X-Fault: {f}\r\n"));
        write!(
            s,
            "POST /v1/jobs HTTP/1.1\r\nHost: test\r\n{fault}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut raw = Vec::new();
        let _ = s.read_to_end(&mut raw); // reset mid-read is expected
        let status = raw
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .and_then(|head_end| {
                std::str::from_utf8(&raw[..head_end])
                    .ok()?
                    .split(' ')
                    .nth(1)?
                    .parse()
                    .ok()
            });
        (status, raw)
    }

    #[test]
    fn chaos_mix_conserves_jobs_and_stream_order() {
        let server = Server::start(ServeConfig {
            workers: 2,
            lane_width: 4,
            max_jobs: 4,
            cache_models: CACHE_CAPACITY,
            ..ServeConfig::default()
        })
        .expect("server starts");
        let addr = server.local_addr();
        let module = Arc::new(rc_ladder(1));

        let threads: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let module = Arc::clone(&module);
                std::thread::spawn(move || {
                    for k in 0..JOBS_PER_CLIENT {
                        let body = chaos_job(&module, c * JOBS_PER_CLIENT + k);
                        let slot = k % JOBS_PER_CLIENT;
                        let fault = (slot == RESET_SLOT).then_some("reset_after:400");
                        // Bounce off 429 backpressure until a slot frees.
                        let (status, raw) = loop {
                            let got = lossy_post(addr, &body, fault);
                            if got.0 == Some(429) {
                                std::thread::sleep(Duration::from_micros(500));
                                continue;
                            }
                            break got;
                        };
                        if slot == RESET_SLOT {
                            // The reset may land anywhere — even before
                            // the head — so only liveness is asserted:
                            // the server answered and moved on.
                            continue;
                        }
                        assert_eq!(status, Some(200), "job rejected");
                        verify_chaos_stream(&raw, slot == WATCHDOG_SLOT);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("client thread");
        }

        let total = (CLIENTS * JOBS_PER_CLIENT) as u64;
        let watchdogged = (CLIENTS * JOBS_PER_CLIENT / JOBS_PER_CLIENT) as u64;
        // `shutdown` returning at all is the no-hung-workers assertion:
        // it joins every connection and worker thread.
        let report = server.shutdown();

        // Conservation: every accepted job lands in exactly one bucket,
        // and the watchdog killed exactly the stalled slots.
        assert_eq!(report.counter("serve.jobs.accepted"), total);
        assert_eq!(report.counter("serve.jobs.watchdog"), watchdogged);
        assert_eq!(
            report.counter("serve.jobs.completed"),
            total - watchdogged,
            "accepted = completed + watchdog-killed"
        );
        assert_eq!(report.counter("serve.jobs.failed"), 0);

        // Every non-watchdog job recovered one lane per rung; the
        // injected-fault tallies match the plan exactly.
        let faulted = total - watchdogged;
        assert_eq!(report.counter("jobs.recovery.recovered.resume"), faulted);
        assert_eq!(report.counter("jobs.recovery.recovered.restart"), faulted);
        assert_eq!(report.counter("jobs.recovery.gave_up"), 0);
        assert_eq!(report.counter("jobs.fault.injected.residual_nan"), faulted);
        assert_eq!(
            report.counter("jobs.fault.injected.refactor_singular"),
            faulted
        );
        assert_eq!(
            report.counter("jobs.fault.injected.stimulus_stall"),
            watchdogged
        );
        assert_eq!(
            report.counter("jobs.sweep.scenarios.recovered"),
            2 * faulted
        );
    }

    /// One intact chaos stream: chunk-decodes, records arrive in index
    /// order, recoveries land where injected, and the terminal record
    /// matches the job's fate.
    fn verify_chaos_stream(raw: &[u8], watchdogged: bool) {
        let text = String::from_utf8(raw.to_vec()).expect("UTF-8 response");
        let body_start = text.find("\r\n\r\n").expect("head terminator") + 4;
        // Chunk-decode: strip size lines, keep payload lines.
        let mut body = String::new();
        let mut rest = &text[body_start..];
        loop {
            let (size_line, after) = rest.split_once("\r\n").expect("chunk size line");
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            if size == 0 {
                break;
            }
            body.push_str(&after[..size]);
            rest = &after[size + 2..];
        }
        let records: Vec<_> = body
            .lines()
            .filter(|l| !l.is_empty())
            .map(|l| json::parse(l).expect("record parses"))
            .collect();
        assert_eq!(
            records[0].get("type").unwrap().as_str(),
            Some("job.accepted")
        );
        for (i, rec) in records[1..=4].iter().enumerate() {
            assert_eq!(rec.get("type").unwrap().as_str(), Some("scenario"));
            assert_eq!(
                rec.get("index").unwrap().as_u64(),
                Some(i as u64),
                "scenario records must arrive exactly once, in index order"
            );
            let status = rec.get("status").unwrap().as_str().unwrap();
            if watchdogged {
                assert!(
                    status == "ok" || status == "budget",
                    "watchdogged job scenarios are completed or killed, got {status}"
                );
            } else {
                let want = match i {
                    1 | 2 => "recovered",
                    _ => "ok",
                };
                assert_eq!(status, want, "scenario {i}");
            }
        }
        let last = records.last().unwrap().get("type").unwrap();
        if watchdogged {
            assert_eq!(last.as_str(), Some("job.watchdog"));
        } else {
            assert_eq!(last.as_str(), Some("job.done"));
            let recovered_rec = records
                .iter()
                .find(|r| r.get("type").unwrap().as_str() == Some("job.recovered"))
                .expect("recovering job with rescues emits job.recovered");
            assert_eq!(recovered_rec.get("resume").unwrap().as_u64(), Some(1));
            assert_eq!(recovered_rec.get("restart").unwrap().as_u64(), Some(1));
            assert_eq!(recovered_rec.get("backend").unwrap().as_u64(), Some(0));
        }
    }
}

/// Checks one job's stream: records parse, scenario indices cover
/// `0..n` exactly once in order, and the tallies match the composition.
fn verify_stream(body: &str, shape: &JobShape) {
    let records: Vec<_> = body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| json::parse(l).expect("record parses"))
        .collect();
    assert_eq!(records.len() as u64, shape.scenarios + 3);
    assert_eq!(
        records[0].get("type").unwrap().as_str(),
        Some("job.accepted")
    );
    let mut tallies = [0u64; 3];
    for (i, rec) in records[1..=shape.scenarios as usize].iter().enumerate() {
        assert_eq!(rec.get("type").unwrap().as_str(), Some("scenario"));
        assert_eq!(
            rec.get("index").unwrap().as_u64(),
            Some(i as u64),
            "scenario records must arrive exactly once, in index order"
        );
        match rec.get("status").unwrap().as_str().unwrap() {
            "ok" => tallies[0] += 1,
            "panicked" => tallies[1] += 1,
            "budget" => tallies[2] += 1,
            other => panic!("unexpected scenario status {other}"),
        }
    }
    assert_eq!(tallies, [shape.ok, shape.panicked, shape.budget]);
    let done = records.last().unwrap();
    assert_eq!(done.get("type").unwrap().as_str(), Some("job.done"));
    assert_eq!(done.get("ok").unwrap().as_u64(), Some(shape.ok));
    assert_eq!(done.get("panicked").unwrap().as_u64(), Some(shape.panicked));
    assert_eq!(done.get("budget").unwrap().as_u64(), Some(shape.budget));
    assert_eq!(done.get("failed").unwrap().as_u64(), Some(0));
}
