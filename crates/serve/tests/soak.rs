//! Release-gated soak battery: thousands of jobs from dozens of client
//! threads against one in-process server, with a deliberately nasty
//! mix — three interleaved model variants churning a 2-entry cache,
//! injected stimulus panics, budget-tripping scenarios, and a job cap
//! low enough that clients constantly bounce off 429s.
//!
//! What must hold at the end:
//!
//! - every submission eventually lands (429 is backpressure, not loss),
//! - every accepted job streams its scenario records exactly once, in
//!   index order, with tallies matching its composition,
//! - the `serve.*` / `jobs.sweep.*` counters conserve: accepted =
//!   completed, rejections equal client-observed 429s, stream records
//!   and scenario totals match what clients read, cache hits + misses =
//!   accepted with evictions = misses − capacity,
//! - shutdown after the storm is a clean drain.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amsvp_core::circuits::rc_ladder;
use amsvp_serve::json::{self, JsonBuf};
use amsvp_serve::{ServeConfig, Server};

const CLIENTS: usize = 16;
const JOBS_PER_CLIENT: usize = 80;
const CACHE_CAPACITY: usize = 2;
const BUDGET_STEPS: u64 = 25;
const BASE_STEPS: u64 = 20;

struct JobShape {
    body: String,
    scenarios: u64,
    ok: u64,
    panicked: u64,
    budget: u64,
}

/// Builds job `k` of a client: dt rotates over three values (three cache
/// keys against a two-slot cache), every 3rd job carries a
/// budget-tripping scenario and every 8th an injected panic.
fn job_shape(module: &str, k: usize) -> JobShape {
    let dt = [1e-6, 2e-6, 4e-6][k % 3];
    let with_budget_trip = k.is_multiple_of(3);
    let with_panic = k.is_multiple_of(8);
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("module", module)
        .f64_field("dt", dt)
        .str_field("output", "V(out)");
    b.key("budget");
    b.begin_obj().u64_field("max_steps", BUDGET_STEPS).end_obj();
    b.begin_arr("scenarios");
    let mut scenarios = 0u64;
    for i in 0..3u64 {
        b.begin_obj()
            .str_field("name", &format!("a{i}"))
            .u64_field("steps", BASE_STEPS)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "pwc")
            .u64_field("seed", k as u64 * 31 + i + 1)
            .u64_field("segments", 4)
            .f64_field("hold", 5e-6)
            .f64_field("lo", 0.0)
            .f64_field("hi", 1.0)
            .end_obj();
        b.end_obj();
        scenarios += 1;
    }
    if with_budget_trip {
        b.begin_obj()
            .str_field("name", "greedy")
            .u64_field("steps", BUDGET_STEPS + 25)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "const")
            .f64_field("value", 0.5)
            .end_obj();
        b.end_obj();
        scenarios += 1;
    }
    if with_panic {
        b.begin_obj()
            .str_field("name", "hostile")
            .u64_field("steps", BASE_STEPS)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "panic_at")
            .u64_field("step", 3)
            .end_obj();
        b.end_obj();
        scenarios += 1;
    }
    b.end_arr();
    b.end_obj();
    JobShape {
        body: b.into_string(),
        scenarios,
        ok: 3,
        panicked: with_panic as u64,
        budget: with_budget_trip as u64,
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "soak battery is release-gated: run with `cargo test --release -p amsvp-serve --test soak`"
)]
fn soak_thousands_of_jobs_conserve_every_record() {
    let server = Server::start(ServeConfig {
        workers: 4,
        lane_width: 4,
        max_jobs: 3,
        cache_models: CACHE_CAPACITY,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let module = Arc::new(rc_ladder(1));

    let rejected = Arc::new(AtomicU64::new(0));
    let exp_scenarios = Arc::new(AtomicU64::new(0));
    let exp_ok = Arc::new(AtomicU64::new(0));
    let exp_panicked = Arc::new(AtomicU64::new(0));
    let exp_budget = Arc::new(AtomicU64::new(0));

    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let module = Arc::clone(&module);
            let rejected = Arc::clone(&rejected);
            let exp_scenarios = Arc::clone(&exp_scenarios);
            let exp_ok = Arc::clone(&exp_ok);
            let exp_panicked = Arc::clone(&exp_panicked);
            let exp_budget = Arc::clone(&exp_budget);
            std::thread::spawn(move || {
                for k in 0..JOBS_PER_CLIENT {
                    let shape = job_shape(&module, c * JOBS_PER_CLIENT + k);
                    // Bounce off 429 backpressure until a slot frees up.
                    let resp = loop {
                        let resp = common::post(addr, "/v1/jobs", &shape.body);
                        if resp.status == 429 {
                            assert!(
                                resp.header("Retry-After").is_some(),
                                "429 must advise when to retry"
                            );
                            rejected.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_micros(500));
                            continue;
                        }
                        break resp;
                    };
                    assert_eq!(resp.status, 200, "job rejected: {}", resp.body);
                    verify_stream(&resp.body, &shape);
                    exp_scenarios.fetch_add(shape.scenarios, Ordering::Relaxed);
                    exp_ok.fetch_add(shape.ok, Ordering::Relaxed);
                    exp_panicked.fetch_add(shape.panicked, Ordering::Relaxed);
                    exp_budget.fetch_add(shape.budget, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let total_jobs = (CLIENTS * JOBS_PER_CLIENT) as u64;
    let report = server.shutdown();

    // Job conservation: everything submitted was eventually accepted and
    // completed; rejections match what clients saw.
    assert_eq!(report.counter("serve.jobs.accepted"), total_jobs);
    assert_eq!(report.counter("serve.jobs.completed"), total_jobs);
    assert_eq!(report.counter("serve.jobs.failed"), 0);
    assert_eq!(
        report.counter("serve.jobs.rejected"),
        rejected.load(Ordering::Relaxed)
    );

    // Stream conservation: each job emitted job.accepted + one record
    // per scenario + job.report + job.done, and nothing else.
    assert_eq!(
        report.counter("serve.stream.records"),
        exp_scenarios.load(Ordering::Relaxed) + 3 * total_jobs
    );

    // Cache conservation: one lookup per job; every miss inserted, and
    // with the cache forever full past warmup, evictions lag misses by
    // exactly the capacity.
    let hits = report.counter("serve.cache.hits");
    let misses = report.counter("serve.cache.misses");
    assert_eq!(hits + misses, total_jobs);
    assert!(misses >= 3, "three dt variants cannot fit {misses} misses");
    assert_eq!(
        report.counter("serve.cache.evictions"),
        misses - CACHE_CAPACITY as u64
    );

    // Sweep conservation under the `jobs.` prefix: per-scenario verdicts
    // summed over every job match the client-side composition.
    assert_eq!(
        report.counter("jobs.sweep.scenarios"),
        exp_scenarios.load(Ordering::Relaxed)
    );
    assert_eq!(
        report.counter("jobs.sweep.scenarios.ok"),
        exp_ok.load(Ordering::Relaxed)
    );
    assert_eq!(
        report.counter("jobs.sweep.scenarios.panicked"),
        exp_panicked.load(Ordering::Relaxed)
    );
    assert_eq!(
        report.counter("jobs.sweep.scenarios.budget"),
        exp_budget.load(Ordering::Relaxed)
    );
    assert_eq!(report.counter("jobs.sweep.scenarios.failed"), 0);

    // Every completed job left one wall-time observation.
    let job_timer = report.timers.get("serve.job").expect("serve.job histogram");
    assert_eq!(job_timer.count, total_jobs);
}

/// Checks one job's stream: records parse, scenario indices cover
/// `0..n` exactly once in order, and the tallies match the composition.
fn verify_stream(body: &str, shape: &JobShape) {
    let records: Vec<_> = body
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| json::parse(l).expect("record parses"))
        .collect();
    assert_eq!(records.len() as u64, shape.scenarios + 3);
    assert_eq!(
        records[0].get("type").unwrap().as_str(),
        Some("job.accepted")
    );
    let mut tallies = [0u64; 3];
    for (i, rec) in records[1..=shape.scenarios as usize].iter().enumerate() {
        assert_eq!(rec.get("type").unwrap().as_str(), Some("scenario"));
        assert_eq!(
            rec.get("index").unwrap().as_u64(),
            Some(i as u64),
            "scenario records must arrive exactly once, in index order"
        );
        match rec.get("status").unwrap().as_str().unwrap() {
            "ok" => tallies[0] += 1,
            "panicked" => tallies[1] += 1,
            "budget" => tallies[2] += 1,
            other => panic!("unexpected scenario status {other}"),
        }
    }
    assert_eq!(tallies, [shape.ok, shape.panicked, shape.budget]);
    let done = records.last().unwrap();
    assert_eq!(done.get("type").unwrap().as_str(), Some("job.done"));
    assert_eq!(done.get("ok").unwrap().as_u64(), Some(shape.ok));
    assert_eq!(done.get("panicked").unwrap().as_u64(), Some(shape.panicked));
    assert_eq!(done.get("budget").unwrap().as_u64(), Some(shape.budget));
    assert_eq!(done.get("failed").unwrap().as_u64(), Some(0));
}
