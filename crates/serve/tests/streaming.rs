//! Streaming determinism: a job's byte stream is a pure function of the
//! request and the server's `lane_width` — the worker count must leave
//! no fingerprint. Pinned two ways, over the golden corpus (dense RC1
//! and sparse RC30):
//!
//! 1. the concatenated streamed records are **byte-identical** across
//!    servers with 1, 2, and 8 workers, and
//! 2. the streamed waveforms and `job.report` counters equal a local
//!    batch run of the same scenarios bit-for-bit — the network path
//!    adds transport, never drift.

mod common;

use std::sync::Arc;

use amsvp_core::circuits::{rc_ladder, PiecewiseConstant};
use amsvp_serve::json::{self, Json, JsonBuf};
use amsvp_serve::{ServeConfig, Server};
use sweep::{run_ams_sweep_batched, AmsScenario, ScenarioBudget, ScenarioOutcome, SweepEngine};

const LANE_WIDTH: usize = 4;
const STEPS: u64 = 40;
const BUDGET_STEPS: u64 = 40;

/// The job used throughout: a stimulus mix (seeded piecewise-constant,
/// square, const), one scenario that trips the step budget, and one that
/// panics mid-run — every record shape the stream can carry.
fn job_body(module: &str) -> String {
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("module", module)
        .f64_field("dt", 1e-6)
        .str_field("output", "V(out)")
        .u64_field("lane_width", LANE_WIDTH as u64);
    b.key("budget");
    b.begin_obj().u64_field("max_steps", BUDGET_STEPS).end_obj();
    b.begin_arr("scenarios");
    for i in 0..6u64 {
        b.begin_obj()
            .str_field("name", &format!("pwc{i}"))
            .u64_field("steps", STEPS)
            .key("stim");
        b.begin_obj()
            .str_field("kind", "pwc")
            .u64_field("seed", i + 1)
            .u64_field("segments", 5)
            .f64_field("hold", 5e-6)
            .f64_field("lo", 0.0)
            .f64_field("hi", 1.0)
            .end_obj();
        b.end_obj();
    }
    b.begin_obj()
        .str_field("name", "square")
        .u64_field("steps", STEPS)
        .key("stim");
    b.begin_obj()
        .str_field("kind", "square")
        .f64_field("period", 2e-5)
        .f64_field("high", 1.0)
        .f64_field("low", -0.5)
        .end_obj();
    b.end_obj();
    b.begin_obj()
        .str_field("name", "hold")
        .u64_field("steps", STEPS)
        .key("stim");
    b.begin_obj()
        .str_field("kind", "const")
        .f64_field("value", 0.75)
        .end_obj();
    b.end_obj();
    b.begin_obj()
        .str_field("name", "over-budget")
        .u64_field("steps", BUDGET_STEPS + 20)
        .key("stim");
    b.begin_obj()
        .str_field("kind", "const")
        .f64_field("value", 0.25)
        .end_obj();
    b.end_obj();
    b.begin_obj()
        .str_field("name", "hostile")
        .u64_field("steps", STEPS)
        .key("stim");
    b.begin_obj()
        .str_field("kind", "panic_at")
        .u64_field("step", 7)
        .end_obj();
    b.end_obj();
    b.end_arr();
    b.end_obj();
    b.into_string()
}

fn stream_with_workers(module: &str, workers: usize) -> String {
    let server = Server::start(ServeConfig {
        workers,
        lane_width: LANE_WIDTH,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let resp = common::post(server.local_addr(), "/v1/jobs", &job_body(module));
    assert_eq!(resp.status, 200, "job accepted: {}", resp.body);
    server.shutdown();
    resp.body
}

#[test]
fn stream_is_byte_identical_across_worker_counts() {
    for module in [rc_ladder(1), rc_ladder(30)] {
        let reference = stream_with_workers(&module, 1);
        for workers in [2usize, 8] {
            let stream = stream_with_workers(&module, workers);
            assert_eq!(
                stream, reference,
                "stream under {workers} workers diverged from the 1-worker bytes"
            );
        }
    }
}

#[test]
fn stream_matches_local_batch_run_bit_for_bit() {
    for module_src in [rc_ladder(1), rc_ladder(30)] {
        let stream = stream_with_workers(&module_src, 2);
        let records: Vec<Json> = stream
            .lines()
            .filter(|l| !l.is_empty())
            .map(|l| json::parse(l).expect("stream record parses"))
            .collect();

        // Local reference: the exact scenarios the job carries, run
        // through the batch entry point the CLI/bench path uses.
        let module = vams_parser::parse_module(&module_src).expect("module parses");
        let model: Arc<_> = amsim::Simulation::new(&module)
            .dt(1e-6)
            .output("V(out)")
            .compile()
            .expect("module compiles");
        let mut scenarios: Vec<AmsScenario> = (0..6u64)
            .map(|i| AmsScenario {
                name: format!("pwc{i}"),
                stim: Box::new(PiecewiseConstant::seeded(i + 1, 5, 5e-6, 0.0, 1.0)),
                steps: STEPS as usize,
                newton_tol: None,
                step_control: None,
            })
            .collect();
        scenarios.push(AmsScenario {
            name: "square".into(),
            stim: Box::new(amsvp_core::circuits::SquareWave {
                period: 2e-5,
                high: 1.0,
                low: -0.5,
            }),
            steps: STEPS as usize,
            newton_tol: None,
            step_control: None,
        });
        struct Const(f64);
        impl amsvp_core::circuits::Stimulus for Const {
            fn value(&self, _t: f64) -> f64 {
                self.0
            }
        }
        scenarios.push(AmsScenario {
            name: "hold".into(),
            stim: Box::new(Const(0.75)),
            steps: STEPS as usize,
            newton_tol: None,
            step_control: None,
        });
        scenarios.push(AmsScenario {
            name: "over-budget".into(),
            stim: Box::new(Const(0.25)),
            steps: (BUDGET_STEPS + 20) as usize,
            newton_tol: None,
            step_control: None,
        });
        struct PanicAt(f64);
        impl amsvp_core::circuits::Stimulus for PanicAt {
            fn value(&self, t: f64) -> f64 {
                assert!(t < self.0, "injected stimulus panic at t={t}");
                0.5
            }
        }
        scenarios.push(AmsScenario {
            name: "hostile".into(),
            stim: Box::new(PanicAt((7.0 - 0.5) * 1e-6)),
            steps: STEPS as usize,
            newton_tol: None,
            step_control: None,
        });
        let outcome = run_ams_sweep_batched(
            &SweepEngine::new().workers(2),
            &model,
            &scenarios,
            LANE_WIDTH,
            &ScenarioBudget::unlimited().max_steps(BUDGET_STEPS),
        )
        .expect("local sweep runs");

        // job.accepted leads and carries the model identity.
        assert_eq!(
            records[0].get("type").unwrap().as_str(),
            Some("job.accepted")
        );
        assert_eq!(
            records[0].get("model_hash").unwrap().as_str(),
            Some(format!("{:016x}", model.model_hash()).as_str())
        );
        assert_eq!(records[0].get("cache").unwrap().as_str(), Some("miss"));

        // One scenario record per input index, in order, matching the
        // local outcome bit for bit.
        let scenario_records: Vec<&Json> = records
            .iter()
            .filter(|r| r.get("type").unwrap().as_str() == Some("scenario"))
            .collect();
        assert_eq!(scenario_records.len(), outcome.results.len());
        for (i, (rec, local)) in scenario_records.iter().zip(&outcome.results).enumerate() {
            assert_eq!(rec.get("index").unwrap().as_u64(), Some(i as u64));
            match local {
                ScenarioOutcome::Ok(run) => {
                    assert_eq!(rec.get("status").unwrap().as_str(), Some("ok"));
                    assert_eq!(rec.get("name").unwrap().as_str(), Some(run.name.as_str()));
                    assert_eq!(
                        rec.get("newton_iters").unwrap().as_u64(),
                        Some(run.newton_iters)
                    );
                    let wave = rec.get("waveform").unwrap().as_array().unwrap();
                    assert_eq!(wave.len(), run.waveform.len());
                    for (streamed, local) in wave.iter().zip(&run.waveform) {
                        assert_eq!(
                            streamed.as_f64().unwrap().to_bits(),
                            local.to_bits(),
                            "scenario {i}: streamed float must round-trip bit-exactly"
                        );
                    }
                }
                ScenarioOutcome::Budget(b) => {
                    assert_eq!(rec.get("status").unwrap().as_str(), Some("budget"));
                    assert_eq!(rec.get("steps").unwrap().as_u64(), Some(b.steps));
                }
                ScenarioOutcome::Panicked(msg) => {
                    assert_eq!(rec.get("status").unwrap().as_str(), Some("panicked"));
                    assert_eq!(rec.get("error").unwrap().as_str(), Some(msg.as_str()));
                }
                ScenarioOutcome::Failed { error, .. } => {
                    assert_eq!(rec.get("status").unwrap().as_str(), Some("failed"));
                    assert_eq!(
                        rec.get("error").unwrap().as_str(),
                        Some(error.to_string().as_str())
                    );
                }
                ScenarioOutcome::Recovered { .. } => {
                    assert_eq!(rec.get("status").unwrap().as_str(), Some("recovered"));
                }
            }
        }

        // job.report equals the local merged report minus the
        // scheduling-dependent names (and timers, which carry wall time).
        let report_rec = records
            .iter()
            .find(|r| r.get("type").unwrap().as_str() == Some("job.report"))
            .expect("job.report record");
        let streamed = match report_rec.get("counters").unwrap() {
            Json::Obj(m) => m,
            other => panic!("counters must be an object, got {other:?}"),
        };
        let expected: Vec<(&String, &u64)> = outcome
            .report
            .counters
            .iter()
            .filter(|(k, _)| *k != "sweep.workers" && !k.starts_with("sweep.worker."))
            .collect();
        assert_eq!(streamed.len(), expected.len());
        for (k, v) in expected {
            assert_eq!(
                streamed.get(k).and_then(Json::as_u64),
                Some(*v),
                "counter {k} diverged between stream and local batch run"
            );
        }

        // job.done tallies the outcome mix: 8 ok, 1 budget, 1 panicked.
        let done = records.last().unwrap();
        assert_eq!(done.get("type").unwrap().as_str(), Some("job.done"));
        assert_eq!(done.get("ok").unwrap().as_u64(), Some(8));
        assert_eq!(done.get("budget").unwrap().as_u64(), Some(1));
        assert_eq!(done.get("panicked").unwrap().as_u64(), Some(1));
        assert_eq!(done.get("failed").unwrap().as_u64(), Some(0));
    }
}

#[test]
fn resubmitting_the_same_module_hits_the_model_cache() {
    let server = Server::start(ServeConfig::default()).expect("server starts");
    let body = job_body(&rc_ladder(1));
    let first = common::post(server.local_addr(), "/v1/jobs", &body);
    let second = common::post(server.local_addr(), "/v1/jobs", &body);
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    let first_rec = json::parse(first.records()[0]).unwrap();
    let second_rec = json::parse(second.records()[0]).unwrap();
    assert_eq!(first_rec.get("cache").unwrap().as_str(), Some("miss"));
    assert_eq!(second_rec.get("cache").unwrap().as_str(), Some("hit"));
    assert_eq!(
        first_rec.get("model_hash").unwrap().as_str(),
        second_rec.get("model_hash").unwrap().as_str()
    );
    let report = server.shutdown();
    assert_eq!(report.counter("serve.cache.misses"), 1);
    assert_eq!(report.counter("serve.cache.hits"), 1);
    assert_eq!(report.counter("serve.jobs.accepted"), 2);
    assert_eq!(report.counter("serve.jobs.completed"), 2);
}
