//! Sweep-as-a-service: a std-only job server over the compiled-model
//! sweep engine.
//!
//! [`Server`] binds a [`std::net::TcpListener`] and accepts
//! scenario-sweep jobs over a minimal hand-rolled HTTP/1.1 + JSON
//! protocol (no external crates — the container that runs the virtual
//! platform is offline, like everything else in this workspace). A job
//! submits Verilog-AMS module source plus a list of stimulus scenarios;
//! the server
//!
//! 1. compiles the module **once** into an LRU [`cache::ModelCache`]
//!    keyed by a stable request-content hash (resubmitting the same
//!    module + settings is a cache hit — no reparse, no refactorization),
//! 2. shards the scenarios through [`sweep::run_ams_sweep_batched_with`]
//!    on the work-stealing pool, and
//! 3. **streams** results back incrementally as chunked JSON-lines:
//!    one `scenario` record per scenario in input-index order, then a
//!    `job.report` counter snapshot and a `job.done` tally.
//!
//! # Stream determinism
//!
//! The byte stream of a job is a pure function of the request and the
//! server's `lane_width`: scenario records are reordered from the
//! engine's completion order back to input order, floats are written in
//! shortest round-trip form, and every scheduling-dependent value is
//! kept out of the stream (no worker ids, no `sweep.workers` /
//! `sweep.worker.*` counters, no timers, no wall-clock times). Running
//! the same job against servers with 1, 2, or 8 workers yields
//! byte-identical streams — the property `tests/streaming.rs` pins.
//!
//! # Quotas and backpressure
//!
//! Each job runs under a per-job [`ScenarioBudget`] (client-requested,
//! clamped by [`ServeConfig::max_steps_per_scenario`]). A server-wide
//! cap bounds concurrent jobs: when full, new submissions get `429` with
//! a `Retry-After` header instead of queueing unboundedly. Graceful
//! shutdown raises a drain flag — new jobs are rejected with a typed
//! `server.draining` record while in-flight jobs finish and flush; a
//! hard-drain deadline ([`Server::shutdown_within`]) truncates still-open
//! streams with the same typed record instead of dropping them mid-line.
//!
//! All server activity is observable through `serve.*` counters
//! (`serve.jobs.{accepted,rejected,completed,failed}`,
//! `serve.cache.{hits,misses,evictions}`, `serve.stream.records`, and
//! the `serve.job` wall-time histogram); per-job sweep reports are
//! additionally folded into the server report under a `jobs.` prefix via
//! [`obs::Report::merge_prefixed`].

pub mod cache;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod http;
pub mod json;

use std::collections::BTreeMap;
use std::io::{self, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use amsim::{RecoveryPolicy, SolverKind};
use amsvp_core::circuits::{PiecewiseConstant, SquareWave, Stimulus};
use cache::ModelCache;
use http::{ChunkedWriter, Limits, Request};
use json::{Json, JsonBuf};
use obs::{Obs, Report};
use sweep::{
    run_ams_sweep_batched_with, run_ams_sweep_recovering_with, AmsScenario, FaultKind, FaultPlan,
    FaultSpec, Recovery, ScenarioBudget, ScenarioOutcome, SweepEngine,
};

/// Server tuning knobs. `Default` is sized for tests and local use.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks a free port (the default, for tests).
    pub addr: String,
    /// Sweep workers per job (`0` = the engine's default).
    pub workers: usize,
    /// Lanes per batch block. Part of the stream-determinism contract:
    /// the same job on servers with equal `lane_width` streams identical
    /// bytes regardless of `workers`.
    pub lane_width: usize,
    /// Concurrent-job cap; submissions past it get `429` + `Retry-After`.
    pub max_jobs: usize,
    /// Concurrent-connection cap; connections past it get `503`.
    pub max_connections: usize,
    /// Compiled models kept in the LRU cache.
    pub cache_models: usize,
    /// Most scenarios one job may carry (`400` past it).
    pub max_scenarios: usize,
    /// Hard per-scenario step ceiling; client budgets are clamped to it.
    pub max_steps_per_scenario: u64,
    /// HTTP read caps (header/body size).
    pub limits: Limits,
    /// Socket read timeout (`408` when a request stalls past it).
    pub read_timeout: Option<Duration>,
    /// Seconds advertised in `Retry-After` on `429`.
    pub retry_after_secs: u64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            lane_width: 4,
            max_jobs: 4,
            max_connections: 256,
            cache_models: 8,
            max_scenarios: 4096,
            max_steps_per_scenario: 1_000_000,
            limits: Limits::default(),
            read_timeout: Some(Duration::from_secs(30)),
            retry_after_secs: 1,
        }
    }
}

/// A running sweep server; dropping it (or calling
/// [`shutdown`](Server::shutdown)) drains and stops it.
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

struct Shared {
    config: ServeConfig,
    local_addr: SocketAddr,
    obs: Obs,
    cache: ModelCache,
    /// Per-job sweep reports folded in under the `jobs.` prefix.
    job_reports: Mutex<Report>,
    jobs_running: AtomicUsize,
    next_job_id: AtomicU64,
    /// Reject new jobs; let in-flight ones finish.
    draining: AtomicBool,
    /// Truncate open streams at the next record boundary.
    hard_drain: AtomicBool,
    conns: Mutex<usize>,
    conns_done: Condvar,
}

impl Server {
    /// Binds `config.addr` and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ModelCache::new(config.cache_models),
            config,
            local_addr,
            obs: Obs::recording(),
            job_reports: Mutex::new(Report::default()),
            jobs_running: AtomicUsize::new(0),
            next_job_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            hard_drain: AtomicBool::new(false),
            conns: Mutex::new(0),
            conns_done: Condvar::new(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when `addr` used port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A snapshot of the server-wide report: `serve.*` counters plus
    /// every finished job's sweep report merged under the `jobs.` prefix.
    pub fn report(&self) -> Report {
        // The server obs is always a recording collector, and a poisoned
        // report lock only means some job thread panicked mid-merge —
        // both degrade to the counters gathered so far, never a panic in
        // the caller asking for stats.
        let mut r = self.shared.obs.report().unwrap_or_default();
        let jobs = self
            .shared
            .job_reports
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        r.merge_prefixed(&jobs, "jobs.");
        r
    }

    /// Graceful drain: rejects new jobs, waits for every in-flight
    /// connection to finish, then stops the accept loop.
    pub fn shutdown(mut self) -> Report {
        self.drain(None);
        self.report_after_drain()
    }

    /// Drain with a hard deadline: after `deadline`, still-open streams
    /// are truncated at the next record boundary with a typed
    /// `server.draining` record (the chunked encoding is still finished
    /// cleanly, so clients see a well-formed — if shortened — stream).
    pub fn shutdown_within(mut self, deadline: Duration) -> Report {
        self.drain(Some(deadline));
        self.report_after_drain()
    }

    fn report_after_drain(mut self) -> Report {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let r = self.report();
        // Disarm the Drop path; the listener thread is already joined.
        self.shared.draining.store(true, Ordering::SeqCst);
        r
    }

    fn drain(&mut self, deadline: Option<Duration>) {
        self.shared.draining.store(true, Ordering::SeqCst);
        // The accept loop may be parked in `accept`; poke it awake so it
        // observes the flag. A failed connect means it is already gone.
        let _ = TcpStream::connect(self.shared.local_addr);
        let start = Instant::now();
        // A poisoned connection count means a handler thread panicked
        // while holding it; the count itself stays valid (it is bumped
        // before and after the handler body), so drain proceeds on the
        // recovered guard instead of poisoning the shutdown path too.
        let mut conns = self
            .shared
            .conns
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *conns > 0 {
            match deadline {
                Some(d) => {
                    let left = d.saturating_sub(start.elapsed());
                    if left.is_zero() {
                        self.shared.hard_drain.store(true, Ordering::SeqCst);
                        // Hard drain still waits: handlers notice the flag
                        // at the next record boundary and finish quickly.
                        let (g, _) = self
                            .shared
                            .conns_done
                            .wait_timeout(conns, Duration::from_millis(50))
                            .unwrap_or_else(PoisonError::into_inner);
                        conns = g;
                    } else {
                        let (g, _) = self
                            .shared
                            .conns_done
                            .wait_timeout(conns, left)
                            .unwrap_or_else(PoisonError::into_inner);
                        conns = g;
                    }
                }
                None => {
                    conns = self
                        .shared
                        .conns_done
                        .wait(conns)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.draining.load(Ordering::SeqCst) {
            self.drain(Some(Duration::from_secs(5)));
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        {
            let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
            if *conns >= shared.config.max_connections {
                drop(conns);
                let mut s = stream;
                let _ = http::write_response(
                    &mut s,
                    503,
                    "Service Unavailable",
                    &[],
                    "{\"type\":\"server.busy\",\"error\":\"connection limit reached\"}\n",
                );
                continue;
            }
            *conns += 1;
        }
        let conn_shared = Arc::clone(&shared);
        let spawned = thread::Builder::new()
            .name("serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                release_conn(&conn_shared);
            });
        if spawned.is_err() {
            // Thread exhaustion must not leak the slot we just took, or
            // the drain path would wait on a connection that never ran.
            release_conn(&shared);
        }
    }
}

/// Gives a connection slot back and wakes the drain waiter.
fn release_conn(shared: &Shared) {
    let mut conns = shared.conns.lock().unwrap_or_else(PoisonError::into_inner);
    *conns -= 1;
    shared.conns_done.notify_all();
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(shared.config.read_timeout);
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let req = match http::read_request(&mut reader, &shared.config.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                if let Some((status, reason)) = e.status() {
                    let mut b = JsonBuf::new();
                    b.begin_obj()
                        .str_field("type", "request.invalid")
                        .str_field("error", e.describe())
                        .end_obj();
                    let body = b.into_string() + "\n";
                    let _ = http::write_response(&mut writer, status, reason, &[], &body);
                }
                return;
            }
        };
        let close = req.wants_close();
        // With the `fault-inject` feature compiled in, an `x-fault`
        // request header wraps this response's write path in a faulty
        // stream (short writes, a mid-stream reset after N bytes, or a
        // stalled writer) so tests can drive the server's disconnect
        // handling deterministically. Compiled out otherwise.
        #[cfg(feature = "fault-inject")]
        let served = match fault::SocketFault::from_request(&req) {
            Some(plan) => {
                let mut fw = fault::FaultyStream::new(&mut writer, plan);
                handle_request(&req, &mut fw, shared)
            }
            None => handle_request(&req, &mut writer, shared),
        };
        #[cfg(not(feature = "fault-inject"))]
        let served = handle_request(&req, &mut writer, shared);
        if served.is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn handle_request<W: Write>(req: &Request, w: &mut W, shared: &Shared) -> io::Result<()> {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/v1/health") => {
            let mut b = JsonBuf::new();
            b.begin_obj()
                .str_field("status", "ok")
                .str_field(
                    "draining",
                    if shared.draining.load(Ordering::SeqCst) {
                        "true"
                    } else {
                        "false"
                    },
                )
                .end_obj();
            let body = b.into_string() + "\n";
            http::write_response(w, 200, "OK", &[], &body)
        }
        ("GET", "/v1/stats") => {
            let mut r = shared.obs.report().unwrap_or_default();
            let jobs = shared
                .job_reports
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            r.merge_prefixed(&jobs, "jobs.");
            drop(jobs);
            let body = r.to_json() + "\n";
            http::write_response(w, 200, "OK", &[], &body)
        }
        ("POST", "/v1/jobs") => handle_job(req, w, shared),
        _ => {
            let body = "{\"type\":\"request.invalid\",\"error\":\"no such endpoint\"}\n";
            http::write_response(w, 404, "Not Found", &[], body)
        }
    }
}

fn reject<W: Write>(w: &mut W, status: u16, reason: &str, kind: &str, msg: &str) -> io::Result<()> {
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("type", kind)
        .str_field("error", msg)
        .end_obj();
    let body = b.into_string() + "\n";
    http::write_response(w, status, reason, &[], &body)
}

fn handle_job<W: Write>(req: &Request, w: &mut W, shared: &Shared) -> io::Result<()> {
    if shared.draining.load(Ordering::SeqCst) {
        shared.obs.add("serve.jobs.rejected", 1);
        return reject(
            w,
            503,
            "Service Unavailable",
            "server.draining",
            "server is draining; resubmit elsewhere",
        );
    }
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return reject(w, 400, "Bad Request", "job.invalid", "body is not UTF-8"),
    };
    let spec = match json::parse(body) {
        Ok(v) => v,
        Err(e) => {
            return reject(w, 400, "Bad Request", "job.invalid", &e.to_string());
        }
    };
    let job = match JobSpec::from_json(&spec, &shared.config) {
        Ok(j) => j,
        Err(msg) => return reject(w, 400, "Bad Request", "job.invalid", &msg),
    };

    // One slot per job, never over `max_jobs`: classic bounded
    // backpressure — the client is told to come back, nothing queues.
    let acquired = shared
        .jobs_running
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.config.max_jobs).then_some(n + 1)
        });
    if acquired.is_err() {
        shared.obs.add("serve.jobs.rejected", 1);
        let retry = shared.config.retry_after_secs.to_string();
        let mut b = JsonBuf::new();
        b.begin_obj()
            .str_field("type", "job.rejected")
            .str_field("error", "server at capacity; retry later")
            .end_obj();
        let body = b.into_string() + "\n";
        return http::write_response(
            w,
            429,
            "Too Many Requests",
            &[("Retry-After", &retry)],
            &body,
        );
    }
    let result = run_job(&job, w, shared);
    shared.jobs_running.fetch_sub(1, Ordering::SeqCst);
    result
}

fn compile_into_cache(
    job: &JobSpec,
    solver: SolverKind,
    key: u64,
    shared: &Shared,
) -> Result<(Arc<amsim::CompiledModel>, bool), String> {
    shared.cache.get_or_compile(key, &shared.obs, || {
        let module = vams_parser::parse_module(&job.module).map_err(|e| e.to_string())?;
        let mut sim = amsim::Simulation::new(&module)
            .dt(job.dt)
            .solver(solver)
            .collector(shared.obs.clone());
        if let Some(out) = &job.output {
            sim = sim.output(out.as_str());
        }
        if let Some(tol) = job.newton_tol {
            sim = sim.newton_tol(tol);
        }
        sim.compile().map_err(|e| e.to_string())
    })
}

fn run_job<W: Write>(job: &JobSpec, w: &mut W, shared: &Shared) -> io::Result<()> {
    let started = Instant::now();
    shared.obs.add("serve.jobs.accepted", 1);
    let job_id = shared.next_job_id.fetch_add(1, Ordering::SeqCst);

    let (model, cache_hit) = match compile_into_cache(job, job.solver, job.cache_key, shared) {
        Ok(pair) => pair,
        Err(msg) => {
            shared.obs.add("serve.jobs.failed", 1);
            return reject(w, 400, "Bad Request", "job.invalid", &msg);
        }
    };
    // The backend rung's model goes through the same LRU under the key a
    // plain dense-solver job of this module would use, so the recompile
    // is shared with (and by) ordinary submissions.
    let fallback = match &job.recovery {
        Some(r) if r.fallback_dense && job.solver != SolverKind::Dense => {
            match compile_into_cache(job, SolverKind::Dense, job.dense_cache_key, shared) {
                Ok((m, _)) => Some(m),
                Err(msg) => {
                    shared.obs.add("serve.jobs.failed", 1);
                    return reject(w, 400, "Bad Request", "job.invalid", &msg);
                }
            }
        }
        _ => None,
    };

    let scenarios = job.build_scenarios(model.dt());
    let mut stream = Stream {
        cw: ChunkedWriter::begin(&mut *w, 200, "OK")?,
        obs: &shared.obs,
        dead: false,
    };

    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("type", "job.accepted")
        .u64_field("job", job_id)
        .str_field("model_hash", &format!("{:016x}", model.model_hash()))
        .str_field("cache", if cache_hit { "hit" } else { "miss" })
        .u64_field("scenarios", scenarios.len() as u64)
        .end_obj();
    stream.record(b);

    // Scenario records must come out in input-index order while the
    // engine completes blocks in whatever order workers finish them:
    // park early arrivals and drain the run whenever its head appears.
    let mut pending: BTreeMap<usize, String> = BTreeMap::new();
    let mut next_emit = 0usize;
    let engine = if shared.config.workers == 0 {
        SweepEngine::new()
    } else {
        SweepEngine::new().workers(shared.config.workers)
    };
    let names: Vec<&str> = job.scenarios.iter().map(|s| s.name.as_str()).collect();
    let recovering = job.recovery.is_some();
    let observe = |ev: sweep::SweepEvent<'_, ScenarioOutcome<sweep::AmsRun, amsim::AmsError>>| {
        if shared.hard_drain.load(Ordering::SeqCst) {
            return;
        }
        for (off, res) in ev.results.iter().enumerate() {
            let idx = ev.first_index + off;
            pending.insert(idx, scenario_record(idx, names[idx], res));
        }
        while let Some(rec) = pending.remove(&next_emit) {
            stream.record_str(&rec);
            next_emit += 1;
        }
    };
    let mut watchdog = None;
    let outcome = match &job.recovery {
        None => run_ams_sweep_batched_with(
            &engine,
            &model,
            &scenarios,
            job.lane_width,
            &job.budget,
            observe,
        ),
        Some(r) => {
            let cancel = Arc::new(AtomicBool::new(false));
            let recovery = Recovery {
                policy: r.policy,
                fallback,
                plan: r.plan.clone(),
                cancel: Some(Arc::clone(&cancel)),
            };
            watchdog = r.watchdog_secs.and_then(|secs| Watchdog::arm(secs, cancel));
            run_ams_sweep_recovering_with(
                &engine,
                &model,
                &scenarios,
                job.lane_width,
                &job.budget,
                &recovery,
                observe,
            )
        }
    };
    let watchdog_fired = watchdog.take().is_some_and(Watchdog::disarm);

    match outcome {
        Ok(outcome) => {
            if shared.hard_drain.load(Ordering::SeqCst) {
                let mut b = JsonBuf::new();
                b.begin_obj()
                    .str_field("type", "server.draining")
                    .u64_field("job", job_id)
                    .str_field("error", "stream truncated by server drain")
                    .end_obj();
                stream.record(b);
            } else {
                let mut b = JsonBuf::new();
                b.begin_obj()
                    .str_field("type", "job.report")
                    .key("counters");
                b.begin_obj();
                for (k, v) in &outcome.report.counters {
                    if deterministic_counter(k) {
                        b.u64_field(k, *v);
                    }
                }
                b.end_obj();
                b.end_obj();
                stream.record(b);

                let mut tally = [0u64; 5];
                let mut by_rung = [0u64; 3];
                for r in &outcome.results {
                    let slot = match r {
                        ScenarioOutcome::Ok(_) => 0,
                        ScenarioOutcome::Failed { .. } => 1,
                        ScenarioOutcome::Panicked(_) => 2,
                        ScenarioOutcome::Budget(_) => 3,
                        ScenarioOutcome::Recovered { rung, .. } => {
                            by_rung[match rung {
                                sweep::RecoveryRung::Resume => 0,
                                sweep::RecoveryRung::Restart => 1,
                                sweep::RecoveryRung::Backend => 2,
                            }] += 1;
                            4
                        }
                    };
                    tally[slot] += 1;
                }
                // Recovering jobs summarize their rescues before the
                // terminal record; plain jobs keep the historical stream
                // byte-for-byte (no `recovered` field, no extra record).
                if recovering && tally[4] > 0 {
                    let mut b = JsonBuf::new();
                    b.begin_obj()
                        .str_field("type", "job.recovered")
                        .u64_field("job", job_id)
                        .u64_field("resume", by_rung[0])
                        .u64_field("restart", by_rung[1])
                        .u64_field("backend", by_rung[2])
                        .end_obj();
                    stream.record(b);
                }
                if watchdog_fired {
                    let mut b = JsonBuf::new();
                    b.begin_obj()
                        .str_field("type", "job.watchdog")
                        .u64_field("job", job_id)
                        .u64_field("killed", tally[3])
                        .end_obj();
                    stream.record(b);
                } else {
                    let mut b = JsonBuf::new();
                    b.begin_obj()
                        .str_field("type", "job.done")
                        .u64_field("job", job_id)
                        .u64_field("ok", tally[0]);
                    if recovering {
                        b.u64_field("recovered", tally[4]);
                    }
                    b.u64_field("failed", tally[1])
                        .u64_field("panicked", tally[2])
                        .u64_field("budget", tally[3])
                        .end_obj();
                    stream.record(b);
                }
            }
            if watchdog_fired {
                // Conservation contract: every accepted job lands in
                // exactly one of completed / watchdog / failed.
                shared.obs.add("serve.jobs.watchdog", 1);
            } else {
                shared.obs.add("serve.jobs.completed", 1);
            }
            shared
                .obs
                .time("serve.job", started.elapsed().as_secs_f64());
            shared
                .job_reports
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .merge(&outcome.report);
        }
        Err(e) => {
            // Scenario overrides are validated at parse time, so this is
            // a defensive path; it still ends the stream with a typed
            // record rather than a dangling chunk.
            let mut b = JsonBuf::new();
            b.begin_obj()
                .str_field("type", "job.error")
                .u64_field("job", job_id)
                .str_field("error", &e.to_string())
                .end_obj();
            stream.record(b);
            shared.obs.add("serve.jobs.failed", 1);
        }
    }
    let dead = stream.dead;
    stream.finish();
    if dead {
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "client disconnected mid-stream",
        ));
    }
    Ok(())
}

/// The streamed record writer: one chunk per JSON-lines record, counting
/// `serve.stream.records`. A write failure (client gone mid-stream)
/// flips `dead` and silences further writes — the sweep itself finishes
/// and is accounted normally; only the transport is abandoned.
struct Stream<'a, W: Write> {
    cw: ChunkedWriter<W>,
    obs: &'a Obs,
    dead: bool,
}

impl<W: Write> Stream<'_, W> {
    fn record(&mut self, b: JsonBuf) {
        self.record_str(b.as_str());
    }

    fn record_str(&mut self, rec: &str) {
        if self.dead {
            return;
        }
        let mut line = String::with_capacity(rec.len() + 1);
        line.push_str(rec);
        line.push('\n');
        if self.cw.write_chunk(&line).is_err() {
            self.dead = true;
        } else {
            self.obs.add("serve.stream.records", 1);
        }
    }

    fn finish(self) {
        if !self.dead {
            let _ = self.cw.finish();
        }
    }
}

/// Whether a merged-report counter is part of the deterministic stream
/// surface. Scheduling-dependent names are excluded so the `job.report`
/// record is identical for any worker count.
fn deterministic_counter(name: &str) -> bool {
    name != "sweep.workers" && !name.starts_with("sweep.worker.")
}

fn scenario_record(
    index: usize,
    name: &str,
    res: &ScenarioOutcome<sweep::AmsRun, amsim::AmsError>,
) -> String {
    let mut b = JsonBuf::new();
    b.begin_obj()
        .str_field("type", "scenario")
        .u64_field("index", index as u64)
        .str_field("name", name);
    match res {
        ScenarioOutcome::Ok(run) => {
            b.str_field("status", "ok")
                .u64_field("newton_iters", run.newton_iters);
            b.begin_arr("waveform");
            for v in &run.waveform {
                b.f64_elem(*v);
            }
            b.end_arr();
        }
        ScenarioOutcome::Recovered {
            result: run,
            rung,
            attempts,
        } => {
            b.str_field("status", "recovered")
                .str_field("rung", rung.name())
                .u64_field("attempts", attempts.len() as u64)
                .u64_field("newton_iters", run.newton_iters);
            b.begin_arr("waveform");
            for v in &run.waveform {
                b.f64_elem(*v);
            }
            b.end_arr();
        }
        ScenarioOutcome::Failed { error, attempts } => {
            b.str_field("status", "failed")
                .str_field("error", &error.to_string());
            // Plain jobs always have an empty trail, keeping their
            // stream bytes identical to the pre-recovery protocol.
            if !attempts.is_empty() {
                b.u64_field("attempts", attempts.len() as u64);
            }
        }
        ScenarioOutcome::Panicked(msg) => {
            b.str_field("status", "panicked").str_field("error", msg);
        }
        // Only the deterministic half of the budget verdict is streamed:
        // `steps` is exact, the wall clock is not.
        ScenarioOutcome::Budget(b_ex) => {
            b.str_field("status", "budget")
                .u64_field("steps", b_ex.steps);
        }
    }
    b.end_obj();
    b.into_string()
}

/// Per-job watchdog: a helper thread that trips the sweep's cancel
/// token once the job overruns its deadline, hard-killing every
/// still-running lane with a budget verdict at the next step boundary.
struct Watchdog {
    fired: Arc<AtomicBool>,
    done: Arc<(Mutex<bool>, Condvar)>,
    handle: thread::JoinHandle<()>,
}

impl Watchdog {
    /// Arms a watchdog that sets `cancel` after `secs` seconds unless
    /// disarmed first. `None` if the thread cannot be spawned — the job
    /// then simply runs unwatched rather than failing.
    fn arm(secs: f64, cancel: Arc<AtomicBool>) -> Option<Watchdog> {
        let fired = Arc::new(AtomicBool::new(false));
        let done = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = thread::Builder::new()
            .name("serve-watchdog".to_string())
            .spawn({
                let fired = Arc::clone(&fired);
                let done = Arc::clone(&done);
                move || {
                    let deadline = Duration::from_secs_f64(secs.max(0.0));
                    let start = Instant::now();
                    let (lock, cv) = &*done;
                    let mut finished = lock.lock().unwrap_or_else(PoisonError::into_inner);
                    while !*finished {
                        let left = deadline.saturating_sub(start.elapsed());
                        if left.is_zero() {
                            fired.store(true, Ordering::SeqCst);
                            cancel.store(true, Ordering::SeqCst);
                            return;
                        }
                        let (g, _) = cv
                            .wait_timeout(finished, left)
                            .unwrap_or_else(PoisonError::into_inner);
                        finished = g;
                    }
                }
            })
            .ok()?;
        Some(Watchdog {
            fired,
            done,
            handle,
        })
    }

    /// Stops the watchdog and reports whether it fired.
    fn disarm(self) -> bool {
        {
            let (lock, cv) = &*self.done;
            let mut finished = lock.lock().unwrap_or_else(PoisonError::into_inner);
            *finished = true;
            cv.notify_all();
        }
        let _ = self.handle.join();
        self.fired.load(Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// A validated job request.
struct JobSpec {
    module: String,
    dt: f64,
    output: Option<String>,
    newton_tol: Option<f64>,
    solver: SolverKind,
    lane_width: usize,
    budget: ScenarioBudget,
    scenarios: Vec<ScenarioSpec>,
    /// FNV-1a over everything that affects compilation — the model-cache
    /// key (scenarios deliberately excluded: they only affect instances).
    cache_key: u64,
    /// Cache key the same job would get with `solver: "dense"` — where
    /// the backend-switch rung's fallback model lives in the LRU.
    dense_cache_key: u64,
    /// Recovery-ladder configuration; `None` routes the legacy batched
    /// sweep path with byte-identical stream output.
    recovery: Option<JobRecovery>,
}

/// Recovery-ladder knobs carried by a job.
struct JobRecovery {
    policy: RecoveryPolicy,
    /// Compile a dense fallback model for the backend-switch rung.
    fallback_dense: bool,
    plan: FaultPlan,
    /// Hard deadline in seconds; overruns trip the sweep's cancel token.
    watchdog_secs: Option<f64>,
}

struct ScenarioSpec {
    name: String,
    steps: usize,
    newton_tol: Option<f64>,
    stim: StimSpec,
}

enum StimSpec {
    Const(f64),
    Square {
        period: f64,
        high: f64,
        low: f64,
    },
    Pwc {
        seed: u64,
        segments: usize,
        hold: f64,
        lo: f64,
        hi: f64,
    },
    /// Fault injection for the soak battery: the stimulus panics once
    /// simulated time reaches the given step.
    PanicAt {
        step: usize,
    },
}

/// A fixed-level stimulus.
struct ConstStim(f64);

impl Stimulus for ConstStim {
    fn value(&self, _t: f64) -> f64 {
        self.0
    }
}

/// Panics when sampled at or past `t_panic` — exercises the engine's
/// panic containment end to end from a hostile job.
struct PanicAtStim {
    t_panic: f64,
}

impl Stimulus for PanicAtStim {
    fn value(&self, t: f64) -> f64 {
        assert!(t < self.t_panic, "injected stimulus panic at t={t}");
        0.5
    }
}

impl JobSpec {
    fn from_json(v: &Json, config: &ServeConfig) -> Result<JobSpec, String> {
        let module = v
            .get("module")
            .and_then(Json::as_str)
            .ok_or("`module` (string) is required")?
            .to_string();
        let dt = match v.get("dt") {
            None => 1e-6,
            Some(d) => d.as_f64().ok_or("`dt` must be a number")?,
        };
        if !(dt.is_finite() && dt > 0.0) {
            return Err("`dt` must be a positive finite number".to_string());
        }
        let output = match v.get("output") {
            None => None,
            Some(o) => Some(o.as_str().ok_or("`output` must be a string")?.to_string()),
        };
        let newton_tol = parse_tol(v.get("newton_tol"), "newton_tol")?;
        let solver = match v.get("solver") {
            None => SolverKind::Auto,
            Some(s) => match s.as_str() {
                Some("auto") => SolverKind::Auto,
                Some("dense") => SolverKind::Dense,
                Some("sparse") => SolverKind::Sparse,
                _ => return Err("`solver` must be \"auto\", \"dense\" or \"sparse\"".to_string()),
            },
        };
        let lane_width = match v.get("lane_width") {
            None => config.lane_width,
            Some(l) => {
                let l = l
                    .as_u64()
                    .ok_or("`lane_width` must be a positive integer")?;
                if l == 0 || l > 64 {
                    return Err("`lane_width` must be between 1 and 64".to_string());
                }
                l as usize
            }
        };
        let mut budget = ScenarioBudget::unlimited().max_steps(config.max_steps_per_scenario);
        if let Some(bv) = v.get("budget") {
            if let Some(ms) = bv.get("max_steps") {
                let ms = ms.as_u64().ok_or("`budget.max_steps` must be an integer")?;
                budget = budget.max_steps(ms.min(config.max_steps_per_scenario));
            }
            if let Some(mw) = bv.get("max_wall") {
                let mw = mw.as_f64().ok_or("`budget.max_wall` must be a number")?;
                if !(mw.is_finite() && mw > 0.0) {
                    return Err("`budget.max_wall` must be positive".to_string());
                }
                budget = budget.max_wall(mw);
            }
        }
        let list = v
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or("`scenarios` (array) is required")?;
        if list.is_empty() {
            return Err("`scenarios` must not be empty".to_string());
        }
        if list.len() > config.max_scenarios {
            return Err(format!(
                "too many scenarios: {} (limit {})",
                list.len(),
                config.max_scenarios
            ));
        }
        let mut scenarios = Vec::with_capacity(list.len());
        for (i, sv) in list.iter().enumerate() {
            scenarios.push(ScenarioSpec::from_json(sv, i, config)?);
        }

        let recovery = JobRecovery::from_json(v)?;

        let key = |s: SolverKind| {
            let mut h = Fnv1a::new();
            h.write(module.as_bytes());
            h.write_u64(dt.to_bits());
            h.write(output.as_deref().unwrap_or("").as_bytes());
            h.write_u64(newton_tol.map(f64::to_bits).unwrap_or(u64::MAX));
            h.write(format!("{s:?}").as_bytes());
            h.finish()
        };

        Ok(JobSpec {
            cache_key: key(solver),
            dense_cache_key: key(SolverKind::Dense),
            module,
            dt,
            output,
            newton_tol,
            solver,
            lane_width,
            budget,
            scenarios,
            recovery,
        })
    }

    fn build_scenarios(&self, dt: f64) -> Vec<AmsScenario> {
        self.scenarios
            .iter()
            .map(|s| AmsScenario {
                name: s.name.clone(),
                stim: match &s.stim {
                    StimSpec::Const(v) => Box::new(ConstStim(*v)),
                    StimSpec::Square { period, high, low } => Box::new(SquareWave {
                        period: *period,
                        high: *high,
                        low: *low,
                    }),
                    StimSpec::Pwc {
                        seed,
                        segments,
                        hold,
                        lo,
                        hi,
                    } => Box::new(PiecewiseConstant::seeded(*seed, *segments, *hold, *lo, *hi)),
                    StimSpec::PanicAt { step } => Box::new(PanicAtStim {
                        t_panic: (*step as f64 - 0.5) * dt,
                    }),
                },
                steps: s.steps,
                newton_tol: s.newton_tol,
                step_control: None,
            })
            .collect()
    }
}

impl JobRecovery {
    /// Parses the recovery-related top-level keys. Any of `recovery`,
    /// `faults`, `fault_seed`/`fault_period` or `watchdog_secs` present
    /// enables the ladder path; all absent keeps the legacy pipeline.
    fn from_json(v: &Json) -> Result<Option<JobRecovery>, String> {
        let rv = v.get("recovery");
        let fv = v.get("faults");
        let seed = v.get("fault_seed");
        let period = v.get("fault_period");
        let wd = v.get("watchdog_secs");
        if rv.is_none() && fv.is_none() && seed.is_none() && period.is_none() && wd.is_none() {
            return Ok(None);
        }

        let mut policy = RecoveryPolicy::default();
        let mut fallback_dense = true;
        if let Some(rv) = rv {
            if let Some(n) = rv.get("max_recoveries") {
                let n = n
                    .as_u64()
                    .ok_or("`recovery.max_recoveries` must be an integer")?;
                policy.max_recoveries = n.min(u32::MAX as u64) as u32;
            }
            if let Some(n) = rv.get("snapshot_every") {
                policy.snapshot_every_n_steps = n
                    .as_u64()
                    .ok_or("`recovery.snapshot_every` must be an integer")?;
            }
            if let Some(n) = rv.get("min_dt_scale") {
                let s = n
                    .as_f64()
                    .ok_or("`recovery.min_dt_scale` must be a number")?;
                if !(s.is_finite() && s > 0.0 && s <= 1.0) {
                    return Err("`recovery.min_dt_scale` must be in (0, 1]".to_string());
                }
                policy.min_dt_scale = s;
            }
            if let Some(n) = rv.get("extra_retries") {
                let n = n
                    .as_u64()
                    .ok_or("`recovery.extra_retries` must be an integer")?;
                policy.extra_retries = n.min(u32::MAX as u64) as u32;
            }
            match rv.get("fallback").map(Json::as_str) {
                None => {}
                Some(Some("dense")) => fallback_dense = true,
                Some(Some("none")) => fallback_dense = false,
                _ => return Err("`recovery.fallback` must be \"dense\" or \"none\"".to_string()),
            }
        }

        let mut plan = FaultPlan::new();
        if let Some(fv) = fv {
            let list = fv.as_array().ok_or("`faults` must be an array")?;
            for (i, f) in list.iter().enumerate() {
                let index = f
                    .get("index")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("`faults[{i}].index` (integer) is required"))?
                    as usize;
                let step = f
                    .get("step")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("`faults[{i}].step` (integer) is required"))?;
                let kind = match f.get("kind").and_then(Json::as_str) {
                    Some("residual_nan") => FaultKind::ResidualNan,
                    Some("refactor_singular") => FaultKind::RefactorSingular,
                    Some("refactor_non_finite") => FaultKind::RefactorNonFinite,
                    Some("stimulus_panic") => FaultKind::StimulusPanic,
                    Some("stimulus_stall") => FaultKind::StimulusStall {
                        millis: f.get("millis").and_then(Json::as_u64).unwrap_or(10),
                    },
                    _ => {
                        return Err(format!(
                            "`faults[{i}].kind` must be one of residual_nan, \
                             refactor_singular, refactor_non_finite, \
                             stimulus_panic, stimulus_stall"
                        ))
                    }
                };
                plan = plan.target(index, FaultSpec { kind, step });
            }
        }
        if seed.is_some() || period.is_some() {
            let s = seed
                .map(|s| s.as_u64().ok_or("`fault_seed` must be an integer"))
                .transpose()?
                .unwrap_or(0);
            let p = period
                .map(|p| p.as_u64().ok_or("`fault_period` must be an integer"))
                .transpose()?
                .unwrap_or(0);
            plan = plan.seeded(s, p);
        }

        let watchdog_secs = match wd {
            None => None,
            Some(w) => {
                let w = w.as_f64().ok_or("`watchdog_secs` must be a number")?;
                if !(w.is_finite() && w > 0.0) {
                    return Err("`watchdog_secs` must be positive".to_string());
                }
                Some(w)
            }
        };

        Ok(Some(JobRecovery {
            policy,
            fallback_dense,
            plan,
            watchdog_secs,
        }))
    }
}

impl ScenarioSpec {
    fn from_json(v: &Json, index: usize, config: &ServeConfig) -> Result<ScenarioSpec, String> {
        let name = match v.get("name") {
            None => format!("s{index}"),
            Some(n) => n
                .as_str()
                .ok_or(format!("scenario {index}: `name` must be a string"))?
                .to_string(),
        };
        let steps = v
            .get("steps")
            .and_then(Json::as_u64)
            .ok_or(format!("scenario {index}: `steps` (integer) is required"))?;
        if steps == 0 || steps > config.max_steps_per_scenario {
            return Err(format!(
                "scenario {index}: `steps` must be in 1..={}",
                config.max_steps_per_scenario
            ));
        }
        let newton_tol = parse_tol(
            v.get("newton_tol"),
            &format!("scenario {index}: newton_tol"),
        )?;
        let sv = v
            .get("stim")
            .ok_or(format!("scenario {index}: `stim` (object) is required"))?;
        let kind = sv
            .get("kind")
            .and_then(Json::as_str)
            .ok_or(format!("scenario {index}: `stim.kind` is required"))?;
        let num = |key: &str| -> Result<f64, String> {
            sv.get(key)
                .and_then(Json::as_f64)
                .filter(|x| x.is_finite())
                .ok_or(format!(
                    "scenario {index}: `stim.{key}` (finite number) is required for kind `{kind}`"
                ))
        };
        let stim = match kind {
            "const" => StimSpec::Const(num("value")?),
            "square" => {
                let period = num("period")?;
                if period <= 0.0 {
                    return Err(format!("scenario {index}: `stim.period` must be positive"));
                }
                StimSpec::Square {
                    period,
                    high: num("high")?,
                    low: num("low")?,
                }
            }
            "pwc" => {
                let seed = sv.get("seed").and_then(Json::as_u64).ok_or(format!(
                    "scenario {index}: `stim.seed` (integer) is required"
                ))?;
                let segments = sv
                    .get("segments")
                    .and_then(Json::as_u64)
                    .filter(|&s| s > 0 && s <= 65536)
                    .ok_or(format!(
                        "scenario {index}: `stim.segments` must be in 1..=65536"
                    ))? as usize;
                let hold = num("hold")?;
                if hold <= 0.0 {
                    return Err(format!("scenario {index}: `stim.hold` must be positive"));
                }
                StimSpec::Pwc {
                    seed,
                    segments,
                    hold,
                    lo: num("lo")?,
                    hi: num("hi")?,
                }
            }
            "panic_at" => {
                let step = sv.get("step").and_then(Json::as_u64).ok_or(format!(
                    "scenario {index}: `stim.step` (integer) is required"
                ))?;
                StimSpec::PanicAt {
                    step: step as usize,
                }
            }
            other => {
                return Err(format!(
                    "scenario {index}: unknown stim kind `{other}` \
                     (expected const, square, pwc or panic_at)"
                ))
            }
        };
        Ok(ScenarioSpec {
            name,
            steps: steps as usize,
            newton_tol,
            stim,
        })
    }
}

fn parse_tol(v: Option<&Json>, what: &str) -> Result<Option<f64>, String> {
    match v {
        None => Ok(None),
        Some(t) => {
            let t = t
                .as_f64()
                .filter(|x| x.is_finite() && *x > 0.0)
                .ok_or(format!("`{what}` must be a positive finite number"))?;
            Ok(Some(t))
        }
    }
}

/// FNV-1a, the same stable construction `amsim` uses for model hashes —
/// std's `DefaultHasher` is explicitly unstable across releases and a
/// cache key must not rotate under a toolchain bump.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Field separator so ("ab","c") and ("a","bc") differ.
        self.0 ^= 0xff;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
