//! A minimal, dependency-free JSON parser and writer.
//!
//! The serve daemon speaks JSON on both sides of its protocol — job
//! submissions in, streamed records out — under the same offline
//! constraint as the rest of the workspace (no external crates), so both
//! directions are hand-rolled here. The parser is a plain recursive
//! descent over `&str` with an explicit depth cap; it is the surface the
//! protocol fuzz tests hammer, so its contract is strict: **any** input,
//! well-formed or hostile, must produce either a [`Json`] value or a
//! typed [`JsonError`] — never a panic and never unbounded work beyond
//! the input length.
//!
//! The writer side ([`JsonBuf`]) produces deterministic output: object
//! keys are emitted in insertion order by the caller, and `f64`s use
//! Rust's shortest round-trip `Display` formatting, so a record built
//! from identical values is byte-identical — the property the streaming
//! determinism tests pin end to end.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// with a typed error instead of risking stack exhaustion.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` gives deterministic iteration order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number
    /// that fits `u64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// A typed parse failure: byte offset plus a static description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static [u8], v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|mut e| {
                e.msg = "expected object key string";
                e
            })?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // shared increment below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let Some(ch) = s.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one leading zero or a nonzero-led digit run.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

/// An append-only JSON writer with deterministic formatting.
///
/// Callers compose records field by field; keys come out in call order
/// and floats in Rust's shortest round-trip form, so identical values
/// always serialize to identical bytes.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// Whether the current aggregate already has a first element.
    needs_comma: bool,
}

impl JsonBuf {
    /// An empty buffer.
    pub fn new() -> JsonBuf {
        JsonBuf::default()
    }

    /// The serialized bytes so far.
    pub fn as_str(&self) -> &str {
        &self.out
    }

    /// Consumes the buffer into its backing string.
    pub fn into_string(self) -> String {
        self.out
    }

    fn elem(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
        self.needs_comma = true;
    }

    /// Opens an object (as a value position element).
    pub fn begin_obj(&mut self) -> &mut Self {
        self.elem();
        self.out.push('{');
        self.needs_comma = false;
        self
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.out.push('}');
        self.needs_comma = true;
        self
    }

    /// Opens an array under `key`.
    pub fn begin_arr(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.out.push('[');
        self.needs_comma = false;
        self
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.out.push(']');
        self.needs_comma = true;
        self
    }

    /// Writes `"key":` (with the element comma as needed).
    pub fn key(&mut self, key: &str) -> &mut Self {
        self.elem();
        push_escaped(&mut self.out, key);
        self.out.push(':');
        self.needs_comma = false;
        self
    }

    /// Writes a string field.
    pub fn str_field(&mut self, key: &str, v: &str) -> &mut Self {
        self.key(key);
        push_escaped(&mut self.out, v);
        self.needs_comma = true;
        self
    }

    /// Writes an unsigned integer field.
    pub fn u64_field(&mut self, key: &str, v: u64) -> &mut Self {
        self.key(key);
        self.out.push_str(&v.to_string());
        self.needs_comma = true;
        self
    }

    /// Writes a float field (shortest round-trip form; non-finite values
    /// become `null`).
    pub fn f64_field(&mut self, key: &str, v: f64) -> &mut Self {
        self.key(key);
        push_f64(&mut self.out, v);
        self.needs_comma = true;
        self
    }

    /// Appends one float element to the open array.
    pub fn f64_elem(&mut self, v: f64) -> &mut Self {
        self.elem();
        push_f64(&mut self.out, v);
        self
    }
}

fn push_escaped(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    // Keep integral floats unambiguously floats.
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
        out.push_str(".0");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_aggregates() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"a": [1, 2, {"b": "c"}], "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_round_trip() {
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
        // Surrogate pair → astral char.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ud83dx""#).is_err());
    }

    #[test]
    fn rejects_malformed_input_with_typed_errors() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "tru",
            "01",
            "1.",
            "1e",
            "-",
            "\"abc",
            "\"\\q\"",
            "[1]]",
            "{\"a\":1,}",
            "\u{1}",
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(!e.msg.is_empty());
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(parse(&deep).unwrap_err().msg, "nesting too deep");
        let ok = "[".repeat(60) + &"]".repeat(60);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn writer_is_deterministic_and_round_trips() {
        let mut b = JsonBuf::new();
        b.begin_obj()
            .str_field("type", "scenario")
            .u64_field("index", 3)
            .f64_field("x", 0.1 + 0.2);
        b.begin_arr("wave").f64_elem(1.0).f64_elem(-0.5).end_arr();
        b.end_obj();
        let s = b.into_string();
        let v = parse(&s).unwrap();
        assert_eq!(v.get("index").unwrap().as_u64(), Some(3));
        // Shortest-round-trip float formatting parses back bit-exactly.
        let x = v.get("x").unwrap().as_f64().unwrap();
        assert_eq!(x.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(
            v.get("wave").unwrap().as_array().unwrap()[0],
            Json::Num(1.0)
        );
    }
}
