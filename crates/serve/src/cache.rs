//! An LRU cache of compiled models keyed by request-content hash.
//!
//! Jobs that submit the same module source with the same simulation
//! settings share one [`CompiledModel`] — compilation (parse, lower,
//! symbolic factorization) happens at most once per key, which the
//! `serve_smoke` bench pins by asserting `amsim.jacobian.builds` stays
//! at one across a resubmit. Compilation runs **under the cache lock**:
//! that serializes concurrent first-compiles of different keys, but it
//! is what guarantees the at-most-once property without a per-key
//! in-flight map, and compiles are short relative to jobs.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use amsim::CompiledModel;
use obs::Obs;

struct Entry {
    model: Arc<CompiledModel>,
    last_used: u64,
}

/// A bounded least-recently-used model cache.
pub struct ModelCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

impl ModelCache {
    /// A cache holding at most `capacity` compiled models (minimum 1).
    pub fn new(capacity: usize) -> ModelCache {
        ModelCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the model for `key`, compiling it with `compile` on a
    /// miss. The boolean is `true` on a cache hit. Counters
    /// `serve.cache.{hits,misses,evictions}` are recorded on `obs`.
    pub fn get_or_compile<E>(
        &self,
        key: u64,
        obs: &Obs,
        compile: impl FnOnce() -> Result<Arc<CompiledModel>, E>,
    ) -> Result<(Arc<CompiledModel>, bool), E> {
        // A poisoned lock only means another compile panicked mid-insert;
        // the map itself is always left consistent, so keep serving.
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.entries.get_mut(&key) {
            e.last_used = tick;
            obs.add("serve.cache.hits", 1);
            return Ok((Arc::clone(&e.model), true));
        }
        obs.add("serve.cache.misses", 1);
        let model = compile()?;
        if inner.entries.len() >= self.capacity {
            if let Some((&lru, _)) = inner.entries.iter().min_by_key(|(_, e)| e.last_used) {
                inner.entries.remove(&lru);
                obs.add("serve.cache.evictions", 1);
            }
        }
        inner.entries.insert(
            key,
            Entry {
                model: Arc::clone(&model),
                last_used: tick,
            },
        );
        Ok((model, false))
    }

    /// Number of models currently cached.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
