//! The `amsvp-serve` daemon: sweep-as-a-service over plain TCP.
//!
//! ```text
//! amsvp-serve [--addr HOST:PORT] [--workers N] [--lane-width N]
//!             [--max-jobs N] [--cache N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7878`), prints the bound
//! address on stdout, and serves until stdin closes or a line reading
//! `shutdown` arrives — the std-only stand-in for a termination signal.
//! Shutdown is graceful: in-flight jobs drain and flush before the
//! process exits, and the final server report is printed as JSON.

use std::io::BufRead;
use std::time::Duration;

use amsvp_serve::{ServeConfig, Server};

fn main() {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".to_string(),
        ..ServeConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--lane-width" => config.lane_width = parse(&value("--lane-width"), "--lane-width"),
            "--max-jobs" => config.max_jobs = parse(&value("--max-jobs"), "--max-jobs"),
            "--cache" => config.cache_models = parse(&value("--cache"), "--cache"),
            "--help" | "-h" => {
                println!(
                    "usage: amsvp-serve [--addr HOST:PORT] [--workers N] [--lane-width N] \
                     [--max-jobs N] [--cache N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if config.lane_width == 0 {
        eprintln!("--lane-width must be at least 1");
        std::process::exit(2);
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    };
    println!("amsvp-serve listening on {}", server.local_addr());
    println!("POST jobs to /v1/jobs; type `shutdown` (or close stdin) to drain and exit");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim() == "shutdown" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    eprintln!("draining...");
    let report = server.shutdown_within(Duration::from_secs(30));
    println!("{}", report.to_json());
}

fn parse(s: &str, what: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {what}: {s}");
        std::process::exit(2)
    })
}
