//! A minimal HTTP/1.1 server-side protocol layer over `std::io`.
//!
//! Only the slice of HTTP the job protocol needs is implemented:
//! request-line + header parsing with hard size caps, `Content-Length`
//! bodies, keep-alive pipelining, and chunked transfer encoding for
//! streamed responses. Every malformed or abusive input maps to a typed
//! [`HttpError`] that the connection handler turns into a 4xx status —
//! the parser itself must never panic (the protocol fuzz tests feed it
//! arbitrary bytes) and never read more than the configured caps.

use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Size and count caps applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Cap on the request line plus all header bytes (431 when exceeded).
    pub max_header_bytes: usize,
    /// Cap on the declared body size (413 when exceeded).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, e.g. `/v1/jobs`.
    pub target: String,
    /// Headers with lowercased names; duplicate names keep the last value.
    pub headers: BTreeMap<String, String>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Header value by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(|s| s.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false)
    }
}

/// A typed request-read failure. The numeric status is what the server
/// should answer with before (usually) closing the connection.
#[derive(Debug)]
pub enum HttpError {
    /// 400 — the bytes do not form a valid request.
    Malformed(&'static str),
    /// 408 — the socket timed out mid-request.
    Timeout,
    /// 413 — declared body larger than the cap.
    BodyTooLarge,
    /// 431 — request line + headers larger than the cap.
    HeadersTooLarge,
    /// The client vanished mid-request (no response possible).
    Disconnected,
}

impl HttpError {
    /// Status code and reason phrase for this error, if one can be sent.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::Malformed(_) => Some((400, "Bad Request")),
            HttpError::Timeout => Some((408, "Request Timeout")),
            HttpError::BodyTooLarge => Some((413, "Payload Too Large")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::Disconnected => None,
        }
    }

    /// A short machine-readable description for the error body.
    pub fn describe(&self) -> &'static str {
        match self {
            HttpError::Malformed(m) => m,
            HttpError::Timeout => "timed out reading request",
            HttpError::BodyTooLarge => "request body exceeds limit",
            HttpError::HeadersTooLarge => "request headers exceed limit",
            HttpError::Disconnected => "client disconnected",
        }
    }
}

/// Reads one request from `r`.
///
/// Returns `Ok(None)` on clean EOF *before any request byte* — the
/// normal end of a keep-alive connection. EOF or a read error anywhere
/// after the first byte is [`HttpError::Disconnected`] (or
/// [`HttpError::Timeout`] for timeouts).
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Option<Request>, HttpError> {
    let mut head = Vec::new();
    // Read byte-wise until CRLFCRLF (or LFLF, accepted leniently) with a
    // hard cap; byte-wise is fine because `R` is buffered.
    loop {
        let mut b = [0u8; 1];
        match r.read(&mut b) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Disconnected);
            }
            Ok(_) => head.push(b[0]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout)
            }
            Err(_) => return Err(HttpError::Disconnected),
        }
        if head.len() > limits.max_header_bytes {
            return Err(HttpError::HeadersTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }

    let head_text =
        std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-UTF-8 request head"))?;
    let mut lines = head_text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?;
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Malformed("extra tokens in request line"));
    }
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) || method.is_empty() {
        return Err(HttpError::Malformed("invalid method token"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }

    let mut headers = BTreeMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header line missing ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed("invalid header name"));
        }
        headers.insert(name.to_ascii_lowercase(), value.trim().to_string());
    }

    let mut body = Vec::new();
    if let Some(len) = headers.get("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| HttpError::Malformed("invalid Content-Length"))?;
        if len > limits.max_body_bytes {
            return Err(HttpError::BodyTooLarge);
        }
        body.resize(len, 0);
        if let Err(e) = r.read_exact(&mut body) {
            return Err(
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut {
                    HttpError::Timeout
                } else {
                    HttpError::Disconnected
                },
            );
        }
    } else if headers.contains_key("transfer-encoding") {
        return Err(HttpError::Malformed("chunked request bodies unsupported"));
    }

    Ok(Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    }))
}

/// Writes a complete non-streamed response with a JSON body.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(w, "{name}: {value}\r\n")?;
    }
    write!(w, "\r\n")?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// A chunked-transfer-encoded response stream.
///
/// The caller writes whole records with [`write_chunk`](Self::write_chunk)
/// and must call [`finish`](Self::finish) to emit the terminating chunk.
/// Write failures (client gone mid-stream) are surfaced as errors; the
/// job runner records them and stops streaming, it never panics.
pub struct ChunkedWriter<W: Write> {
    w: W,
    finished: bool,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head for a chunked `application/x-ndjson`
    /// stream and returns the chunk writer.
    pub fn begin(mut w: W, status: u16, reason: &str) -> io::Result<ChunkedWriter<W>> {
        write!(
            w,
            "HTTP/1.1 {status} {reason}\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n"
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w, finished: false })
    }

    /// Sends one chunk (one JSON-lines record, newline included by the
    /// caller) and flushes so clients observe records incrementally.
    pub fn write_chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", data.len())?;
        self.w.write_all(data.as_bytes())?;
        write!(self.w, "\r\n")?;
        self.w.flush()
    }

    /// Sends the terminating zero-length chunk.
    pub fn finish(mut self) -> io::Result<()> {
        self.finished = true;
        write!(self.w, "0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn req(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(bytes), &Limits::default())
    }

    #[test]
    fn parses_request_with_body_and_keepalive_default() {
        let r = req(b"POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.target, "/v1/jobs");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.body, b"abcd");
        assert!(!r.wants_close());
    }

    #[test]
    fn clean_eof_between_requests_is_none() {
        assert!(req(b"").unwrap().is_none());
    }

    #[test]
    fn truncated_request_is_disconnect() {
        assert!(matches!(
            req(b"GET / HTTP/1.1\r\nHos"),
            Err(HttpError::Disconnected)
        ));
        assert!(matches!(
            req(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Disconnected)
        ));
    }

    #[test]
    fn malformed_requests_are_400() {
        for bad in [
            b"GARBAGE\r\n\r\n".as_slice(),
            b"GET /\r\n\r\n",
            b"GET / HTTP/2.0\r\n\r\n",
            b"G=T / HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            match req(bad) {
                Err(HttpError::Malformed(_)) => {}
                other => panic!("expected Malformed for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn caps_are_enforced() {
        let limits = Limits {
            max_header_bytes: 64,
            max_body_bytes: 8,
        };
        let mut big = b"GET / HTTP/1.1\r\nX: ".to_vec();
        big.extend(std::iter::repeat_n(b'a', 100));
        big.extend(b"\r\n\r\n");
        assert!(matches!(
            read_request(&mut BufReader::new(big.as_slice()), &limits),
            Err(HttpError::HeadersTooLarge)
        ));
        assert!(matches!(
            read_request(
                &mut BufReader::new(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n".as_slice()),
                &limits
            ),
            Err(HttpError::BodyTooLarge)
        ));
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut r = BufReader::new(bytes.as_slice());
        let a = read_request(&mut r, &Limits::default()).unwrap().unwrap();
        let b = read_request(&mut r, &Limits::default()).unwrap().unwrap();
        assert_eq!(a.target, "/a");
        assert_eq!(b.target, "/b");
        assert!(b.wants_close());
        assert!(read_request(&mut r, &Limits::default()).unwrap().is_none());
    }

    #[test]
    fn chunked_writer_frames_records() {
        let mut buf = Vec::new();
        {
            let mut cw = ChunkedWriter::begin(&mut buf, 200, "OK").unwrap();
            cw.write_chunk("{\"a\":1}\n").unwrap();
            cw.write_chunk("{\"b\":2}\n").unwrap();
            cw.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.contains("8\r\n{\"a\":1}\n\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
