//! Socket-level fault injection (the `fault-inject` feature).
//!
//! A client opts a single exchange into a fault with an `x-fault`
//! request header; the server then wraps that response's writer in a
//! [`FaultyStream`] which misbehaves the way a flaky network peer
//! would — short writes, a mid-stream connection reset, or a stalled
//! write. The request parser and job engine are untouched: faults act
//! only on the already-produced response bytes, so they exercise the
//! server's disconnect/backpressure handling without perturbing
//! results. Compiled out entirely unless `fault-inject` is enabled.
//!
//! Header grammar (one fault per request):
//!
//! * `x-fault: reset_after:N` — deliver the first `N` response bytes,
//!   then fail every write with `ConnectionReset`.
//! * `x-fault: stall_ms:N` — sleep `N` milliseconds before the first
//!   write, then behave normally (a slow-start peer).
//! * `x-fault: short_write` — accept at most one byte per `write`
//!   call, forcing every caller through its `write_all` retry loop.

use std::io::{self, Read, Write};
use std::thread;
use std::time::Duration;

use crate::http::Request;

/// One parsed socket fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketFault {
    /// Reset the connection after this many response bytes.
    ResetAfter(usize),
    /// Stall this long before the first response byte.
    StallMs(u64),
    /// Accept at most one byte per `write` call.
    ShortWrite,
}

impl SocketFault {
    /// The fault requested by the exchange's `x-fault` header, if any.
    /// Malformed values are ignored (no fault) rather than rejected —
    /// the header is a test-only backdoor, not part of the API surface.
    pub fn from_request(req: &Request) -> Option<SocketFault> {
        let v = req.header("x-fault")?;
        if v == "short_write" {
            return Some(SocketFault::ShortWrite);
        }
        if let Some(n) = v.strip_prefix("reset_after:") {
            return n.trim().parse().ok().map(SocketFault::ResetAfter);
        }
        if let Some(n) = v.strip_prefix("stall_ms:") {
            return n.trim().parse().ok().map(SocketFault::StallMs);
        }
        None
    }
}

/// A writer that injects the configured [`SocketFault`].
pub struct FaultyStream<'a, W: Write> {
    inner: &'a mut W,
    fault: SocketFault,
    written: usize,
    stalled: bool,
}

impl<'a, W: Write> FaultyStream<'a, W> {
    pub fn new(inner: &'a mut W, fault: SocketFault) -> FaultyStream<'a, W> {
        FaultyStream {
            inner,
            fault,
            written: 0,
            stalled: false,
        }
    }
}

impl<W: Write> Write for FaultyStream<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.fault {
            SocketFault::ResetAfter(limit) => {
                if self.written >= limit {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected connection reset",
                    ));
                }
                let allow = (limit - self.written).min(buf.len());
                let n = self.inner.write(&buf[..allow])?;
                self.written += n;
                Ok(n)
            }
            SocketFault::StallMs(millis) => {
                if !self.stalled {
                    self.stalled = true;
                    thread::sleep(Duration::from_millis(millis));
                }
                self.inner.write(buf)
            }
            SocketFault::ShortWrite => {
                let n = self.inner.write(&buf[..buf.len().min(1)])?;
                self.written += n;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader that returns at most one byte per `read` call — drives the
/// request parser through its short-read paths. Used by the chaos tests
/// on the client side of the socket.
pub struct ShortReader<R: Read>(pub R);

impl<R: Read> Read for ShortReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(1);
        self.0.read(&mut buf[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_after_delivers_prefix_then_resets() {
        let mut out = Vec::new();
        let mut fw = FaultyStream::new(&mut out, SocketFault::ResetAfter(5));
        assert!(fw.write_all(b"hello").is_ok());
        let err = fw.write_all(b"world").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(out, b"hello");
    }

    #[test]
    fn short_write_still_completes_via_write_all() {
        let mut out = Vec::new();
        let mut fw = FaultyStream::new(&mut out, SocketFault::ShortWrite);
        fw.write_all(b"chunked body").unwrap();
        assert_eq!(out, b"chunked body");
    }
}
