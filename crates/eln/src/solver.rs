use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use linalg::{
    AnyLu, FactorError, Factorization, LuFactors, Matrix, SolverKind, SparseStats, Triplets,
};
use obs::{CounterTracker, Obs};

use crate::network::{Component, ElnNetwork, NodeId, SourceId, SwitchId};
use crate::ComponentId;

/// Discretization method for the fixed-step transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Method {
    /// First-order implicit Euler — matches the abstraction pipeline.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule — more accurate for smooth signals.
    Trapezoidal,
}

/// Errors from solver construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ElnError {
    /// The MNA matrix is singular (floating node, source loop, ...).
    Singular(linalg::SingularMatrixError),
    /// The stamped MNA matrix held a NaN/Inf entry when factoring.
    NonFinitePivot {
        /// Matrix row of the offending entry.
        row: usize,
        /// Matrix column of the offending entry.
        col: usize,
    },
    /// A transient solve produced a non-finite unknown.
    NonFiniteSolution {
        /// Simulation time at which the solve was attempted.
        time: f64,
        /// Index of the first non-finite unknown.
        index: usize,
    },
    /// The time step must be positive and finite.
    InvalidTimeStep(f64),
    /// The network has no nodes.
    Empty,
}

impl fmt::Display for ElnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElnError::Singular(e) => write!(f, "MNA system is singular: {e}"),
            ElnError::NonFinitePivot { row, col } => {
                write!(f, "MNA matrix holds a non-finite entry at ({row}, {col})")
            }
            ElnError::NonFiniteSolution { time, index } => {
                write!(
                    f,
                    "solve at t = {time} produced a non-finite unknown {index}"
                )
            }
            ElnError::InvalidTimeStep(dt) => {
                write!(f, "invalid time step {dt}; must be positive and finite")
            }
            ElnError::Empty => write!(f, "network has no nodes"),
        }
    }
}

impl Error for ElnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ElnError::Singular(e) => Some(e),
            _ => None,
        }
    }
}

impl From<linalg::SingularMatrixError> for ElnError {
    fn from(e: linalg::SingularMatrixError) -> Self {
        ElnError::Singular(e)
    }
}

impl From<linalg::FactorError> for ElnError {
    fn from(e: linalg::FactorError) -> Self {
        match e {
            linalg::FactorError::Singular(s) => ElnError::Singular(s),
            linalg::FactorError::NonFinite { row, col } => ElnError::NonFinitePivot { row, col },
            linalg::FactorError::NotSquare { .. } => {
                unreachable!("MNA matrices are square by construction")
            }
        }
    }
}

/// Immutable compiled artifact of one [`ElnNetwork`]: the stamped MNA
/// matrices discretized at a fixed step/method, LU-factored at the
/// network's initial switch state.
///
/// A `CompiledNet` is plain data (`Send + Sync`) shared between any number
/// of per-run [`ElnSolver`] instances via [`Arc`]; assembly and the
/// factorization are paid once per sweep instead of once per run. Build
/// one with [`Transient::compile`], then spawn runs with
/// [`CompiledNet::instance`] / [`CompiledNet::instance_with`].
#[derive(Debug)]
pub struct CompiledNet {
    dt: f64,
    method: Method,
    /// Number of node-voltage unknowns.
    n_nodes: usize,
    /// Total MNA dimension (nodes + branch-current rows).
    dim: usize,
    /// Branch-current unknowns: component index → row offset.
    branch_of: Vec<Option<usize>>,
    /// Factors of `G + C/dt` (or the trapezoidal companion) at the
    /// initial switch state, on the resolved backend.
    lu: AnyLu,
    /// Resolved linear-solver backend (never [`SolverKind::Auto`]),
    /// chosen at compile time from the MNA system's size and density or
    /// forced via [`Transient::solver`].
    backend: SolverKind,
    g: Matrix,
    c_over_dt: Matrix,
    /// Source component indices with their row info, for rhs builds.
    sources: Vec<ComponentId>,
    components: Vec<Component>,
    /// Switch component ids and their compile-time state.
    switches: Vec<ComponentId>,
    initial_switch_closed: Vec<bool>,
}

/// Per-instance copy of the system matrices, materialized the first time a
/// run diverges from the compiled switch state (copy-on-toggle). Runs that
/// never toggle a switch solve against the shared compiled factors and
/// allocate no matrix storage of their own.
#[derive(Debug, Clone)]
struct OwnedSystem {
    lu: AnyLu,
    g: Matrix,
    c_over_dt: Matrix,
}

/// Cheap checkpoint of one [`ElnSolver`] run: solution history, source
/// values, switch states and (when the run has toggled away from the
/// compiled topology) a clone of the copy-on-toggle factors. Restoring
/// resumes stepping **bit-identically** with a run that never stopped.
///
/// Take one with [`ElnSolver::snapshot`], resume with
/// [`ElnSolver::restore`]. Snapshots are `Clone + Send + Sync` and tied
/// to their originating [`CompiledNet`].
#[derive(Debug, Clone)]
pub struct ElnSnapshot {
    net: Arc<CompiledNet>,
    x: Vec<f64>,
    x_prev: Vec<f64>,
    source_values: Vec<f64>,
    prev_source_values: Vec<f64>,
    switch_closed: Vec<bool>,
    owned: Option<Box<OwnedSystem>>,
    time: f64,
    steps: u64,
}

impl ElnSnapshot {
    /// Simulated time at the checkpoint, in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps the captured run had completed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The compiled network this checkpoint belongs to.
    pub fn compiled(&self) -> &Arc<CompiledNet> {
        &self.net
    }

    /// Whether the checkpoint carries copy-on-toggle factors (the run
    /// had left the compiled switch state).
    pub fn owns_factors(&self) -> bool {
        self.owned.is_some()
    }
}

/// Fixed-timestep MNA transient solver for an [`ElnNetwork`]: the mutable
/// per-run half of a [`CompiledNet`].
///
/// The system matrix is factored once at compile time; each
/// [`ElnSolver::step`] performs a right-hand-side build plus one LU solve,
/// mirroring the cost profile of the SystemC-AMS ELN solver for linear,
/// fixed-step networks.
#[derive(Debug)]
pub struct ElnSolver {
    net: Arc<CompiledNet>,
    /// Copy-on-toggle matrices; `None` while this run is still at the
    /// compiled switch state.
    owned: Option<Box<OwnedSystem>>,
    /// Current solution vector.
    x: Vec<f64>,
    x_prev: Vec<f64>,
    /// Per-source value (set by [`ElnSolver::set_source`]).
    source_values: Vec<f64>,
    prev_source_values: Vec<f64>,
    switch_closed: Vec<bool>,
    rhs: Vec<f64>,
    /// Scratch for the `(C/dt)·x_prev` history product.
    hist: Vec<f64>,
    /// Scratch for the trapezoidal `G·x_prev` history product.
    gh: Vec<f64>,
    time: f64,
    steps: u64,
    refactorizations: u64,
    obs: Obs,
    obs_steps: CounterTracker,
    obs_refactorizations: CounterTracker,
    obs_sparse_analyze: CounterTracker,
    obs_sparse_refactor: CounterTracker,
    obs_sparse_fill: CounterTracker,
}

/// Builder for an [`ElnSolver`] fixed-step transient analysis.
///
/// Mirrors the workspace builder idiom (`new(...)` → chained setters →
/// `build()`):
///
/// ```
/// use amsvp_eln::{ElnNetwork, Method, Transient};
///
/// let mut net = ElnNetwork::new();
/// let a = net.node("a");
/// let vin = net.vsource("vin", a, ElnNetwork::GROUND);
/// net.resistor("r", a, ElnNetwork::GROUND, 1e3);
///
/// let mut solver = Transient::new(&net)
///     .dt(1e-6)
///     .method(Method::BackwardEuler)
///     .build()?;
/// solver.set_source(vin, 1.0);
/// solver.try_step()?;
/// # Ok::<(), amsvp_eln::ElnError>(())
/// ```
#[must_use = "call build() to construct the solver"]
#[derive(Debug)]
pub struct Transient<'n> {
    net: &'n ElnNetwork,
    dt: f64,
    method: Method,
    solver: SolverKind,
    obs: Obs,
}

impl<'n> Transient<'n> {
    /// Starts a transient analysis over `net` with a 1 µs step and
    /// backward Euler; override with the chained setters.
    pub fn new(net: &'n ElnNetwork) -> Self {
        Transient {
            net,
            dt: 1e-6,
            method: Method::default(),
            solver: SolverKind::Auto,
            obs: Obs::none(),
        }
    }

    /// Selects the linear-solver backend of the compiled network. The
    /// default, [`SolverKind::Auto`], resolves at compile time from the
    /// MNA system's size and structural density;
    /// [`SolverKind::Dense`] / [`SolverKind::Sparse`] force a backend.
    pub fn solver(mut self, kind: SolverKind) -> Self {
        self.solver = kind;
        self
    }

    /// Sets the fixed time step in seconds.
    pub fn dt(mut self, dt: f64) -> Self {
        self.dt = dt;
        self
    }

    /// Sets the discretization method.
    pub fn method(mut self, method: Method) -> Self {
        self.method = method;
        self
    }

    /// Attaches an instrumentation collector; the solver reports
    /// `eln.steps`, `eln.refactorizations` and `eln.factor` through it.
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Assembles and factors the MNA system for a single run.
    ///
    /// Equivalent to [`Transient::compile`] followed by
    /// [`CompiledNet::instance_with`].
    ///
    /// # Errors
    ///
    /// * [`ElnError::InvalidTimeStep`] for a bad `dt`;
    /// * [`ElnError::Empty`] for a node-less network;
    /// * [`ElnError::Singular`] when the topology is ill-posed.
    pub fn build(self) -> Result<ElnSolver, ElnError> {
        let obs = self.obs.clone();
        Ok(self.compile()?.instance_with(obs))
    }

    /// Assembles and factors the MNA system into an immutable,
    /// thread-shareable [`CompiledNet`] without creating any run state.
    /// The one-off factorization cost is reported to the attached
    /// collector as the `eln.factor` timer.
    ///
    /// # Errors
    ///
    /// As for [`Transient::build`].
    pub fn compile(self) -> Result<Arc<CompiledNet>, ElnError> {
        Ok(Arc::new(compile_net(
            self.net,
            self.dt,
            self.method,
            self.solver,
            &self.obs,
        )?))
    }
}

/// Converts the structural nonzeros of a dense system matrix into
/// triplet stamps for the sparse backend (exact zeros are structurally
/// absent — a switch that opens removes its conductance from the
/// pattern, which the sparse refactor detects and re-analyzes).
fn dense_to_triplets(a: &Matrix) -> Triplets {
    let mut t = Triplets::new(a.rows(), a.cols());
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            let v = a[(i, j)];
            if v != 0.0 {
                t.push(i, j, v);
            }
        }
    }
    t
}

/// Refreshes `lu` from a dense system matrix. The dense backend factors
/// the matrix directly — bit-identical to the historical `factor_into`
/// path — while the sparse backend goes through triplet stamps and its
/// pattern-reusing refactor.
fn refactor_from_dense(lu: &mut AnyLu, a: &Matrix) -> Result<(), FactorError> {
    match lu {
        AnyLu::Dense(f) => f.factor_into(a),
        AnyLu::Sparse(_) => lu.refactor(&dense_to_triplets(a)),
    }
}

/// Assembles, discretizes and factors `net` into a [`CompiledNet`].
fn compile_net(
    net: &ElnNetwork,
    dt: f64,
    method: Method,
    solver: SolverKind,
    obs: &Obs,
) -> Result<CompiledNet, ElnError> {
    if !(dt.is_finite() && dt > 0.0) {
        return Err(ElnError::InvalidTimeStep(dt));
    }
    let n_nodes = net.node_count();
    if n_nodes == 0 {
        return Err(ElnError::Empty);
    }
    // Assign branch-current rows to components that need them.
    let mut branch_of = vec![None; net.components.len()];
    let mut next = n_nodes;
    for (i, c) in net.components.iter().enumerate() {
        if matches!(
            c,
            Component::Vsource { .. } | Component::Vcvs { .. } | Component::Inductor { .. }
        ) {
            branch_of[i] = Some(next);
            next += 1;
        }
    }
    let dim = next;
    let initial_switch_closed: Vec<bool> = net
        .switches
        .iter()
        .map(|&c| match net.components[c.0] {
            Component::Switch {
                initially_closed, ..
            } => initially_closed,
            _ => unreachable!("switch list holds switches"),
        })
        .collect();
    let (g, c_mat) = stamp_matrices(
        &net.components,
        &branch_of,
        dim,
        &net.switches,
        &initial_switch_closed,
    );

    let c_over_dt = &c_mat * (1.0 / dt);
    let a = match method {
        Method::BackwardEuler => &g + &c_over_dt,
        Method::Trapezoidal => &g + &(&c_mat * (2.0 / dt)),
    };
    let timer = obs.enabled().then(Instant::now);
    // Resolve `Auto` once, against the assembled system's structural
    // density; the backend is part of the compiled artifact. The dense
    // path factors the dense matrix directly (bit-identical to the
    // historical behavior); the sparse path analyzes triplet stamps.
    let nnz = (0..dim)
        .flat_map(|i| (0..dim).map(move |j| (i, j)))
        .filter(|&(i, j)| a[(i, j)] != 0.0)
        .count();
    let backend = solver.resolve(dim, nnz);
    let lu = match backend {
        SolverKind::Sparse => AnyLu::analyze_with(SolverKind::Sparse, &dense_to_triplets(&a))?,
        _ => AnyLu::Dense(LuFactors::factor(&a)?),
    };
    if let Some(start) = timer {
        obs.time("eln.factor", start.elapsed().as_secs_f64());
    }
    if obs.enabled() {
        let stats = lu.sparse_stats();
        if stats.analyze > 0 {
            obs.add("linalg.sparse.analyze", stats.analyze);
            obs.add("linalg.sparse.fill", stats.fill);
        }
    }
    Ok(CompiledNet {
        dt,
        method,
        n_nodes,
        dim,
        branch_of,
        lu,
        backend,
        g,
        c_over_dt,
        sources: net.sources.clone(),
        components: net.components.clone(),
        switches: net.switches.clone(),
        initial_switch_closed,
    })
}

impl CompiledNet {
    /// Time step the network was discretized at, in seconds.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Discretization method the network was compiled with.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Number of MNA unknowns (diagnostics).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of node-voltage unknowns.
    pub fn node_unknowns(&self) -> usize {
        self.n_nodes
    }

    /// The linear-solver backend this network's instances solve through,
    /// resolved at compile time (never [`SolverKind::Auto`]).
    pub fn solver_kind(&self) -> SolverKind {
        self.backend
    }

    /// Spawns a run instance with no collector — the cheap path for
    /// sweep workers.
    pub fn instance(self: &Arc<Self>) -> ElnSolver {
        self.instance_with(Obs::none())
    }

    /// Spawns a run instance reporting `eln.steps`,
    /// `eln.refactorizations` and `eln.factor` through `obs`.
    pub fn instance_with(self: &Arc<Self>, obs: Obs) -> ElnSolver {
        let dim = self.dim;
        ElnSolver {
            owned: None,
            x: vec![0.0; dim],
            x_prev: vec![0.0; dim],
            source_values: vec![0.0; self.sources.len()],
            prev_source_values: vec![0.0; self.sources.len()],
            switch_closed: self.initial_switch_closed.clone(),
            rhs: vec![0.0; dim],
            hist: vec![0.0; dim],
            gh: vec![0.0; dim],
            time: 0.0,
            steps: 0,
            refactorizations: 0,
            obs,
            obs_steps: CounterTracker::default(),
            obs_refactorizations: CounterTracker::default(),
            obs_sparse_analyze: CounterTracker::default(),
            obs_sparse_refactor: CounterTracker::default(),
            obs_sparse_fill: CounterTracker::default(),
            net: Arc::clone(self),
        }
    }
}

impl ElnSolver {
    /// The shared compiled artifact this run steps over.
    pub fn compiled(&self) -> &Arc<CompiledNet> {
        &self.net
    }

    /// Reports counter deltas (`eln.steps`, `eln.refactorizations`) to the
    /// attached collector. Called automatically on drop; call explicitly
    /// to snapshot counters mid-run.
    pub fn flush_counters(&mut self) {
        if self.obs.enabled() {
            let (steps, refactorizations) = (self.steps, self.refactorizations);
            self.obs_steps.flush(&self.obs, "eln.steps", steps);
            self.obs_refactorizations
                .flush(&self.obs, "eln.refactorizations", refactorizations);
            // Sparse-backend work of this run's copy-on-toggle factors
            // (the shared compile-time analyze is reported by `compile`).
            let sparse = match &self.owned {
                Some(o) => o.lu.sparse_stats(),
                None => SparseStats::default(),
            };
            self.obs_sparse_analyze
                .flush(&self.obs, "linalg.sparse.analyze", sparse.analyze);
            self.obs_sparse_refactor
                .flush(&self.obs, "linalg.sparse.refactor", sparse.refactor);
            self.obs_sparse_fill
                .flush(&self.obs, "linalg.sparse.fill", sparse.fill);
        }
    }

    /// Captures a checkpoint of the current run state. Copy-on-toggle
    /// factors (when materialized) are cloned with their sparse stats
    /// reset — this run has already reported that work.
    pub fn snapshot(&self) -> ElnSnapshot {
        let owned = self.owned.as_ref().map(|o| {
            let mut o = o.clone();
            o.lu.reset_stats();
            o
        });
        ElnSnapshot {
            net: Arc::clone(&self.net),
            x: self.x.clone(),
            x_prev: self.x_prev.clone(),
            source_values: self.source_values.clone(),
            prev_source_values: self.prev_source_values.clone(),
            switch_closed: self.switch_closed.clone(),
            owned,
            time: self.time,
            steps: self.steps,
        }
    }

    /// Rewinds this run to a checkpoint taken from the **same** compiled
    /// network. Subsequent steps are bit-identical to a run that reached
    /// the checkpoint and never stopped: solution history, source values,
    /// switch states and the solve path (shared compiled factors vs. the
    /// checkpoint's copy-on-toggle clone) are all reinstated. The step
    /// counter stays monotone so an attached collector cannot
    /// double-count; [`ElnSolver::steps`] keeps counting from the
    /// high-water mark after a same-instance rewind.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a different compiled
    /// network.
    pub fn restore(&mut self, snap: &ElnSnapshot) {
        assert!(
            Arc::ptr_eq(&self.net, &snap.net),
            "ElnSolver::restore: snapshot belongs to a different compiled network"
        );
        self.x.copy_from_slice(&snap.x);
        self.x_prev.copy_from_slice(&snap.x_prev);
        self.source_values.copy_from_slice(&snap.source_values);
        self.prev_source_values
            .copy_from_slice(&snap.prev_source_values);
        self.switch_closed.copy_from_slice(&snap.switch_closed);
        self.owned = snap.owned.clone();
        self.time = snap.time;
    }

    /// Opens or closes a digitally controlled switch. A state change
    /// re-stamps and re-factors the system matrix (the cost SystemC-AMS
    /// pays for `sca_de_rswitch` toggles too); steady states cost nothing.
    ///
    /// # Errors
    ///
    /// [`ElnError::Singular`] if the new topology is ill-posed.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn set_switch(&mut self, sw: SwitchId, closed: bool) -> Result<(), ElnError> {
        if self.switch_closed[sw.0] == closed {
            return Ok(());
        }
        self.switch_closed[sw.0] = closed;
        let dim = self.x.len();
        let (g, c_mat) = stamp_matrices(
            &self.net.components,
            &self.net.branch_of,
            dim,
            &self.net.switches,
            &self.switch_closed,
        );
        let dt = self.net.dt;
        let a = match self.net.method {
            Method::BackwardEuler => &g + &(&c_mat * (1.0 / dt)),
            Method::Trapezoidal => &g + &(&c_mat * (2.0 / dt)),
        };
        let timer = self.obs.enabled().then(Instant::now);
        // Copy-on-toggle: materialize per-run matrices the first time this
        // run leaves the compiled switch state; siblings sharing the
        // CompiledNet are unaffected.
        let net = &self.net;
        let owned = self.owned.get_or_insert_with(|| {
            let mut lu = net.lu.clone();
            // Run-time counters must not re-report compile-time work.
            lu.reset_stats();
            Box::new(OwnedSystem {
                lu,
                g: net.g.clone(),
                c_over_dt: net.c_over_dt.clone(),
            })
        });
        if let Err(e) = refactor_from_dense(&mut owned.lu, &a) {
            // Leave the solver usable: revert the toggle and restore the
            // factors of the previous (known-good) topology.
            self.switch_closed[sw.0] = !closed;
            let (g0, c0) = stamp_matrices(
                &self.net.components,
                &self.net.branch_of,
                dim,
                &self.net.switches,
                &self.switch_closed,
            );
            let a0 = match self.net.method {
                Method::BackwardEuler => &g0 + &(&c0 * (1.0 / dt)),
                Method::Trapezoidal => &g0 + &(&c0 * (2.0 / dt)),
            };
            let owned = self.owned.as_mut().expect("materialized above");
            refactor_from_dense(&mut owned.lu, &a0).expect("previous topology factored before");
            owned.g = g0;
            owned.c_over_dt = &c0 * (1.0 / dt);
            return Err(e.into());
        }
        if let Some(start) = timer {
            self.obs.time("eln.factor", start.elapsed().as_secs_f64());
        }
        owned.g = g;
        owned.c_over_dt = &c_mat * (1.0 / dt);
        self.refactorizations += 1;
        Ok(())
    }

    /// Whether a switch is currently closed.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn switch_closed(&self, sw: SwitchId) -> bool {
        self.switch_closed[sw.0]
    }

    /// Matrix refactorizations triggered by switch toggles.
    pub fn refactorizations(&self) -> u64 {
        self.refactorizations
    }

    /// Time step in seconds.
    pub fn dt(&self) -> f64 {
        self.net.dt
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Sets the value of an independent source for the next step.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn set_source(&mut self, s: SourceId, value: f64) {
        self.source_values[s.0] = value;
    }

    /// Voltage of a node (ground reads 0).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn node_voltage(&self, n: NodeId) -> f64 {
        if n.0 < 0 {
            0.0
        } else {
            self.x[n.0 as usize]
        }
    }

    /// Branch current of a component that carries a current unknown
    /// (voltage sources, VCVS, inductors); `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn branch_current(&self, c: ComponentId) -> Option<f64> {
        self.net.branch_of[c.0].map(|row| self.x[row])
    }

    /// Advances the network by one time step.
    ///
    /// # Panics
    ///
    /// Panics if the solve produces a non-finite unknown (a NaN/Inf
    /// source value, or a degenerate topology slipping past the
    /// factorization). Use [`ElnSolver::try_step`] to handle that as a
    /// typed error instead.
    #[deprecated(
        since = "0.1.0",
        note = "panics on divergence; use `try_step` and handle the typed error"
    )]
    pub fn step(&mut self) {
        if let Err(e) = self.try_step() {
            panic!("ElnSolver::step failed: {e}");
        }
    }

    /// Advances the network by one time step, surfacing divergence as a
    /// typed error.
    ///
    /// # Errors
    ///
    /// [`ElnError::NonFiniteSolution`] when any unknown comes back
    /// NaN/Inf. The solver then stays at the last accepted state — the
    /// solution vector, source history, time and step count are all
    /// untouched — so the caller can fix the inputs and retry.
    pub fn try_step(&mut self) -> Result<(), ElnError> {
        self.rhs.iter_mut().for_each(|v| *v = 0.0);
        // Source excitation. The trapezoidal companion form is
        // (G + 2C/h)·x_k = (2C/h − G)·x_{k−1} + b_k + b_{k−1}:
        // the *sum* of excitations, uniformly for every row (the −G·x_{k−1}
        // term cancels b_{k−1} on algebraic source rows).
        let blend = self.net.method == Method::Trapezoidal;
        for (k, &cid) in self.net.sources.iter().enumerate() {
            let v = if blend {
                self.source_values[k] + self.prev_source_values[k]
            } else {
                self.source_values[k]
            };
            match self.net.components[cid.0] {
                Component::Vsource { .. } => {
                    let b = self.net.branch_of[cid.0].expect("source branch");
                    self.rhs[b] += v;
                }
                Component::Isource { p, n } => {
                    if p.0 >= 0 {
                        self.rhs[p.0 as usize] -= v;
                    }
                    if n.0 >= 0 {
                        self.rhs[n.0 as usize] += v;
                    }
                }
                _ => unreachable!("only independent sources are registered"),
            }
        }
        // Resolve the system against this run's matrices: the shared
        // compiled ones, or the copy-on-toggle set after a switch event.
        let (lu, g, c_over_dt) = match &self.owned {
            Some(o) => (&o.lu, &o.g, &o.c_over_dt),
            None => (&self.net.lu, &self.net.g, &self.net.c_over_dt),
        };
        // History terms.
        match self.net.method {
            Method::BackwardEuler => {
                // rhs += (C/dt)·x_prev
                c_over_dt.mul_vec_into(&self.x_prev, &mut self.hist);
                for (r, h) in self.rhs.iter_mut().zip(&self.hist) {
                    *r += h;
                }
            }
            Method::Trapezoidal => {
                // rhs += (2C/dt)·x_prev − G·x_prev
                c_over_dt.mul_vec_into(&self.x_prev, &mut self.hist);
                g.mul_vec_into(&self.x_prev, &mut self.gh);
                for ((r, h), gterm) in self.rhs.iter_mut().zip(&self.hist).zip(&self.gh) {
                    *r += 2.0 * h - gterm;
                }
            }
        }
        lu.solve_into(&self.rhs, &mut self.x);
        if let Some(index) = self.x.iter().position(|v| !v.is_finite()) {
            // Divergence guard: rewind the scratch solution so observers
            // keep reading the last accepted state.
            self.x.copy_from_slice(&self.x_prev);
            return Err(ElnError::NonFiniteSolution {
                time: self.time,
                index,
            });
        }
        self.x_prev.copy_from_slice(&self.x);
        self.prev_source_values.copy_from_slice(&self.source_values);
        self.time += self.net.dt;
        self.steps += 1;
        Ok(())
    }

    /// Number of MNA unknowns (diagnostics).
    pub fn dim(&self) -> usize {
        self.x.len()
    }

    /// Number of node-voltage unknowns.
    pub fn node_unknowns(&self) -> usize {
        self.net.n_nodes
    }
}

impl Drop for ElnSolver {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

/// Stamps the conductance and capacitance matrices for the component set,
/// with switches contributing `1/ron` or `1/roff` per their state.
fn stamp_matrices(
    components: &[Component],
    branch_of: &[Option<usize>],
    dim: usize,
    switches: &[ComponentId],
    switch_closed: &[bool],
) -> (Matrix, Matrix) {
    let mut g = Matrix::zeros(dim, dim);
    let mut c_mat = Matrix::zeros(dim, dim);
    let idx = |n: NodeId| -> Option<usize> { (n.0 >= 0).then_some(n.0 as usize) };
    let stamp = |m: &mut Matrix, r: Option<usize>, col: Option<usize>, v: f64| {
        if let (Some(r), Some(c)) = (r, col) {
            m.stamp(r, c, v);
        }
    };
    let stamp_conductance = |g: &mut Matrix, p: NodeId, n: NodeId, gval: f64| {
        let (p, n) = (idx(p), idx(n));
        stamp(g, p, p, gval);
        stamp(g, n, n, gval);
        stamp(g, p, n, -gval);
        stamp(g, n, p, -gval);
    };

    for (i, comp) in components.iter().enumerate() {
        match *comp {
            Component::Resistor { p, n, ohms } => {
                stamp_conductance(&mut g, p, n, 1.0 / ohms);
            }
            Component::Switch {
                p, n, ron, roff, ..
            } => {
                let k = switches
                    .iter()
                    .position(|c| c.0 == i)
                    .expect("switch registered");
                let ohms = if switch_closed[k] { ron } else { roff };
                stamp_conductance(&mut g, p, n, 1.0 / ohms);
            }
            Component::Capacitor { p, n, farads } => {
                stamp_conductance(&mut c_mat, p, n, farads);
            }
            Component::Inductor { p, n, henries } => {
                let b = branch_of[i].expect("inductors get branch rows");
                let (p, n) = (idx(p), idx(n));
                // Node equations: current enters p, leaves n.
                stamp(&mut g, p, Some(b), 1.0);
                stamp(&mut g, n, Some(b), -1.0);
                // Branch equation: V(p) − V(n) − L·dI/dt = 0.
                stamp(&mut g, Some(b), p, 1.0);
                stamp(&mut g, Some(b), n, -1.0);
                c_mat.stamp(b, b, -henries);
            }
            Component::Vsource { p, n } => {
                let b = branch_of[i].expect("sources get branch rows");
                let (p, n) = (idx(p), idx(n));
                stamp(&mut g, p, Some(b), 1.0);
                stamp(&mut g, n, Some(b), -1.0);
                stamp(&mut g, Some(b), p, 1.0);
                stamp(&mut g, Some(b), n, -1.0);
                // rhs row b gets the source value at run time.
            }
            Component::Isource { .. } => {
                // Pure rhs contribution.
            }
            Component::Vcvs { p, n, cp, cn, gain } => {
                let b = branch_of[i].expect("VCVS gets a branch row");
                let (p, n) = (idx(p), idx(n));
                let (cp, cn) = (idx(cp), idx(cn));
                stamp(&mut g, p, Some(b), 1.0);
                stamp(&mut g, n, Some(b), -1.0);
                // V(p) − V(n) − gain·(V(cp) − V(cn)) = 0.
                stamp(&mut g, Some(b), p, 1.0);
                stamp(&mut g, Some(b), n, -1.0);
                stamp(&mut g, Some(b), cp, -gain);
                stamp(&mut g, Some(b), cn, gain);
            }
            Component::Vccs { p, n, cp, cn, gm } => {
                let (p, n) = (idx(p), idx(n));
                let (cp, cn) = (idx(cp), idx(cn));
                stamp(&mut g, p, cp, gm);
                stamp(&mut g, p, cn, -gm);
                stamp(&mut g, n, cp, -gm);
                stamp(&mut g, n, cn, gm);
            }
        }
    }
    (g, c_mat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rc() -> (ElnNetwork, SourceId, crate::NodeId) {
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let out = net.node("out");
        let v = net.vsource("vin", a, ElnNetwork::GROUND);
        net.resistor("r", a, out, 5e3);
        net.capacitor("c", out, ElnNetwork::GROUND, 25e-9);
        (net, v, out)
    }

    #[test]
    fn rc_step_response_backward_euler() {
        let (net, v, out) = rc();
        let tau = 5e3 * 25e-9;
        let mut s = Transient::new(&net)
            .dt(tau / 1000.0)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(v, 1.0);
        for _ in 0..1000 {
            s.try_step().unwrap();
        }
        let analytic = 1.0 - (-1.0_f64).exp();
        assert!((s.node_voltage(out) - analytic).abs() < 1e-3);
        assert_eq!(s.steps(), 1000);
        assert!((s.time() - tau).abs() < 1e-12);
    }

    #[test]
    fn trapezoidal_beats_backward_euler_on_sine() {
        let (net, v, out) = rc();
        let tau = 5e3 * 25e-9;
        let omega = 2.0 * std::f64::consts::PI / (20.0 * tau);
        let dt = tau / 50.0;
        let steps = 4000;
        // Analytic steady-state response of the low-pass.
        let gain = 1.0 / (1.0 + (omega * tau).powi(2)).sqrt();
        let phase = -(omega * tau).atan();

        let run = |method: Method| {
            let mut s = Transient::new(&net).dt(dt).method(method).build().unwrap();
            let mut err: f64 = 0.0;
            for k in 0..steps {
                let t = (k + 1) as f64 * dt;
                s.set_source(v, (omega * t).sin());
                s.try_step().unwrap();
                if k > steps / 2 {
                    let expect = gain * (omega * t + phase).sin();
                    err = err.max((s.node_voltage(out) - expect).abs());
                }
            }
            err
        };
        let be = run(Method::BackwardEuler);
        let tr = run(Method::Trapezoidal);
        assert!(
            tr < be / 5.0,
            "trapezoidal ({tr:.2e}) must beat backward Euler ({be:.2e})"
        );
    }

    #[test]
    fn resistive_divider_is_exact() {
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let mid = net.node("mid");
        let v = net.vsource("vin", a, ElnNetwork::GROUND);
        let rtop = net.resistor("r1", a, mid, 1e3);
        net.resistor("r2", mid, ElnNetwork::GROUND, 3e3);
        let mut s = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(v, 4.0);
        s.try_step().unwrap();
        assert!((s.node_voltage(mid) - 3.0).abs() < 1e-12);
        // Source current flows from + through the circuit: 1 mA.
        let i = s.branch_current(rtop);
        assert_eq!(i, None, "resistors carry no explicit branch unknown");
        assert_eq!(s.node_unknowns(), 2);
    }

    #[test]
    fn vcvs_inverting_amplifier() {
        // in —R1— inm —R2— out, out driven by VCVS −1e5·V(inm).
        let mut net = ElnNetwork::new();
        let inp = net.node("in");
        let inm = net.node("inm");
        let out = net.node("out");
        let v = net.vsource("vin", inp, ElnNetwork::GROUND);
        net.resistor("r1", inp, inm, 1e3);
        net.resistor("r2", inm, out, 4e3);
        net.vcvs("op", out, ElnNetwork::GROUND, ElnNetwork::GROUND, inm, 1e5);
        let mut s = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(v, 1.0);
        s.try_step().unwrap();
        assert!((s.node_voltage(out) + 4.0).abs() < 1e-3, "gain −R2/R1");
    }

    #[test]
    fn vccs_converts_voltage_to_current() {
        // gm·V(in) into a load resistor: V(out) = −gm·R·V(in).
        let mut net = ElnNetwork::new();
        let inp = net.node("in");
        let out = net.node("out");
        let v = net.vsource("vin", inp, ElnNetwork::GROUND);
        net.vccs("g", out, ElnNetwork::GROUND, inp, ElnNetwork::GROUND, 1e-3);
        net.resistor("rl", out, ElnNetwork::GROUND, 2e3);
        let mut s = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(v, 1.0);
        s.try_step().unwrap();
        assert!((s.node_voltage(out) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn rl_circuit_current_rises() {
        // V —R—L— gnd: i(t) = V/R (1 − e^{−tR/L}).
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let b = net.node("b");
        let v = net.vsource("vin", a, ElnNetwork::GROUND);
        net.resistor("r", a, b, 100.0);
        let l = net.inductor("l", b, ElnNetwork::GROUND, 1e-3);
        let tau = 1e-3 / 100.0;
        let mut s = Transient::new(&net)
            .dt(tau / 1000.0)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(v, 1.0);
        for _ in 0..1000 {
            s.try_step().unwrap();
        }
        let i = s.branch_current(l).unwrap();
        let analytic = (1.0 / 100.0) * (1.0 - (-1.0_f64).exp());
        assert!((i - analytic).abs() < 1e-5, "{i} vs {analytic}");
    }

    #[test]
    fn switch_toggles_divider_ratio() {
        // vin —switch— out —rl— gnd: closed ⇒ divider, open ⇒ out ≈ 0.
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let out = net.node("out");
        let v = net.vsource("vin", a, ElnNetwork::GROUND);
        let sw = net.switch("sw", a, out, 1e3, 1e9, true);
        net.resistor("rl", out, ElnNetwork::GROUND, 1e3);
        let mut s = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(v, 2.0);
        s.try_step().unwrap();
        assert!((s.node_voltage(out) - 1.0).abs() < 1e-9, "closed: half");
        assert!(s.switch_closed(sw));
        s.set_switch(sw, false).unwrap();
        s.try_step().unwrap();
        assert!(s.node_voltage(out).abs() < 1e-5, "open: pulled to ground");
        assert_eq!(s.refactorizations(), 1);
        // Toggling to the same state is free.
        s.set_switch(sw, false).unwrap();
        assert_eq!(s.refactorizations(), 1);
        s.set_switch(sw, true).unwrap();
        s.try_step().unwrap();
        assert!((s.node_voltage(out) - 1.0).abs() < 1e-9, "closed again");
        assert_eq!(s.refactorizations(), 2);
    }

    #[test]
    fn failed_switch_toggle_recovers_and_matches_untoggled_run() {
        // vin —sw(closed)— out, with `out` reachable only through the
        // switch: an ideal open (roff = ∞) leaves `out` floating, so the
        // toggle must fail — and must not poison the solver. Regression
        // for the copy-on-toggle revert path: after the failure the run
        // must stay bit-identical to a sibling that never toggled.
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let out = net.node("out");
        let v = net.vsource("vin", a, ElnNetwork::GROUND);
        let sw = net.switch("sw", a, out, 1e3, f64::INFINITY, true);
        let compiled = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .compile()
            .unwrap();
        let mut toggled = compiled.instance();
        let mut pristine = compiled.instance();
        for k in 0..5 {
            let u = 0.25 * k as f64;
            toggled.set_source(v, u);
            pristine.set_source(v, u);
            toggled.try_step().unwrap();
            pristine.try_step().unwrap();
        }
        let err = toggled
            .set_switch(sw, false)
            .expect_err("ideal open on a floating node must be singular");
        assert!(matches!(err, ElnError::Singular(_)), "{err}");
        assert!(
            toggled.switch_closed(sw),
            "failed toggle must restore the previous switch state"
        );
        assert_eq!(
            toggled.refactorizations(),
            0,
            "a reverted toggle is not a refactorization"
        );
        for k in 0..20 {
            let u = if k % 2 == 0 { 1.5 } else { -0.5 };
            toggled.set_source(v, u);
            pristine.set_source(v, u);
            toggled.try_step().unwrap();
            pristine.try_step().unwrap();
            assert_eq!(
                toggled.node_voltage(out).to_bits(),
                pristine.node_voltage(out).to_bits(),
                "step {k}: recovered run diverged from the untoggled sibling"
            );
        }
        assert_eq!(toggled.steps(), pristine.steps());
    }

    #[test]
    fn non_finite_source_is_a_typed_error_and_state_survives() {
        let (net, v, out) = rc();
        let mut s = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();
        s.set_source(v, 1.0);
        for _ in 0..10 {
            s.try_step().unwrap();
        }
        let v_before = s.node_voltage(out);
        let (t_before, n_before) = (s.time(), s.steps());
        s.set_source(v, f64::NAN);
        let err = s.try_step().expect_err("NaN excitation must fail");
        assert!(matches!(err, ElnError::NonFiniteSolution { .. }), "{err}");
        // The failed solve neither advanced time nor touched the state.
        assert_eq!(s.node_voltage(out).to_bits(), v_before.to_bits());
        assert_eq!(s.time(), t_before);
        assert_eq!(s.steps(), n_before);
        // The solver recovers once the excitation is sane again.
        s.set_source(v, 1.0);
        s.try_step().expect("solver must recover after the rewind");
        assert_eq!(s.steps(), n_before + 1);
    }

    #[test]
    fn compiled_net_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledNet>();
        assert_send_sync::<Arc<CompiledNet>>();
        fn assert_send<T: Send>() {}
        assert_send::<ElnSolver>();
    }

    #[test]
    fn instances_match_monolithic_build() {
        // compile() + instance() must reproduce build() bit for bit.
        let (net, v, out) = rc();
        let mut whole = Transient::new(&net)
            .dt(1e-7)
            .method(Method::Trapezoidal)
            .build()
            .unwrap();
        let compiled = Transient::new(&net)
            .dt(1e-7)
            .method(Method::Trapezoidal)
            .compile()
            .unwrap();
        let mut inst = compiled.instance();
        for k in 0..200 {
            let u = if (k / 40) % 2 == 0 { 1.0 } else { -0.5 };
            whole.set_source(v, u);
            inst.set_source(v, u);
            whole.try_step().unwrap();
            inst.try_step().unwrap();
            assert_eq!(
                whole.node_voltage(out).to_bits(),
                inst.node_voltage(out).to_bits()
            );
        }
        assert_eq!(compiled.dim(), whole.dim());
        assert_eq!(compiled.node_unknowns(), whole.node_unknowns());
    }

    #[test]
    fn switch_toggle_is_per_instance() {
        // A toggle in one run must not leak into siblings sharing the
        // compiled net (copy-on-toggle).
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let out = net.node("out");
        let v = net.vsource("vin", a, ElnNetwork::GROUND);
        let sw = net.switch("sw", a, out, 1e3, 1e9, true);
        net.resistor("rl", out, ElnNetwork::GROUND, 1e3);
        let compiled = Transient::new(&net).dt(1e-6).compile().unwrap();
        let mut toggled = compiled.instance();
        let mut untouched = compiled.instance();
        toggled.set_source(v, 2.0);
        untouched.set_source(v, 2.0);
        toggled.set_switch(sw, false).unwrap();
        toggled.try_step().unwrap();
        untouched.try_step().unwrap();
        assert!(toggled.node_voltage(out).abs() < 1e-5, "open: pulled down");
        assert!(
            (untouched.node_voltage(out) - 1.0).abs() < 1e-9,
            "sibling still sees the closed switch"
        );
        assert_eq!(toggled.refactorizations(), 1);
        assert_eq!(untouched.refactorizations(), 0);
        // And a fresh instance still starts from the compiled state.
        let mut fresh = compiled.instance();
        fresh.set_source(v, 2.0);
        fresh.try_step().unwrap();
        assert!((fresh.node_voltage(out) - 1.0).abs() < 1e-9);
    }

    /// The deprecated panicking wrapper stays behaviorally identical to
    /// `try_step` on healthy networks — downstream code migrating off it
    /// must not observe a numeric change.
    #[test]
    #[allow(deprecated)]
    fn deprecated_step_shim_matches_try_step() {
        let (net, v, out) = rc();
        let mut legacy = Transient::new(&net).dt(1e-6).build().unwrap();
        let mut typed = Transient::new(&net).dt(1e-6).build().unwrap();
        legacy.set_source(v, 1.0);
        typed.set_source(v, 1.0);
        for _ in 0..50 {
            legacy.step();
            typed.try_step().unwrap();
        }
        assert_eq!(
            legacy.node_voltage(out).to_bits(),
            typed.node_voltage(out).to_bits()
        );
    }

    #[test]
    fn construction_errors() {
        let (net, _, _) = rc();
        assert!(matches!(
            Transient::new(&net)
                .dt(0.0)
                .method(Method::BackwardEuler)
                .build(),
            Err(ElnError::InvalidTimeStep(_))
        ));
        assert!(matches!(
            Transient::new(&ElnNetwork::new()).dt(1e-9).build(),
            Err(ElnError::Empty)
        ));
        // Floating node → singular.
        let mut bad = ElnNetwork::new();
        let a = bad.node("a");
        let b = bad.node("b");
        bad.resistor("r", a, b, 1e3); // no ground reference at all
        let err = Transient::new(&bad)
            .dt(1e-9)
            .method(Method::BackwardEuler)
            .build()
            .unwrap_err();
        assert!(matches!(err, ElnError::Singular(_)));
        assert!(err.to_string().contains("singular"));
    }
}
