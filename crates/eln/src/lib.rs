//! An electrical-linear-network (ELN) solver modeled after
//! SystemC-AMS/ELN — the conservative reference integration level of the
//! paper's Tables I–III.
//!
//! An [`ElnNetwork`] is built from predefined primitives (resistors,
//! capacitors, inductors, independent and controlled sources), exactly like
//! SystemC-AMS ELN instantiates `sca_eln::sca_r`, `sca_c`, …. The
//! [`ElnSolver`] assembles the modified-nodal-analysis (MNA) system
//! `G·x + C·ẋ = b(t)`, discretizes it with backward Euler or the
//! trapezoidal rule at a fixed time step, LU-factors the (constant) system
//! matrix once, and then performs one linear solve per step.
//!
//! [`ElnProcess`] embeds a solver in the discrete-event kernel so the
//! network advances in lockstep with digital models — the cost structure
//! that makes ELN the slowest single-kernel level in the paper's tables.
//!
//! # Example
//!
//! ```
//! use amsvp_eln::{ElnNetwork, Method, Transient};
//!
//! // A 5 kΩ / 25 nF low-pass driven by a 1 V source.
//! let mut net = ElnNetwork::new();
//! let inp = net.node("in");
//! let out = net.node("out");
//! let vin = net.vsource("vin", inp, ElnNetwork::GROUND);
//! net.resistor("r", inp, out, 5e3);
//! net.capacitor("c", out, ElnNetwork::GROUND, 25e-9);
//!
//! let tau = 5e3 * 25e-9;
//! let mut solver = Transient::new(&net).dt(tau / 100.0).build()?;
//! solver.set_source(vin, 1.0);
//! for _ in 0..100 {
//!     solver.try_step()?;
//! }
//! let analytic = 1.0 - (-1.0_f64).exp();
//! assert!((solver.node_voltage(out) - analytic).abs() < 5e-3);
//! # Ok::<(), amsvp_eln::ElnError>(())
//! ```

mod network;
mod process;
mod solver;

pub use network::{ComponentId, ElnNetwork, NodeId, SourceId, SwitchId};
pub use process::ElnProcess;
pub use solver::{CompiledNet, ElnError, ElnSnapshot, ElnSolver, Method, Transient};

// Re-exported so call sites can pick a backend via [`Transient::solver`]
// without depending on the linalg crate directly.
pub use linalg::SolverKind;
