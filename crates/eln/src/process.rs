//! Embedding of an ELN solver into the discrete-event kernel.
//!
//! SystemC-AMS runs its conservative clusters inside the SystemC
//! scheduler; [`ElnProcess`] reproduces that arrangement: a DE process that
//! wakes every solver time step, samples its input signals into the
//! network's sources, advances the MNA solution, and publishes observed
//! node voltages back to DE signals.

use de::{ProcCtx, Process, Sig, SimTime};

use crate::{ElnSolver, NodeId, SourceId};

/// A DE process advancing an [`ElnSolver`] in lockstep with the kernel.
pub struct ElnProcess {
    solver: ElnSolver,
    step: SimTime,
    /// DE signal → network source bindings.
    inputs: Vec<(Sig<f64>, SourceId)>,
    /// Observed node → DE signal bindings.
    outputs: Vec<(NodeId, Sig<f64>)>,
}

impl ElnProcess {
    /// Wraps a solver; `inputs` feed DE signals into sources before every
    /// step, `outputs` publish node voltages after every step.
    pub fn new(
        solver: ElnSolver,
        inputs: Vec<(Sig<f64>, SourceId)>,
        outputs: Vec<(NodeId, Sig<f64>)>,
    ) -> Self {
        let step = SimTime::from_seconds(solver.dt());
        ElnProcess {
            solver,
            step,
            inputs,
            outputs,
        }
    }

    /// Read-only access to the embedded solver.
    pub fn solver(&self) -> &ElnSolver {
        &self.solver
    }
}

impl Process for ElnProcess {
    fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
        for &(sig, src) in &self.inputs {
            let v = ctx.read(sig);
            self.solver.set_source(src, v);
        }
        self.solver
            .try_step()
            .unwrap_or_else(|e| panic!("eln process step failed: {e}"));
        for &(node, sig) in &self.outputs {
            ctx.write(sig, self.solver.node_voltage(node));
        }
        ctx.notify_self_after(self.step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ElnNetwork, Method, Transient};
    use de::Kernel;

    #[test]
    fn eln_advances_inside_de_kernel() {
        // RC low-pass fed by a DE-driven source.
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let out = net.node("out");
        let vin = net.vsource("vin", a, ElnNetwork::GROUND);
        net.resistor("r", a, out, 5e3);
        net.capacitor("c", out, ElnNetwork::GROUND, 25e-9);
        let tau = 5e3 * 25e-9; // 125 µs
        let dt = 1.25e-6; // τ/100
        let solver = Transient::new(&net)
            .dt(dt)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();

        let mut k = Kernel::new();
        let drive = k.signal(1.0_f64);
        let observe = k.signal(0.0_f64);
        k.register(ElnProcess::new(
            solver,
            vec![(drive, vin)],
            vec![(out, observe)],
        ));
        // Run exactly one time constant.
        k.run_until(SimTime::from_seconds(tau)).unwrap();
        let analytic = 1.0 - (-1.0_f64).exp();
        let got = k.peek(observe);
        assert!((got - analytic).abs() < 1e-2, "{got} vs {analytic}");
        // The kernel really did schedule one activation per step.
        assert!(k.activations() >= 100);
    }

    #[test]
    fn input_changes_are_tracked() {
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let vin = net.vsource("vin", a, ElnNetwork::GROUND);
        net.resistor("r", a, ElnNetwork::GROUND, 1e3);
        let solver = Transient::new(&net)
            .dt(1e-6)
            .method(Method::BackwardEuler)
            .build()
            .unwrap();

        let mut k = Kernel::new();
        let drive = k.signal(0.25_f64);
        let observe = k.signal(0.0_f64);
        k.register(ElnProcess::new(
            solver,
            vec![(drive, vin)],
            vec![(a, observe)],
        ));
        k.run_until(SimTime::us(10)).unwrap();
        assert!((k.peek(observe) - 0.25).abs() < 1e-12);
        k.poke(drive, 0.75);
        k.run_until(SimTime::us(20)).unwrap();
        assert!((k.peek(observe) - 0.75).abs() < 1e-12);
    }
}
