/// A node of the electrical network. [`ElnNetwork::GROUND`] is the
/// reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) i32);

/// Identifier of any instantiated component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(pub(crate) usize);

/// Identifier of a value-settable source (independent V or I source).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SourceId(pub(crate) usize);

/// Identifier of a digitally controlled switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SwitchId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) enum Component {
    Resistor {
        p: NodeId,
        n: NodeId,
        ohms: f64,
    },
    Capacitor {
        p: NodeId,
        n: NodeId,
        farads: f64,
    },
    Inductor {
        p: NodeId,
        n: NodeId,
        henries: f64,
    },
    /// Independent voltage source; value supplied at run time.
    Vsource {
        p: NodeId,
        n: NodeId,
    },
    /// Independent current source (flows p → n inside the source).
    Isource {
        p: NodeId,
        n: NodeId,
    },
    /// Voltage-controlled voltage source: `V(p,n) = gain · V(cp,cn)`.
    Vcvs {
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    },
    /// Voltage-controlled current source: `I(p→n) = gm · V(cp,cn)`.
    Vccs {
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    },
    /// Digitally controlled switch: a resistor toggling between `ron`
    /// (closed) and `roff` (open).
    Switch {
        p: NodeId,
        n: NodeId,
        ron: f64,
        roff: f64,
        initially_closed: bool,
    },
}

/// An electrical linear network described with predefined primitives.
#[derive(Debug, Clone, Default)]
pub struct ElnNetwork {
    pub(crate) names: Vec<String>,
    pub(crate) node_names: Vec<String>,
    pub(crate) components: Vec<Component>,
    pub(crate) sources: Vec<ComponentId>,
    pub(crate) switches: Vec<ComponentId>,
}

impl ElnNetwork {
    /// The reference (ground) node.
    pub const GROUND: NodeId = NodeId(-1);

    /// Creates an empty network.
    pub fn new() -> Self {
        ElnNetwork::default()
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Creates a named node.
    pub fn node(&mut self, name: impl Into<String>) -> NodeId {
        self.node_names.push(name.into());
        NodeId(self.node_names.len() as i32 - 1)
    }

    fn push(&mut self, name: impl Into<String>, c: Component) -> ComponentId {
        self.names.push(name.into());
        self.components.push(c);
        ComponentId(self.components.len() - 1)
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive.
    pub fn resistor(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        ohms: f64,
    ) -> ComponentId {
        assert!(ohms > 0.0, "resistance must be positive");
        self.push(name, Component::Resistor { p, n, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive.
    pub fn capacitor(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        farads: f64,
    ) -> ComponentId {
        assert!(farads > 0.0, "capacitance must be positive");
        self.push(name, Component::Capacitor { p, n, farads })
    }

    /// Adds an inductor.
    ///
    /// # Panics
    ///
    /// Panics if `henries` is not positive.
    pub fn inductor(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        henries: f64,
    ) -> ComponentId {
        assert!(henries > 0.0, "inductance must be positive");
        self.push(name, Component::Inductor { p, n, henries })
    }

    /// Adds an independent voltage source whose value is set per step via
    /// [`ElnSolver::set_source`](crate::ElnSolver::set_source).
    pub fn vsource(&mut self, name: impl Into<String>, p: NodeId, n: NodeId) -> SourceId {
        let c = self.push(name, Component::Vsource { p, n });
        self.sources.push(c);
        SourceId(self.sources.len() - 1)
    }

    /// Adds an independent current source (current flows p → n through
    /// the external circuit).
    pub fn isource(&mut self, name: impl Into<String>, p: NodeId, n: NodeId) -> SourceId {
        let c = self.push(name, Component::Isource { p, n });
        self.sources.push(c);
        SourceId(self.sources.len() - 1)
    }

    /// Adds a voltage-controlled voltage source `V(p,n) = gain·V(cp,cn)`.
    #[allow(clippy::too_many_arguments)]
    pub fn vcvs(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> ComponentId {
        self.push(name, Component::Vcvs { p, n, cp, cn, gain })
    }

    /// Adds a digitally controlled switch: `ron` ohms when closed, `roff`
    /// when open (SystemC-AMS `sca_eln::sca_de_rswitch`). Toggle it at run
    /// time with [`ElnSolver::set_switch`](crate::ElnSolver::set_switch).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ron < roff`.
    pub fn switch(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        ron: f64,
        roff: f64,
        initially_closed: bool,
    ) -> SwitchId {
        assert!(ron > 0.0 && roff > ron, "need 0 < ron < roff");
        let c = self.push(
            name,
            Component::Switch {
                p,
                n,
                ron,
                roff,
                initially_closed,
            },
        );
        self.switches.push(c);
        SwitchId(self.switches.len() - 1)
    }

    /// Adds a voltage-controlled current source `I(p→n) = gm·V(cp,cn)`.
    #[allow(clippy::too_many_arguments)]
    pub fn vccs(
        &mut self,
        name: impl Into<String>,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> ComponentId {
        self.push(name, Component::Vccs { p, n, cp, cn, gm })
    }

    /// Name of a component.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this network.
    pub fn component_name(&self, c: ComponentId) -> &str {
        &self.names[c.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counts() {
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        let b = net.node("b");
        assert_eq!(net.node_count(), 2);
        let r = net.resistor("r", a, b, 1e3);
        net.capacitor("c", b, ElnNetwork::GROUND, 1e-9);
        let v = net.vsource("vin", a, ElnNetwork::GROUND);
        assert_eq!(net.component_count(), 3);
        assert_eq!(net.component_name(r), "r");
        let _ = v;
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn negative_resistance_rejected() {
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        net.resistor("r", a, ElnNetwork::GROUND, -5.0);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_rejected() {
        let mut net = ElnNetwork::new();
        let a = net.node("a");
        net.capacitor("c", a, ElnNetwork::GROUND, 0.0);
    }
}
