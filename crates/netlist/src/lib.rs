//! Circuit topology and equation storage for the abstraction pipeline.
//!
//! Step 1 of the paper's methodology ("Acquisition", §IV-A) turns a set of
//! dipole equations into two artifacts:
//!
//! 1. a graph `G = (N, B)` of the electrical network — [`Graph`] here — and
//! 2. an "optimized data structure, i.e., a Multimap" holding the equations
//!    — [`EquationTable`] here, a hash multimap from defined quantity to the
//!    equations that can produce it, organized into *dependency classes*
//!    (the circular `nextDependent` chains of Algorithm 1 / Figure 5).
//!
//! Step 2 ("Enrichment", §IV-B) adds Kirchhoff's laws from the topology:
//! [`kcl_relations`] produces one current law per internal node
//! (NodalAnalysis) and [`kvl_relations`] one voltage law per fundamental
//! loop of a spanning tree (MeshAnalysis).
//!
//! The variable type threaded through every expression is [`Quantity`]:
//! node potentials, branch voltages, branch flows, module variables, and
//! external inputs.

mod equation;
mod error;
mod graph;
mod kirchhoff;
mod quantity;

pub use equation::{ClassId, Equation, EquationTable, Origin, Relation};
pub use error::NetlistError;
pub use graph::{BranchId, BranchRef, Graph, NodeId};
pub use kirchhoff::{kcl_relations, kvl_relations, vdef_relations};
pub use quantity::Quantity;

/// Expression over electrical quantities.
pub type QExpr = expr::Expr<Quantity>;
