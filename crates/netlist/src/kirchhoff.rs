//! Kirchhoff-law relation generators — the paper's `NodalAnalysis` and
//! `MeshAnalysis` of Algorithm 1 — plus branch-voltage definitions.

use std::collections::HashSet;

use expr::Expr;

use crate::{Graph, NodeId, Origin, QExpr, Quantity, Relation};

/// Kirchhoff current law: for every node not in `excluded`, the signed sum
/// of incident branch currents is zero (currents flow pos → neg).
///
/// `excluded` normally contains the ground node (its KCL is redundant) and
/// any node attached to an *input* port, where an unknown external current
/// enters the analog subsystem. Output ports stay included: in the paper's
/// smart-system architecture (Figure 1), analog outputs are observed by
/// high-impedance digital hardware, so no external current flows.
///
/// Worst-case complexity is O(|N|²) as every node may touch every branch.
pub fn kcl_relations(graph: &Graph, excluded: &HashSet<NodeId>) -> Vec<Relation> {
    let mut out = Vec::new();
    for n in graph.node_ids() {
        if excluded.contains(&n) {
            continue;
        }
        let incident = graph.incident(n);
        if incident.is_empty() {
            continue;
        }
        let mut sum: Option<QExpr> = None;
        for &(b, node_is_pos) in incident {
            let name = graph.branch(b).name.clone();
            let term = Expr::var(Quantity::BranchI(name));
            // Current leaving the node: +I at the positive terminal.
            let term = if node_is_pos { term } else { -term };
            sum = Some(match sum {
                None => term,
                Some(acc) => acc + term,
            });
        }
        out.push(Relation::new(
            sum.expect("nonempty incidence"),
            Origin::Kcl,
            format!("node {}", graph.node_name(n)),
        ));
    }
    out
}

/// Kirchhoff voltage law: one relation per fundamental loop of a spanning
/// tree rooted at `root`, summing signed branch voltages around the loop.
///
/// Worst-case complexity is O(|N|³) (every chord's loop can traverse the
/// whole tree).
pub fn kvl_relations(graph: &Graph, root: NodeId) -> Vec<Relation> {
    let tree = graph.spanning_tree(root);
    let mut out = Vec::new();
    for (i, cycle) in graph.fundamental_loops(&tree).into_iter().enumerate() {
        let mut sum: Option<QExpr> = None;
        for (b, forward) in cycle {
            let name = graph.branch(b).name.clone();
            let term = Expr::var(Quantity::BranchV(name));
            let term = if forward { term } else { -term };
            sum = Some(match sum {
                None => term,
                Some(acc) => acc + term,
            });
        }
        out.push(Relation::new(
            sum.expect("loops are nonempty"),
            Origin::Kvl,
            format!("loop {i}"),
        ));
    }
    out
}

/// Branch-voltage definitions: `V[b] − (V(pos) − V(neg)) = 0`, with ground
/// potentials substituted by zero.
pub fn vdef_relations(graph: &Graph, grounds: &HashSet<NodeId>) -> Vec<Relation> {
    let node_v = |n: NodeId| -> QExpr {
        if grounds.contains(&n) {
            Expr::num(0.0)
        } else {
            Expr::var(Quantity::NodeV(graph.node_name(n).to_string()))
        }
    };
    graph
        .branch_ids()
        .map(|b| {
            let br = graph.branch(b);
            let zero =
                Expr::var(Quantity::BranchV(br.name.clone())) - (node_v(br.pos) - node_v(br.neg));
            Relation::new(
                zero.simplified(),
                Origin::VDef,
                format!("branch {}", br.name),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// in --r-- out --c-- gnd
    fn rc() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let i = g.add_node("in").unwrap();
        let o = g.add_node("out").unwrap();
        let gnd = g.add_node("gnd").unwrap();
        g.add_branch("r", i, o).unwrap();
        g.add_branch("c", o, gnd).unwrap();
        (g, i, o, gnd)
    }

    #[test]
    fn kcl_at_internal_node_only() {
        let (g, i, _, gnd) = rc();
        let excluded: HashSet<_> = [i, gnd].into_iter().collect();
        let rels = kcl_relations(&g, &excluded);
        assert_eq!(rels.len(), 1);
        let r = &rels[0];
        assert_eq!(r.origin, Origin::Kcl);
        assert!(r.label.contains("out"));
        // At `out`: r enters (out is neg terminal → −I[r]), c leaves (+I[c]).
        // Evaluate with I[r]=2, I[c]=2 → −2+2 = 0.
        let v = r
            .zero
            .eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchI(n) if n == "r" => Some(2.0),
                Quantity::BranchI(n) if n == "c" => Some(2.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn kcl_balances_on_star_node() {
        // Three branches meeting at m with mixed orientations.
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let m = g.add_node("m").unwrap();
        let b = g.add_node("b").unwrap();
        let c = g.add_node("c").unwrap();
        g.add_branch("b1", a, m).unwrap(); // into m
        g.add_branch("b2", m, b).unwrap(); // out of m
        g.add_branch("b3", c, m).unwrap(); // into m
        let excluded: HashSet<_> = [a, b, c].into_iter().collect();
        let rels = kcl_relations(&g, &excluded);
        assert_eq!(rels.len(), 1);
        // −I1 + I2 − I3 = 0 with I1=1, I3=2 ⇒ I2=3 balances.
        let v = rels[0]
            .zero
            .eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchI(n) if n == "b1" => Some(1.0),
                Quantity::BranchI(n) if n == "b2" => Some(3.0),
                Quantity::BranchI(n) if n == "b3" => Some(2.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn kvl_empty_for_tree_circuits() {
        let (g, _, _, gnd) = rc();
        assert!(kvl_relations(&g, gnd).is_empty(), "RC line has no loops");
    }

    #[test]
    fn kvl_for_triangle_sums_to_zero() {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let gnd = g.add_node("gnd").unwrap();
        g.add_branch("e1", a, b).unwrap();
        g.add_branch("e2", b, gnd).unwrap();
        g.add_branch("e3", a, gnd).unwrap();
        let rels = kvl_relations(&g, gnd);
        assert_eq!(rels.len(), 1);
        // Assign physical potentials: Va=5, Vb=3, Vgnd=0.
        // V[e1]=2, V[e2]=3, V[e3]=5 — KVL must vanish.
        let v = rels[0]
            .zero
            .eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchV(n) if n == "e1" => Some(2.0),
                Quantity::BranchV(n) if n == "e2" => Some(3.0),
                Quantity::BranchV(n) if n == "e3" => Some(5.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 0.0);
    }

    #[test]
    fn vdef_substitutes_ground() {
        let (g, _, _, gnd) = rc();
        let grounds: HashSet<_> = [gnd].into_iter().collect();
        let rels = vdef_relations(&g, &grounds);
        assert_eq!(rels.len(), 2);
        // V[c] − V(out) = 0 (gnd folded to zero).
        let cap = rels.iter().find(|r| r.label == "branch c").unwrap();
        let vars = cap.zero.variables();
        assert!(vars.contains(&Quantity::branch_v("c")));
        assert!(vars.contains(&Quantity::node_v("out")));
        assert!(!vars.iter().any(|q| q.name() == "gnd"));
        let v = cap
            .zero
            .eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchV(n) if n == "c" => Some(7.0),
                Quantity::NodeV(n) if n == "out" => Some(7.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 0.0);
    }
}
