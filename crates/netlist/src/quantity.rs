use std::fmt;

/// An electrical (or auxiliary) quantity — the variable type of every
/// expression in the abstraction pipeline.
///
/// Node potentials are always referenced to ground, so Kirchhoff's voltage
/// law around any loop that the `vdef` relations close is satisfied by
/// construction; explicit KVL mesh equations are *additionally* generated to
/// enrich the solving chains, exactly as the paper's Algorithm 1 does.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Quantity {
    /// Potential of a named node with respect to ground.
    NodeV(String),
    /// Voltage across a named branch (pos − neg).
    BranchV(String),
    /// Current through a named branch (flowing pos → neg).
    BranchI(String),
    /// A module-level `real` variable or named intermediate.
    Var(String),
    /// An external input signal (stimulus or digital-to-analog value).
    Input(String),
}

impl Quantity {
    /// Potential of node `n`.
    pub fn node_v(n: impl Into<String>) -> Self {
        Quantity::NodeV(n.into())
    }

    /// Voltage across branch `b`.
    pub fn branch_v(b: impl Into<String>) -> Self {
        Quantity::BranchV(b.into())
    }

    /// Current through branch `b`.
    pub fn branch_i(b: impl Into<String>) -> Self {
        Quantity::BranchI(b.into())
    }

    /// Module variable `name`.
    pub fn var(name: impl Into<String>) -> Self {
        Quantity::Var(name.into())
    }

    /// External input `name`.
    pub fn input(name: impl Into<String>) -> Self {
        Quantity::Input(name.into())
    }

    /// Whether this quantity is an external input (a leaf the abstraction
    /// never tries to define).
    pub fn is_input(&self) -> bool {
        matches!(self, Quantity::Input(_))
    }

    /// The underlying name, whatever the kind.
    pub fn name(&self) -> &str {
        match self {
            Quantity::NodeV(s)
            | Quantity::BranchV(s)
            | Quantity::BranchI(s)
            | Quantity::Var(s)
            | Quantity::Input(s) => s,
        }
    }

    /// A short, identifier-safe rendering used by code generators
    /// (`v_node_out`, `i_cap`, ...).
    pub fn mangle(&self) -> String {
        match self {
            Quantity::NodeV(s) => format!("v_node_{s}"),
            Quantity::BranchV(s) => format!("v_{s}"),
            Quantity::BranchI(s) => format!("i_{s}"),
            Quantity::Var(s) => format!("var_{s}"),
            Quantity::Input(s) => format!("in_{s}"),
        }
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantity::NodeV(s) => write!(f, "V({s})"),
            Quantity::BranchV(s) => write!(f, "V[{s}]"),
            Quantity::BranchI(s) => write!(f, "I[{s}]"),
            Quantity::Var(s) => write!(f, "{s}"),
            Quantity::Input(s) => write!(f, "in:{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_distinguishes_kinds() {
        assert_eq!(Quantity::node_v("out").to_string(), "V(out)");
        assert_eq!(Quantity::branch_v("res").to_string(), "V[res]");
        assert_eq!(Quantity::branch_i("res").to_string(), "I[res]");
        assert_eq!(Quantity::var("x").to_string(), "x");
        assert_eq!(Quantity::input("vin").to_string(), "in:vin");
    }

    #[test]
    fn mangle_is_identifier_safe() {
        for q in [
            Quantity::node_v("n1"),
            Quantity::branch_v("b"),
            Quantity::branch_i("b"),
            Quantity::var("y"),
            Quantity::input("u"),
        ] {
            let m = q.mangle();
            assert!(m.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
        // Different kinds over the same name must not collide.
        assert_ne!(
            Quantity::branch_v("b").mangle(),
            Quantity::branch_i("b").mangle()
        );
    }

    #[test]
    fn input_predicate_and_name() {
        assert!(Quantity::input("u").is_input());
        assert!(!Quantity::node_v("u").is_input());
        assert_eq!(Quantity::branch_i("cap").name(), "cap");
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = [
            Quantity::input("a"),
            Quantity::node_v("a"),
            Quantity::branch_i("a"),
            Quantity::branch_v("a"),
            Quantity::var("a"),
        ];
        v.sort();
        assert_eq!(v[0], Quantity::node_v("a"));
        assert_eq!(v.last(), Some(&Quantity::input("a")));
    }
}
