use std::collections::HashMap;

use crate::NetlistError;

/// Index of a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Index of a branch in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(pub usize);

/// A branch record: a named, oriented edge between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchRef {
    /// Branch name (unique within the graph).
    pub name: String,
    /// Positive terminal.
    pub pos: NodeId,
    /// Negative terminal.
    pub neg: NodeId,
}

/// The circuit graph `G = (N, B)` built by the acquisition step.
///
/// Nodes are named electrical nets; branches are oriented edges carrying a
/// flow (current) from `pos` to `neg` and a potential difference
/// `V(pos) − V(neg)`.
///
/// # Example
///
/// ```
/// use amsvp_netlist::Graph;
///
/// let mut g = Graph::new();
/// let a = g.add_node("a")?;
/// let gnd = g.add_node("gnd")?;
/// let r = g.add_branch("r1", a, gnd)?;
/// assert_eq!(g.node_count(), 2);
/// assert_eq!(g.branch(r).name, "r1");
/// # Ok::<(), amsvp_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    nodes: Vec<String>,
    branches: Vec<BranchRef>,
    node_index: HashMap<String, NodeId>,
    branch_index: HashMap<String, BranchId>,
    /// For each node: (branch, node-is-positive-terminal).
    incidence: Vec<Vec<(BranchId, bool)>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes `|N|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of branches `|B|`.
    pub fn branch_count(&self) -> usize {
        self.branches.len()
    }

    /// Adds a node, failing on duplicates.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateNode`] if the name already exists.
    pub fn add_node(&mut self, name: impl Into<String>) -> Result<NodeId, NetlistError> {
        let name = name.into();
        if self.node_index.contains_key(&name) {
            return Err(NetlistError::DuplicateNode(name));
        }
        let id = NodeId(self.nodes.len());
        self.node_index.insert(name.clone(), id);
        self.nodes.push(name);
        self.incidence.push(Vec::new());
        Ok(id)
    }

    /// Adds a node if absent, returning the existing id otherwise.
    pub fn ensure_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        if let Some(&id) = self.node_index.get(&name) {
            return id;
        }
        self.add_node(name).expect("checked for duplicates")
    }

    /// Adds an oriented branch between existing nodes.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DuplicateBranch`] if the name already exists.
    pub fn add_branch(
        &mut self,
        name: impl Into<String>,
        pos: NodeId,
        neg: NodeId,
    ) -> Result<BranchId, NetlistError> {
        let name = name.into();
        if self.branch_index.contains_key(&name) {
            return Err(NetlistError::DuplicateBranch(name));
        }
        let id = BranchId(self.branches.len());
        self.branch_index.insert(name.clone(), id);
        self.branches.push(BranchRef { name, pos, neg });
        self.incidence[pos.0].push((id, true));
        self.incidence[neg.0].push((id, false));
        Ok(id)
    }

    /// Looks a node up by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(name).copied()
    }

    /// Looks a branch up by name.
    pub fn branch_id(&self, name: &str) -> Option<BranchId> {
        self.branch_index.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0]
    }

    /// Branch record.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn branch(&self, id: BranchId) -> &BranchRef {
        &self.branches[id.0]
    }

    /// Iterates node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates branch ids.
    pub fn branch_ids(&self) -> impl Iterator<Item = BranchId> {
        (0..self.branches.len()).map(BranchId)
    }

    /// Branches incident to a node, with `true` when the node is the
    /// positive terminal.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph.
    pub fn incident(&self, n: NodeId) -> &[(BranchId, bool)] {
        &self.incidence[n.0]
    }

    /// Checks that every node touching a branch is reachable from `root`.
    /// Isolated nodes (no incident branches — e.g. the input terminal of a
    /// purely signal-flow module) are allowed.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Disconnected`] naming an unreachable branch-bearing
    /// node.
    pub fn check_connected(&self, root: NodeId) -> Result<(), NetlistError> {
        let visited = self.reachable_from(root);
        if let Some(i) = visited
            .iter()
            .enumerate()
            .position(|(i, v)| !v && !self.incidence[i].is_empty())
        {
            return Err(NetlistError::Disconnected(self.nodes[i].clone()));
        }
        Ok(())
    }

    fn reachable_from(&self, root: NodeId) -> Vec<bool> {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        visited[root.0] = true;
        while let Some(n) = stack.pop() {
            for &(b, _) in &self.incidence[n.0] {
                let br = &self.branches[b.0];
                for next in [br.pos, br.neg] {
                    if !visited[next.0] {
                        visited[next.0] = true;
                        stack.push(next);
                    }
                }
            }
        }
        visited
    }

    /// Computes a BFS spanning tree rooted at `root`.
    ///
    /// Returns, for each node, the tree branch connecting it toward the
    /// root (`None` for the root itself and unreachable nodes), plus the
    /// set of tree branches.
    pub fn spanning_tree(&self, root: NodeId) -> SpanningTree {
        let mut parent_edge: Vec<Option<(BranchId, NodeId)>> = vec![None; self.nodes.len()];
        let mut in_tree = vec![false; self.branches.len()];
        let mut visited = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        visited[root.0] = true;
        queue.push_back(root);
        while let Some(n) = queue.pop_front() {
            for &(b, _) in &self.incidence[n.0] {
                let br = &self.branches[b.0];
                let other = if br.pos == n { br.neg } else { br.pos };
                if !visited[other.0] {
                    visited[other.0] = true;
                    in_tree[b.0] = true;
                    parent_edge[other.0] = Some((b, n));
                    queue.push_back(other);
                }
            }
        }
        SpanningTree {
            root,
            parent_edge,
            in_tree,
        }
    }

    /// Fundamental loops of the graph with respect to a spanning tree:
    /// one loop per non-tree (chord) branch. Each loop is a list of
    /// `(branch, same_orientation)` pairs, traversed in the direction of
    /// the chord (pos → neg).
    pub fn fundamental_loops(&self, tree: &SpanningTree) -> Vec<Vec<(BranchId, bool)>> {
        let mut loops = Vec::new();
        for (i, br) in self.branches.iter().enumerate() {
            let b = BranchId(i);
            if tree.in_tree[i] {
                continue;
            }
            // Loop: chord pos→neg, then tree path neg→pos.
            let mut cycle = vec![(b, true)];
            let path = tree.path(self, br.neg, br.pos);
            cycle.extend(path);
            loops.push(cycle);
        }
        loops
    }
}

/// A spanning tree produced by [`Graph::spanning_tree`].
#[derive(Debug, Clone)]
pub struct SpanningTree {
    root: NodeId,
    /// For each node: the branch and parent node toward the root.
    parent_edge: Vec<Option<(BranchId, NodeId)>>,
    in_tree: Vec<bool>,
}

impl SpanningTree {
    /// Whether a branch belongs to the tree.
    pub fn contains(&self, b: BranchId) -> bool {
        self.in_tree[b.0]
    }

    /// Tree root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The tree path from `from` to `to`, as `(branch, same_orientation)`
    /// pairs where `same_orientation` means the traversal direction equals
    /// the branch's pos→neg direction.
    ///
    /// # Panics
    ///
    /// Panics if either node is unreachable from the root.
    pub fn path(&self, graph: &Graph, from: NodeId, to: NodeId) -> Vec<(BranchId, bool)> {
        // Walk both nodes up to the root recording their ancestor chains,
        // then splice at the lowest common ancestor.
        let chain = |mut n: NodeId| {
            let mut up = Vec::new();
            while let Some((b, parent)) = self.parent_edge[n.0] {
                up.push((n, b, parent));
                n = parent;
            }
            assert_eq!(n, self.root, "node unreachable from spanning-tree root");
            up
        };
        let from_chain = chain(from);
        let to_chain = chain(to);
        // Depths to root; find first common node.
        let mut from_nodes: Vec<NodeId> = std::iter::once(from)
            .chain(from_chain.iter().map(|&(_, _, p)| p))
            .collect();
        let to_nodes: Vec<NodeId> = std::iter::once(to)
            .chain(to_chain.iter().map(|&(_, _, p)| p))
            .collect();
        let common = *from_nodes
            .iter()
            .find(|n| to_nodes.contains(n))
            .expect("same tree ⇒ common ancestor exists");
        from_nodes.clear();

        let mut out = Vec::new();
        // from → common (downward segments in `from_chain` order).
        for &(child, b, parent) in &from_chain {
            let br = graph.branch(b);
            // Traversal child → parent; orientation matches if child is pos.
            out.push((b, br.pos == child));
            if parent == common {
                break;
            }
            let _ = child;
        }
        if from == common {
            out.clear();
        }
        // common → to: collect to_chain up to common, then reverse.
        let mut down = Vec::new();
        for &(_child, b, parent) in &to_chain {
            let br = graph.branch(b);
            // Traversal parent → child; orientation matches if parent is pos.
            down.push((b, br.pos == parent));
            if parent == common {
                break;
            }
        }
        if to != common {
            down.reverse();
            out.extend(down);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a --r1-- b --r2-- gnd, plus chord c1 from a to gnd.
    fn triangle() -> (Graph, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        let b = g.add_node("b").unwrap();
        let gnd = g.add_node("gnd").unwrap();
        g.add_branch("r1", a, b).unwrap();
        g.add_branch("r2", b, gnd).unwrap();
        g.add_branch("c1", a, gnd).unwrap();
        (g, a, b, gnd)
    }

    #[test]
    fn build_and_lookup() {
        let (g, a, _, _) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.branch_count(), 3);
        assert_eq!(g.node_id("a"), Some(a));
        assert_eq!(g.node_id("zz"), None);
        let r1 = g.branch_id("r1").unwrap();
        assert_eq!(g.branch(r1).pos, a);
        assert_eq!(g.node_name(a), "a");
    }

    #[test]
    fn duplicates_rejected() {
        let mut g = Graph::new();
        let a = g.add_node("a").unwrap();
        assert_eq!(
            g.add_node("a"),
            Err(NetlistError::DuplicateNode("a".into()))
        );
        let b = g.add_node("b").unwrap();
        g.add_branch("x", a, b).unwrap();
        assert_eq!(
            g.add_branch("x", b, a),
            Err(NetlistError::DuplicateBranch("x".into()))
        );
        assert_eq!(g.ensure_node("a"), a);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn incidence_signs() {
        let (g, a, _, _) = triangle();
        let inc = g.incident(a);
        assert_eq!(inc.len(), 2);
        // `a` is the positive terminal of both r1 and c1.
        assert!(inc.iter().all(|&(_, pos)| pos));
    }

    #[test]
    fn connectivity_check() {
        let (g, _, _, gnd) = triangle();
        assert!(g.check_connected(gnd).is_ok());
        // Isolated nodes (no incident branches) are allowed...
        let mut g2 = g.clone();
        g2.add_node("island").unwrap();
        assert!(g2.check_connected(gnd).is_ok());
        // ...but a branch-bearing disconnected component is not.
        let mut g3 = g2.clone();
        let far = g3.add_node("far").unwrap();
        let island = g3.node_id("island").unwrap();
        g3.add_branch("floating", island, far).unwrap();
        assert_eq!(
            g3.check_connected(gnd),
            Err(NetlistError::Disconnected("island".into()))
        );
    }

    #[test]
    fn spanning_tree_covers_all_nodes() {
        let (g, _, _, gnd) = triangle();
        let t = g.spanning_tree(gnd);
        let tree_branches = g.branch_ids().filter(|&b| t.contains(b)).count();
        assert_eq!(tree_branches, g.node_count() - 1);
        assert_eq!(t.root(), gnd);
    }

    #[test]
    fn fundamental_loop_of_triangle() {
        let (g, _, _, gnd) = triangle();
        let t = g.spanning_tree(gnd);
        let loops = g.fundamental_loops(&t);
        assert_eq!(loops.len(), 1, "3 branches, 2 tree edges ⇒ 1 chord");
        let cycle = &loops[0];
        assert_eq!(cycle.len(), 3, "triangle loop visits all branches");
        // Each branch appears exactly once.
        let mut ids: Vec<usize> = cycle.iter().map(|&(b, _)| b.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn loop_orientation_sums_to_zero_potential() {
        // Check that following the loop with the reported orientations
        // returns to the starting node.
        let (g, _, _, gnd) = triangle();
        let t = g.spanning_tree(gnd);
        for cycle in g.fundamental_loops(&t) {
            let (b0, forward0) = cycle[0];
            let start = if forward0 {
                g.branch(b0).pos
            } else {
                g.branch(b0).neg
            };
            let mut at = start;
            for &(b, forward) in &cycle {
                let br = g.branch(b);
                let (enter, exit) = if forward {
                    (br.pos, br.neg)
                } else {
                    (br.neg, br.pos)
                };
                assert_eq!(at, enter, "loop must be contiguous");
                at = exit;
            }
            assert_eq!(at, start, "loop must close");
        }
    }

    #[test]
    fn path_between_tree_nodes() {
        let (g, a, b, gnd) = triangle();
        let t = g.spanning_tree(gnd);
        let p = t.path(&g, a, b);
        // Path a→b must be contiguous from a to b.
        let mut at = a;
        for &(bid, forward) in &p {
            let br = g.branch(bid);
            let (enter, exit) = if forward {
                (br.pos, br.neg)
            } else {
                (br.neg, br.pos)
            };
            assert_eq!(at, enter);
            at = exit;
        }
        assert_eq!(at, b);
        // Trivial path.
        assert!(t.path(&g, a, a).is_empty());
    }
}
