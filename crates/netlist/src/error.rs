use std::error::Error;
use std::fmt;

/// Errors raised while building or analysing a circuit graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A branch references a node that was never declared.
    UnknownNode(String),
    /// A branch name was declared twice.
    DuplicateBranch(String),
    /// A node name was declared twice.
    DuplicateNode(String),
    /// The graph is not connected, so Kirchhoff analysis is ill-posed.
    /// Carries one node from the unreachable component.
    Disconnected(String),
    /// The circuit declares no ground/reference node.
    NoGround,
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownNode(n) => write!(f, "branch references unknown node `{n}`"),
            NetlistError::DuplicateBranch(b) => write!(f, "duplicate branch `{b}`"),
            NetlistError::DuplicateNode(n) => write!(f, "duplicate node `{n}`"),
            NetlistError::Disconnected(n) => {
                write!(
                    f,
                    "circuit graph is disconnected; node `{n}` is unreachable"
                )
            }
            NetlistError::NoGround => write!(f, "no ground node declared"),
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        assert!(NetlistError::UnknownNode("x".into())
            .to_string()
            .contains("`x`"));
        assert!(NetlistError::Disconnected("n9".into())
            .to_string()
            .contains("n9"));
        assert_eq!(
            NetlistError::NoGround.to_string(),
            "no ground node declared"
        );
    }
}
