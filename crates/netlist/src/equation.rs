use std::collections::HashMap;
use std::fmt;

use crate::{QExpr, Quantity};

/// Where an equation came from, mirroring the paper's classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// A constitutive dipole equation (contribution statement).
    Dipole,
    /// Kirchhoff's current law at a node (NodalAnalysis).
    Kcl,
    /// Kirchhoff's voltage law around a fundamental loop (MeshAnalysis).
    Kvl,
    /// Branch-voltage definition `V[b] = V(pos) − V(neg)`.
    VDef,
    /// A signal-flow assignment from the analog block.
    SignalFlow,
    /// An externally imposed input binding.
    Input,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Dipole => "dipole",
            Origin::Kcl => "KCL",
            Origin::Kvl => "KVL",
            Origin::VDef => "vdef",
            Origin::SignalFlow => "signal-flow",
            Origin::Input => "input",
        })
    }
}

/// An implicit relation `expr = 0` — the raw form in which dipole equations
/// and Kirchhoff laws enter the enrichment step before being solved for
/// each of their terms.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// The expression constrained to zero.
    pub zero: QExpr,
    /// Provenance.
    pub origin: Origin,
    /// Human-readable label (node/branch/loop name) for diagnostics.
    pub label: String,
}

impl Relation {
    /// Creates a relation `zero = 0`.
    pub fn new(zero: QExpr, origin: Origin, label: impl Into<String>) -> Self {
        Relation {
            zero,
            origin,
            label: label.into(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {} = 0", self.origin, self.label, self.zero)
    }
}

/// An explicit equation `lhs = rhs`, one *solved variant* of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Equation {
    /// The defined quantity.
    pub lhs: Quantity,
    /// Its defining expression.
    pub rhs: QExpr,
    /// Provenance of the originating relation.
    pub origin: Origin,
}

impl fmt::Display for Equation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}  ({})", self.lhs, self.rhs, self.origin)
    }
}

/// Identifier of a dependency class inside an [`EquationTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub usize);

#[derive(Debug, Clone)]
struct EqClass {
    members: Vec<Equation>,
    enabled: bool,
    origin: Origin,
    label: String,
}

/// The enriched equation store of the paper: a hash multimap from defined
/// quantity to candidate equations, grouped into *dependency classes*.
///
/// Each class holds every solved variant of one original relation — the
/// circular `nextDependent` chain of Algorithm 1 (Figure 5). Because all
/// members of a class are linearly dependent, using one of them during
/// assembly *disables the entire class* so that the same physical
/// constraint is never consumed twice.
///
/// # Example
///
/// ```
/// use amsvp_netlist::{Equation, EquationTable, Origin, Quantity};
/// use expr::Expr;
///
/// let mut table = EquationTable::new();
/// // One relation, two solved variants: x = y and y = x.
/// let x = Quantity::var("x");
/// let y = Quantity::var("y");
/// let class = table.insert_class(
///     vec![
///         Equation { lhs: x.clone(), rhs: Expr::var(y.clone()), origin: Origin::Dipole },
///         Equation { lhs: y.clone(), rhs: Expr::var(x.clone()), origin: Origin::Dipole },
///     ],
///     Origin::Dipole,
///     "demo",
/// );
/// let (found, _) = table.fetch(&x).expect("x is defined");
/// assert_eq!(found.rhs, Expr::var(y.clone()));
/// table.disable_class(class);
/// assert!(table.fetch(&y).is_none(), "whole class disabled");
/// ```
#[derive(Debug, Clone, Default)]
pub struct EquationTable {
    classes: Vec<EqClass>,
    /// quantity → (class, member index) — the multimap of the paper, with
    /// average O(1) insertion and O(l) per-key search.
    index: HashMap<Quantity, Vec<(ClassId, usize)>>,
}

impl EquationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        EquationTable::default()
    }

    /// Number of dependency classes (original relations).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total number of stored equations across all classes.
    pub fn equation_count(&self) -> usize {
        self.classes.iter().map(|c| c.members.len()).sum()
    }

    /// Inserts a dependency class: all solved variants of one relation.
    ///
    /// Returns the class id. An empty member list is allowed (a relation
    /// that could not be solved for any term) and simply never matches.
    pub fn insert_class(
        &mut self,
        members: Vec<Equation>,
        origin: Origin,
        label: impl Into<String>,
    ) -> ClassId {
        let id = ClassId(self.classes.len());
        for (i, eq) in members.iter().enumerate() {
            self.index.entry(eq.lhs.clone()).or_default().push((id, i));
        }
        self.classes.push(EqClass {
            members,
            enabled: true,
            origin,
            label: label.into(),
        });
        id
    }

    /// Finds an enabled equation defining `q`, preferring earlier-inserted
    /// classes (deterministic fetch order).
    pub fn fetch(&self, q: &Quantity) -> Option<(&Equation, ClassId)> {
        let slots = self.index.get(q)?;
        slots
            .iter()
            .filter(|(c, _)| self.classes[c.0].enabled)
            .map(|&(c, m)| (&self.classes[c.0].members[m], c))
            .next()
    }

    /// All enabled candidate equations for `q`, in insertion order.
    pub fn candidates(&self, q: &Quantity) -> Vec<(&Equation, ClassId)> {
        self.index
            .get(q)
            .map(|slots| {
                slots
                    .iter()
                    .filter(|(c, _)| self.classes[c.0].enabled)
                    .map(|&(c, m)| (&self.classes[c.0].members[m], c))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Disables a whole dependency class (Algorithm 2's `disable()`).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    pub fn disable_class(&mut self, id: ClassId) {
        self.classes[id.0].enabled = false;
    }

    /// Re-enables a single class (assembly backtracking support).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    pub fn enable_class(&mut self, id: ClassId) {
        self.classes[id.0].enabled = true;
    }

    /// Whether a class is still enabled.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    pub fn is_enabled(&self, id: ClassId) -> bool {
        self.classes[id.0].enabled
    }

    /// Re-enables every class (fresh assembly for another output).
    pub fn reset(&mut self) {
        for c in &mut self.classes {
            c.enabled = true;
        }
    }

    /// Members of a class — the dependency chain of Figure 5.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    pub fn class_members(&self, id: ClassId) -> &[Equation] {
        &self.classes[id.0].members
    }

    /// Origin and label of a class.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this table.
    pub fn class_info(&self, id: ClassId) -> (Origin, &str) {
        let c = &self.classes[id.0];
        (c.origin, &c.label)
    }

    /// Iterates all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len()).map(ClassId)
    }

    /// The set of quantities that have at least one defining equation.
    pub fn defined_quantities(&self) -> impl Iterator<Item = &Quantity> {
        self.index.keys()
    }
}

impl fmt::Display for EquationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.classes.iter().enumerate() {
            writeln!(
                f,
                "class {} [{} {}]{}:",
                i,
                c.origin,
                c.label,
                if c.enabled { "" } else { " (disabled)" }
            )?;
            for eq in &c.members {
                writeln!(f, "  {eq}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expr::Expr;

    fn q(n: &str) -> Quantity {
        Quantity::var(n)
    }

    fn eq(lhs: &str, rhs: &str) -> Equation {
        Equation {
            lhs: q(lhs),
            rhs: Expr::var(q(rhs)),
            origin: Origin::Dipole,
        }
    }

    #[test]
    fn fetch_prefers_first_class() {
        let mut t = EquationTable::new();
        let c1 = t.insert_class(vec![eq("x", "a")], Origin::Dipole, "first");
        let _c2 = t.insert_class(vec![eq("x", "b")], Origin::Kcl, "second");
        let (found, cls) = t.fetch(&q("x")).unwrap();
        assert_eq!(found.rhs, Expr::var(q("a")));
        assert_eq!(cls, c1);
        // Disabling the first exposes the second.
        t.disable_class(c1);
        let (found, _) = t.fetch(&q("x")).unwrap();
        assert_eq!(found.rhs, Expr::var(q("b")));
        assert_eq!(t.candidates(&q("x")).len(), 1);
    }

    #[test]
    fn disabling_class_hides_all_members() {
        let mut t = EquationTable::new();
        let c = t.insert_class(vec![eq("x", "y"), eq("y", "x")], Origin::Kvl, "loop");
        assert!(t.fetch(&q("y")).is_some());
        t.disable_class(c);
        assert!(t.fetch(&q("x")).is_none());
        assert!(t.fetch(&q("y")).is_none());
        assert!(!t.is_enabled(c));
        t.reset();
        assert!(t.fetch(&q("y")).is_some());
    }

    #[test]
    fn counts_and_chain_access() {
        let mut t = EquationTable::new();
        let c = t.insert_class(
            vec![eq("a", "b"), eq("b", "c"), eq("c", "a")],
            Origin::Kcl,
            "n1",
        );
        t.insert_class(vec![], Origin::Dipole, "unsolvable");
        assert_eq!(t.class_count(), 2);
        assert_eq!(t.equation_count(), 3);
        assert_eq!(t.class_members(c).len(), 3);
        let (origin, label) = t.class_info(c);
        assert_eq!(origin, Origin::Kcl);
        assert_eq!(label, "n1");
        assert_eq!(t.class_ids().count(), 2);
        assert!(t.defined_quantities().count() >= 3);
    }

    #[test]
    fn missing_quantity_fetches_none() {
        let t = EquationTable::new();
        assert!(t.fetch(&q("nothing")).is_none());
        assert!(t.candidates(&q("nothing")).is_empty());
    }

    #[test]
    fn display_formats_classes() {
        let mut t = EquationTable::new();
        let c = t.insert_class(vec![eq("x", "y")], Origin::VDef, "bx");
        t.disable_class(c);
        let s = t.to_string();
        assert!(s.contains("vdef"));
        assert!(s.contains("(disabled)"));
        assert!(s.contains("x = y"));
    }

    #[test]
    fn relation_display() {
        let r = Relation::new(
            Expr::var(q("x")) - Expr::var(q("y")),
            Origin::Kcl,
            "node n1",
        );
        assert_eq!(r.to_string(), "[KCL node n1] x - y = 0");
    }
}
