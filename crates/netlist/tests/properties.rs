//! Property tests: Kirchhoff relations generated from random connected
//! graphs must vanish under physically consistent assignments.

use std::collections::{HashMap, HashSet};

use amsvp_netlist::{kcl_relations, kvl_relations, vdef_relations, Graph, Quantity};
use proptest::prelude::*;

/// A random connected multigraph: `n` nodes, a random spanning backbone
/// plus extra chords.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..10).prop_flat_map(|n| {
        let backbone = proptest::collection::vec((0usize..1000, any::<bool>()), n - 1);
        let chords = proptest::collection::vec((0usize..1000, 0usize..1000), 0..6);
        (Just(n), backbone, chords).prop_map(|(n, backbone, chords)| {
            let mut g = Graph::new();
            for i in 0..n {
                g.add_node(format!("n{i}")).unwrap();
            }
            let mut bid = 0;
            // Backbone: connect node i+1 to a random earlier node.
            for (i, (pick, flip)) in backbone.into_iter().enumerate() {
                let a = amsvp_netlist::NodeId(pick % (i + 1));
                let b = amsvp_netlist::NodeId(i + 1);
                let (p, q) = if flip { (a, b) } else { (b, a) };
                g.add_branch(format!("b{bid}"), p, q).unwrap();
                bid += 1;
            }
            for (x, y) in chords {
                let a = amsvp_netlist::NodeId(x % n);
                let b = amsvp_netlist::NodeId(y % n);
                if a == b {
                    continue; // no self-loops
                }
                g.add_branch(format!("b{bid}"), a, b).unwrap();
                bid += 1;
            }
            g
        })
    })
}

proptest! {
    /// KVL relations vanish when branch voltages come from arbitrary node
    /// potentials (V[b] = V(pos) − V(neg)).
    #[test]
    fn kvl_vanishes_for_potential_consistent_voltages(
        g in arb_graph(),
        pots in proptest::collection::vec(-10.0f64..10.0, 10),
    ) {
        let root = amsvp_netlist::NodeId(0);
        let rels = kvl_relations(&g, root);
        let mut vb: HashMap<String, f64> = HashMap::new();
        for b in g.branch_ids() {
            let br = g.branch(b);
            vb.insert(br.name.clone(), pots[br.pos.0] - pots[br.neg.0]);
        }
        for r in rels {
            let v = r.zero.eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchV(n) => vb.get(n).copied(),
                _ => None,
            }).unwrap();
            prop_assert!(v.abs() < 1e-9, "KVL violated: {v} for {r}");
        }
    }

    /// KCL relations vanish when branch currents are superpositions of
    /// fundamental loop currents (a divergence-free flow by construction).
    #[test]
    fn kcl_vanishes_for_loop_current_superposition(
        g in arb_graph(),
        loop_currents in proptest::collection::vec(-5.0f64..5.0, 16),
    ) {
        let root = amsvp_netlist::NodeId(0);
        let tree = g.spanning_tree(root);
        let loops = g.fundamental_loops(&tree);
        let mut ib: HashMap<String, f64> = g
            .branch_ids()
            .map(|b| (g.branch(b).name.clone(), 0.0))
            .collect();
        for (k, cycle) in loops.iter().enumerate() {
            let ik = loop_currents[k % loop_currents.len()];
            for &(b, forward) in cycle {
                let name = &g.branch(b).name;
                *ib.get_mut(name).unwrap() += if forward { ik } else { -ik };
            }
        }
        // No excluded nodes: a pure loop flow balances everywhere.
        let rels = kcl_relations(&g, &HashSet::new());
        for r in rels {
            let v = r.zero.eval(&mut |q: &Quantity, _| match q {
                Quantity::BranchI(n) => ib.get(n).copied(),
                _ => None,
            }).unwrap();
            prop_assert!(v.abs() < 1e-9, "KCL violated: {v} for {r}");
        }
    }

    /// vdef relations vanish for consistent assignments and never mention
    /// ground potentials.
    #[test]
    fn vdef_consistent_and_groundless(
        g in arb_graph(),
        pots in proptest::collection::vec(-10.0f64..10.0, 10),
    ) {
        let ground = amsvp_netlist::NodeId(0);
        let grounds: HashSet<_> = [ground].into_iter().collect();
        let rels = vdef_relations(&g, &grounds);
        prop_assert_eq!(rels.len(), g.branch_count());
        let mut pots = pots;
        pots[0] = 0.0; // ground potential
        for r in &rels {
            for q in r.zero.variables() {
                prop_assert!(q.name() != "n0", "ground must be folded: {r}");
            }
            let v = r.zero.eval(&mut |q: &Quantity, _| match q {
                Quantity::NodeV(n) => {
                    let idx: usize = n[1..].parse().unwrap();
                    Some(pots[idx])
                }
                Quantity::BranchV(n) => {
                    let b = g.branch_id(n).unwrap();
                    let br = g.branch(b);
                    Some(pots[br.pos.0] - pots[br.neg.0])
                }
                _ => None,
            }).unwrap();
            prop_assert!(v.abs() < 1e-9, "vdef violated: {v} for {r}");
        }
    }

    /// Spanning tree always has |N|−1 edges and fundamental loop count
    /// equals |B| − (|N|−1).
    #[test]
    fn tree_and_loop_counts(g in arb_graph()) {
        let root = amsvp_netlist::NodeId(0);
        let tree = g.spanning_tree(root);
        let tree_edges = g.branch_ids().filter(|&b| tree.contains(b)).count();
        prop_assert_eq!(tree_edges, g.node_count() - 1);
        let loops = g.fundamental_loops(&tree);
        prop_assert_eq!(loops.len(), g.branch_count() - tree_edges);
    }
}
