//! Property tests: Kirchhoff relations generated from random connected
//! graphs must vanish under physically consistent assignments.
//!
//! Random graphs come from a seeded xorshift generator, so every run
//! checks the same reproducible topologies.

use std::collections::{HashMap, HashSet};

use amsvp_netlist::{kcl_relations, kvl_relations, vdef_relations, Graph, Quantity};

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A random connected multigraph: `n` nodes, a random spanning backbone
/// plus extra chords.
fn random_graph(rng: &mut Rng) -> Graph {
    let n = rng.usize_in(2, 10);
    let mut g = Graph::new();
    for i in 0..n {
        g.add_node(format!("n{i}")).unwrap();
    }
    let mut bid = 0;
    // Backbone: connect node i+1 to a random earlier node.
    for i in 0..n - 1 {
        let a = amsvp_netlist::NodeId(rng.usize_in(0, i + 1));
        let b = amsvp_netlist::NodeId(i + 1);
        let (p, q) = if rng.bool() { (a, b) } else { (b, a) };
        g.add_branch(format!("b{bid}"), p, q).unwrap();
        bid += 1;
    }
    for _ in 0..rng.usize_in(0, 6) {
        let a = amsvp_netlist::NodeId(rng.usize_in(0, n));
        let b = amsvp_netlist::NodeId(rng.usize_in(0, n));
        if a == b {
            continue; // no self-loops
        }
        g.add_branch(format!("b{bid}"), a, b).unwrap();
        bid += 1;
    }
    g
}

fn random_pots(rng: &mut Rng) -> Vec<f64> {
    (0..10).map(|_| rng.range(-10.0, 10.0)).collect()
}

const CASES: usize = 128;

/// KVL relations vanish when branch voltages come from arbitrary node
/// potentials (V[b] = V(pos) − V(neg)).
#[test]
fn kvl_vanishes_for_potential_consistent_voltages() {
    let mut rng = Rng::new(0x0b51_de01);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let pots = random_pots(&mut rng);
        let root = amsvp_netlist::NodeId(0);
        let rels = kvl_relations(&g, root);
        let mut vb: HashMap<String, f64> = HashMap::new();
        for b in g.branch_ids() {
            let br = g.branch(b);
            vb.insert(br.name.clone(), pots[br.pos.0] - pots[br.neg.0]);
        }
        for r in rels {
            let v = r
                .zero
                .eval(&mut |q: &Quantity, _| match q {
                    Quantity::BranchV(n) => vb.get(n).copied(),
                    _ => None,
                })
                .unwrap();
            assert!(v.abs() < 1e-9, "KVL violated: {v} for {r}");
        }
    }
}

/// KCL relations vanish when branch currents are superpositions of
/// fundamental loop currents (a divergence-free flow by construction).
#[test]
fn kcl_vanishes_for_loop_current_superposition() {
    let mut rng = Rng::new(0x0c51_de02);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let loop_currents: Vec<f64> = (0..16).map(|_| rng.range(-5.0, 5.0)).collect();
        let root = amsvp_netlist::NodeId(0);
        let tree = g.spanning_tree(root);
        let loops = g.fundamental_loops(&tree);
        let mut ib: HashMap<String, f64> = g
            .branch_ids()
            .map(|b| (g.branch(b).name.clone(), 0.0))
            .collect();
        for (k, cycle) in loops.iter().enumerate() {
            let ik = loop_currents[k % loop_currents.len()];
            for &(b, forward) in cycle {
                let name = &g.branch(b).name;
                *ib.get_mut(name).unwrap() += if forward { ik } else { -ik };
            }
        }
        // No excluded nodes: a pure loop flow balances everywhere.
        let rels = kcl_relations(&g, &HashSet::new());
        for r in rels {
            let v = r
                .zero
                .eval(&mut |q: &Quantity, _| match q {
                    Quantity::BranchI(n) => ib.get(n).copied(),
                    _ => None,
                })
                .unwrap();
            assert!(v.abs() < 1e-9, "KCL violated: {v} for {r}");
        }
    }
}

/// vdef relations vanish for consistent assignments and never mention
/// ground potentials.
#[test]
fn vdef_consistent_and_groundless() {
    let mut rng = Rng::new(0x0d51_de03);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let mut pots = random_pots(&mut rng);
        let ground = amsvp_netlist::NodeId(0);
        let grounds: HashSet<_> = [ground].into_iter().collect();
        let rels = vdef_relations(&g, &grounds);
        assert_eq!(rels.len(), g.branch_count());
        pots[0] = 0.0; // ground potential
        for r in &rels {
            for q in r.zero.variables() {
                assert!(q.name() != "n0", "ground must be folded: {r}");
            }
            let v = r
                .zero
                .eval(&mut |q: &Quantity, _| match q {
                    Quantity::NodeV(n) => {
                        let idx: usize = n[1..].parse().unwrap();
                        Some(pots[idx])
                    }
                    Quantity::BranchV(n) => {
                        let b = g.branch_id(n).unwrap();
                        let br = g.branch(b);
                        Some(pots[br.pos.0] - pots[br.neg.0])
                    }
                    _ => None,
                })
                .unwrap();
            assert!(v.abs() < 1e-9, "vdef violated: {v} for {r}");
        }
    }
}

/// Spanning tree always has |N|−1 edges and fundamental loop count
/// equals |B| − (|N|−1).
#[test]
fn tree_and_loop_counts() {
    let mut rng = Rng::new(0x0e51_de04);
    for _ in 0..CASES {
        let g = random_graph(&mut rng);
        let root = amsvp_netlist::NodeId(0);
        let tree = g.spanning_tree(root);
        let tree_edges = g.branch_ids().filter(|&b| tree.contains(b)).count();
        assert_eq!(tree_edges, g.node_count() - 1);
        let loops = g.fundamental_loops(&tree);
        assert_eq!(loops.len(), g.branch_count() - tree_edges);
    }
}
