//! A timed data-flow (TDF) scheduler modeled after SystemC-AMS — the
//! "SC-AMS/TDF" substrate of the paper's experiments.
//!
//! TDF models are signal-flow graphs "scheduled statically by considering
//! their producer-consumer dependencies" (§II-A of the paper). Each module
//! fires a fixed number of times per cluster period (its *repetition
//! count*, derived from the synchronous-data-flow balance equations), reads
//! `rate` samples from each input port and writes `rate` samples to each
//! output port. Cycles require channel *delay* samples to be schedulable.
//!
//! The scheduler computes, at elaboration time:
//!
//! * the repetition vector (balance equations over all channels),
//! * a static firing order (token-driven list scheduling),
//! * the cluster period from the declared module timestep(s).
//!
//! Execution then replays the firing order with zero scheduling decisions,
//! which is exactly why TDF outperforms the DE kernel's dynamic event
//! queue for streaming analog models.
//!
//! # Example
//!
//! ```
//! use de::SimTime;
//! use amsvp_tdf::{InPort, Io, OutPort, TdfGraph, TdfModule};
//!
//! struct Ramp { out: OutPort, next: f64 }
//! impl TdfModule for Ramp {
//!     fn processing(&mut self, io: &mut Io<'_>) {
//!         io.write(self.out, 0, self.next);
//!         self.next += 1.0;
//!     }
//! }
//!
//! struct Probe { inp: InPort, sum: f64 }
//! impl TdfModule for Probe {
//!     fn processing(&mut self, io: &mut Io<'_>) {
//!         self.sum += io.read(self.inp, 0);
//!     }
//! }
//!
//! let mut g = TdfGraph::new();
//! let src_out = g.out_port(1);
//! let probe_in = g.in_port(1);
//! g.connect(src_out, probe_in, 0);
//! let src = g.add_module(Ramp { out: src_out, next: 0.0 }, &[], &[src_out]);
//! let probe = g.add_module(Probe { inp: probe_in, sum: 0.0 }, &[probe_in], &[]);
//! g.set_timestep(src, SimTime::ns(50));
//! let mut exec = g.build()?;
//! exec.run_until(SimTime::ns(250)); // five firings: 0+1+2+3+4
//! assert_eq!(exec.module::<Probe>(probe).unwrap().sum, 10.0);
//! # Ok::<(), amsvp_tdf::TdfError>(())
//! ```

mod graph;
mod schedule;

pub use graph::{InPort, Io, ModuleId, OutPort, TdfGraph, TdfModule};
pub use schedule::{TdfError, TdfExecutor};
