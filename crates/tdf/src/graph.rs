use de::SimTime;
use obs::Obs;
use std::collections::VecDeque;

/// Identifier of a TDF module within its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(pub(crate) usize);

/// An input port handle (consumer side of a channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InPort(pub(crate) usize);

/// An output port handle (producer side of a channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutPort(pub(crate) usize);

/// A timed data-flow module: one `processing()` call per firing.
///
/// The `Any` supertrait lets testbenches downcast modules back to their
/// concrete type after the graph is built (see
/// [`TdfExecutor::module_mut`](crate::TdfExecutor::module_mut)).
pub trait TdfModule: std::any::Any {
    /// Computes one firing: read `rate` samples from each input port,
    /// write `rate` samples to each output port.
    fn processing(&mut self, io: &mut Io<'_>);
}

pub(crate) struct InPortInfo {
    pub rate: usize,
    pub channel: Option<usize>,
    pub module: Option<usize>,
}

pub(crate) struct OutPortInfo {
    pub rate: usize,
    pub channels: Vec<usize>,
    pub module: Option<usize>,
}

pub(crate) struct Channel {
    pub buffer: VecDeque<f64>,
    pub from: usize,
    pub to: usize,
    pub delay: usize,
}

/// A TDF graph under construction: ports, channels and modules.
///
/// Build ports first, connect them, then attach them to modules with
/// [`TdfGraph::add_module`]; finally call [`TdfGraph::build`] to compute
/// the static schedule.
#[derive(Default)]
pub struct TdfGraph {
    pub(crate) modules: Vec<Box<dyn TdfModule>>,
    pub(crate) names: Vec<String>,
    pub(crate) in_ports: Vec<InPortInfo>,
    pub(crate) out_ports: Vec<OutPortInfo>,
    pub(crate) channels: Vec<Channel>,
    pub(crate) module_inputs: Vec<Vec<usize>>,
    pub(crate) module_outputs: Vec<Vec<usize>>,
    pub(crate) timesteps: Vec<Option<SimTime>>,
    pub(crate) obs: Obs,
}

impl TdfGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        TdfGraph::default()
    }

    /// Attaches an instrumentation collector; the executor built from this
    /// graph reports `tdf.firings` and `tdf.run_until` timings through it.
    #[must_use]
    pub fn collector(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// In-place variant of [`TdfGraph::collector`].
    pub fn set_collector(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Allocates an input port consuming `rate` samples per firing.
    ///
    /// # Panics
    ///
    /// Panics if `rate == 0`.
    pub fn in_port(&mut self, rate: usize) -> InPort {
        assert!(rate > 0, "port rate must be positive");
        self.in_ports.push(InPortInfo {
            rate,
            channel: None,
            module: None,
        });
        InPort(self.in_ports.len() - 1)
    }

    /// Allocates an output port producing `rate` samples per firing.
    ///
    /// # Panics
    ///
    /// Panics if `rate == 0`.
    pub fn out_port(&mut self, rate: usize) -> OutPort {
        assert!(rate > 0, "port rate must be positive");
        self.out_ports.push(OutPortInfo {
            rate,
            channels: Vec::new(),
            module: None,
        });
        OutPort(self.out_ports.len() - 1)
    }

    /// Connects a producer to a consumer with `delay` initial zero
    /// samples (delays break scheduling cycles, as in SystemC-AMS).
    ///
    /// An output port may feed several input ports (fan-out); an input
    /// port accepts exactly one connection.
    ///
    /// # Panics
    ///
    /// Panics if the input port is already connected.
    pub fn connect(&mut self, from: OutPort, to: InPort, delay: usize) {
        assert!(
            self.in_ports[to.0].channel.is_none(),
            "input port already connected"
        );
        let idx = self.channels.len();
        let mut buffer = VecDeque::new();
        buffer.extend(std::iter::repeat_n(0.0, delay));
        self.channels.push(Channel {
            buffer,
            from: from.0,
            to: to.0,
            delay,
        });
        self.out_ports[from.0].channels.push(idx);
        self.in_ports[to.0].channel = Some(idx);
    }

    /// Registers a module together with the ports it owns.
    ///
    /// # Panics
    ///
    /// Panics if any port is already owned by another module.
    pub fn add_module(
        &mut self,
        module: impl TdfModule + 'static,
        inputs: &[InPort],
        outputs: &[OutPort],
    ) -> ModuleId {
        self.add_module_named("tdf", module, inputs, outputs)
    }

    /// [`TdfGraph::add_module`] with an explicit name for diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if any port is already owned by another module.
    pub fn add_module_named(
        &mut self,
        name: &str,
        module: impl TdfModule + 'static,
        inputs: &[InPort],
        outputs: &[OutPort],
    ) -> ModuleId {
        let id = self.modules.len();
        self.modules.push(Box::new(module));
        self.names.push(name.to_string());
        self.timesteps.push(None);
        let mut ins = Vec::new();
        for p in inputs {
            assert!(
                self.in_ports[p.0].module.is_none(),
                "input port already owned"
            );
            self.in_ports[p.0].module = Some(id);
            ins.push(p.0);
        }
        let mut outs = Vec::new();
        for p in outputs {
            assert!(
                self.out_ports[p.0].module.is_none(),
                "output port already owned"
            );
            self.out_ports[p.0].module = Some(id);
            outs.push(p.0);
        }
        self.module_inputs.push(ins);
        self.module_outputs.push(outs);
        ModuleId(id)
    }

    /// Declares the firing period of a module (SystemC-AMS
    /// `set_timestep`). At least one module per graph must declare one.
    pub fn set_timestep(&mut self, module: ModuleId, ts: SimTime) {
        self.timesteps[module.0] = Some(ts);
    }
}

/// Port access during one firing: `k` indexes the samples of the firing
/// (`0..rate`).
pub struct Io<'g> {
    pub(crate) in_ports: &'g [InPortInfo],
    pub(crate) out_ports: &'g [OutPortInfo],
    pub(crate) channels: &'g mut [Channel],
    /// Per-channel base index where this firing's output samples live
    /// (the executor pre-extends buffers by the port rate).
    pub(crate) bases: &'g [usize],
    pub(crate) time: SimTime,
    pub(crate) module: usize,
}

impl Io<'_> {
    /// Simulated time of the first sample of this firing.
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// Reads sample `k` of this firing from an input port.
    ///
    /// # Panics
    ///
    /// Panics if the port is not owned by the running module, is not
    /// connected, or `k` exceeds the port rate.
    pub fn read(&self, port: InPort, k: usize) -> f64 {
        let info = &self.in_ports[port.0];
        assert_eq!(info.module, Some(self.module), "foreign input port");
        assert!(k < info.rate, "sample index beyond port rate");
        let ch = info.channel.expect("unconnected input port");
        *self.channels[ch]
            .buffer
            .get(k)
            .expect("schedule guarantees availability")
    }

    /// Writes sample `k` of this firing to an output port (delivered to
    /// every connected channel).
    ///
    /// # Panics
    ///
    /// Panics if the port is not owned by the running module or `k`
    /// exceeds the port rate.
    pub fn write(&mut self, port: OutPort, k: usize, value: f64) {
        let info = &self.out_ports[port.0];
        assert_eq!(info.module, Some(self.module), "foreign output port");
        assert!(k < info.rate, "sample index beyond port rate");
        for &ch in &info.channels {
            let idx = self.bases[ch] + k;
            self.channels[ch].buffer[idx] = value;
        }
    }
}
