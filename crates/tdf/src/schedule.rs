use std::error::Error;
use std::fmt;
use std::time::Instant;

use de::SimTime;
use obs::{CounterTracker, Obs};

use crate::graph::{Io, TdfGraph, TdfModule};
use crate::ModuleId;

/// Errors detected during schedule elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TdfError {
    /// An input port has no producer.
    UnconnectedInput {
        /// Owning module name.
        module: String,
    },
    /// No module declared a timestep.
    NoTimestep,
    /// Two timestep declarations disagree with the repetition vector.
    InconsistentTimestep {
        /// Module whose declaration conflicts.
        module: String,
    },
    /// The rate balance equations have no consistent solution.
    InconsistentRates {
        /// Module where the conflict was detected.
        module: String,
    },
    /// A cycle without enough delay samples cannot be scheduled.
    Deadlock,
    /// The graph has no modules.
    Empty,
}

impl fmt::Display for TdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TdfError::UnconnectedInput { module } => {
                write!(f, "module `{module}` has an unconnected input port")
            }
            TdfError::NoTimestep => {
                write!(f, "no module declares a timestep; call set_timestep")
            }
            TdfError::InconsistentTimestep { module } => write!(
                f,
                "timestep declared by `{module}` conflicts with the repetition vector"
            ),
            TdfError::InconsistentRates { module } => write!(
                f,
                "rate balance equations are inconsistent at module `{module}`"
            ),
            TdfError::Deadlock => write!(
                f,
                "static schedule deadlocked: a feedback loop lacks delay samples"
            ),
            TdfError::Empty => write!(f, "TDF graph has no modules"),
        }
    }
}

impl Error for TdfError {}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// An elaborated TDF cluster: static firing order plus channel buffers.
pub struct TdfExecutor {
    graph: TdfGraph,
    /// Firing order for one cluster period (module indices).
    schedule: Vec<usize>,
    /// Repetition count per module.
    repetitions: Vec<u64>,
    /// Firing period per module (cluster period / repetitions).
    module_ts: Vec<SimTime>,
    /// One cluster period.
    period: SimTime,
    now: SimTime,
    firings: u64,
    /// Scratch: per-channel base index for the current firing.
    bases: Vec<usize>,
    obs: Obs,
    obs_firings: CounterTracker,
}

impl TdfGraph {
    /// Elaborates the graph: checks connectivity, solves the balance
    /// equations, derives the cluster period, and computes the static
    /// firing order.
    ///
    /// # Errors
    ///
    /// Any [`TdfError`] diagnosed during elaboration.
    pub fn build(self) -> Result<TdfExecutor, TdfError> {
        let n = self.modules.len();
        if n == 0 {
            return Err(TdfError::Empty);
        }
        for (i, ins) in self.module_inputs.iter().enumerate() {
            for &p in ins {
                if self.in_ports[p].channel.is_none() {
                    return Err(TdfError::UnconnectedInput {
                        module: self.names[i].clone(),
                    });
                }
            }
        }

        // Balance equations: q[from]·rate_out = q[to]·rate_in per channel.
        // Propagate rational repetition counts (num/den) over the channel
        // graph, then scale to the smallest integer vector.
        let mut num = vec![0u64; n];
        let mut den = vec![1u64; n];
        for start in 0..n {
            if num[start] != 0 {
                continue;
            }
            num[start] = 1;
            den[start] = 1;
            let mut stack = vec![start];
            while let Some(m) = stack.pop() {
                let mut neighbors: Vec<(usize, u64, u64)> = Vec::new();
                for &p in &self.module_outputs[m] {
                    let rate_out = self.out_ports[p].rate as u64;
                    for &c in &self.out_ports[p].channels {
                        let to_port = self.channels[c].to;
                        if let Some(to_mod) = self.in_ports[to_port].module {
                            let rate_in = self.in_ports[to_port].rate as u64;
                            neighbors.push((to_mod, rate_out, rate_in));
                        }
                    }
                }
                for &p in &self.module_inputs[m] {
                    let rate_in = self.in_ports[p].rate as u64;
                    let c = self.in_ports[p].channel.expect("checked above");
                    let from_port = self.channels[c].from;
                    if let Some(from_mod) = self.out_ports[from_port].module {
                        let rate_out = self.out_ports[from_port].rate as u64;
                        // q[from]·rate_out = q[m]·rate_in ⇒ from gets
                        // (rate_in/rate_out) relative to m.
                        neighbors.push((from_mod, rate_in, rate_out));
                    }
                }
                for (other, mul, div) in neighbors {
                    // q[other] = q[m] · mul / div
                    let on = num[m] * mul;
                    let od = den[m] * div;
                    let g = gcd(on, od).max(1);
                    let (on, od) = (on / g, od / g);
                    if num[other] == 0 {
                        num[other] = on;
                        den[other] = od;
                        stack.push(other);
                    } else if num[other] * od != on * den[other] {
                        return Err(TdfError::InconsistentRates {
                            module: self.names[other].clone(),
                        });
                    }
                }
            }
        }
        // Scale to integers: multiply by lcm of denominators.
        let mut l = 1u64;
        for &d in &den {
            l = l / gcd(l, d) * d;
        }
        let repetitions: Vec<u64> = num
            .iter()
            .zip(&den)
            .map(|(&nu, &de)| nu * (l / de))
            .collect();

        // Cluster period from declared timesteps.
        let mut period: Option<SimTime> = None;
        for (i, ts) in self.timesteps.iter().enumerate() {
            if let Some(ts) = ts {
                let candidate = SimTime::fs(ts.as_fs() * repetitions[i]);
                match period {
                    None => period = Some(candidate),
                    Some(p) if p != candidate => {
                        return Err(TdfError::InconsistentTimestep {
                            module: self.names[i].clone(),
                        })
                    }
                    _ => {}
                }
            }
        }
        let period = period.ok_or(TdfError::NoTimestep)?;
        let module_ts: Vec<SimTime> = repetitions
            .iter()
            .map(|&r| SimTime::fs(period.as_fs() / r.max(1)))
            .collect();

        // Static firing order by token simulation.
        let mut tokens: Vec<usize> = self.channels.iter().map(|c| c.delay).collect();
        let mut remaining = repetitions.clone();
        let total: u64 = repetitions.iter().sum();
        let mut schedule = Vec::with_capacity(total as usize);
        while schedule.len() < total as usize {
            let mut fired = false;
            #[allow(clippy::needless_range_loop)] // m indexes four arrays
            for m in 0..n {
                if remaining[m] == 0 {
                    continue;
                }
                let ready = self.module_inputs[m].iter().all(|&p| {
                    let c = self.in_ports[p].channel.expect("checked");
                    tokens[c] >= self.in_ports[p].rate
                });
                if !ready {
                    continue;
                }
                for &p in &self.module_inputs[m] {
                    let c = self.in_ports[p].channel.expect("checked");
                    tokens[c] -= self.in_ports[p].rate;
                }
                for &p in &self.module_outputs[m] {
                    for &c in &self.out_ports[p].channels {
                        tokens[c] += self.out_ports[p].rate;
                    }
                }
                remaining[m] -= 1;
                schedule.push(m);
                fired = true;
            }
            if !fired {
                return Err(TdfError::Deadlock);
            }
        }

        let bases = vec![0usize; self.channels.len()];
        let obs = self.obs.clone();
        Ok(TdfExecutor {
            graph: self,
            schedule,
            repetitions,
            module_ts,
            period,
            now: SimTime::ZERO,
            firings: 0,
            bases,
            obs,
            obs_firings: CounterTracker::default(),
        })
    }
}

impl fmt::Debug for TdfExecutor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TdfExecutor")
            .field("modules", &self.graph.names)
            .field("schedule", &self.schedule)
            .field("repetitions", &self.repetitions)
            .field("period", &self.period)
            .field("now", &self.now)
            .field("firings", &self.firings)
            .finish_non_exhaustive()
    }
}

impl TdfExecutor {
    /// One cluster period (time covered by one schedule pass).
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// The static firing order for one period, as module ids.
    pub fn schedule(&self) -> Vec<ModuleId> {
        self.schedule.iter().map(|&m| ModuleId(m)).collect()
    }

    /// Repetition count of a module per period.
    pub fn repetitions(&self, m: ModuleId) -> u64 {
        self.repetitions[m.0]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total firings executed (performance counter).
    pub fn firings(&self) -> u64 {
        self.firings
    }

    /// Attaches an instrumentation collector after elaboration
    /// (equivalent to [`TdfGraph::collector`] before `build`).
    pub fn set_collector(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Downcasts a module back to its concrete type.
    pub fn module_mut<M: TdfModule>(&mut self, id: ModuleId) -> Option<&mut M> {
        let m: &mut dyn TdfModule = &mut *self.graph.modules[id.0];
        (m as &mut dyn std::any::Any).downcast_mut::<M>()
    }

    /// Shared-reference variant of [`TdfExecutor::module_mut`].
    pub fn module<M: TdfModule>(&self, id: ModuleId) -> Option<&M> {
        let m: &dyn TdfModule = &*self.graph.modules[id.0];
        (m as &dyn std::any::Any).downcast_ref::<M>()
    }

    /// Executes one cluster period.
    pub fn run_iteration(&mut self) {
        let mut fire_count = vec![0u64; self.graph.modules.len()];
        for idx in 0..self.schedule.len() {
            let m = self.schedule[idx];
            // Pre-extend output channels and record bases.
            for &p in &self.graph.module_outputs[m] {
                let rate = self.graph.out_ports[p].rate;
                for &c in &self.graph.out_ports[p].channels {
                    let buf = &mut self.graph.channels[c].buffer;
                    self.bases[c] = buf.len();
                    buf.extend(std::iter::repeat_n(0.0, rate));
                }
            }
            let time = self.now + SimTime::fs(self.module_ts[m].as_fs() * fire_count[m]);
            {
                let mut module = std::mem::replace(&mut self.graph.modules[m], Box::new(NopTdf));
                let mut io = Io {
                    in_ports: &self.graph.in_ports,
                    out_ports: &self.graph.out_ports,
                    channels: &mut self.graph.channels,
                    bases: &self.bases,
                    time,
                    module: m,
                };
                module.processing(&mut io);
                self.graph.modules[m] = module;
            }
            // Consume input samples.
            for &p in &self.graph.module_inputs[m] {
                let rate = self.graph.in_ports[p].rate;
                let c = self.graph.in_ports[p].channel.expect("checked");
                let buf = &mut self.graph.channels[c].buffer;
                for _ in 0..rate {
                    buf.pop_front();
                }
            }
            fire_count[m] += 1;
            self.firings += 1;
        }
        self.now += self.period;
    }

    /// Runs whole cluster periods until simulated time reaches (at least)
    /// `until`.
    pub fn run_until(&mut self, until: SimTime) {
        let timer = self.obs.enabled().then(Instant::now);
        while self.now < until {
            self.run_iteration();
        }
        if let Some(start) = timer {
            self.obs
                .time("tdf.run_until", start.elapsed().as_secs_f64());
            let firings = self.firings;
            self.obs_firings.flush(&self.obs, "tdf.firings", firings);
        }
    }
}

struct NopTdf;

impl TdfModule for NopTdf {
    fn processing(&mut self, _io: &mut Io<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InPort, OutPort};

    struct Const {
        out: OutPort,
        value: f64,
    }
    impl TdfModule for Const {
        fn processing(&mut self, io: &mut Io<'_>) {
            let rate = 1; // tests use rate-1 sources
            for k in 0..rate {
                io.write(self.out, k, self.value);
            }
        }
    }

    struct Sum {
        a: InPort,
        b: InPort,
        out: OutPort,
    }
    impl TdfModule for Sum {
        fn processing(&mut self, io: &mut Io<'_>) {
            let v = io.read(self.a, 0) + io.read(self.b, 0);
            io.write(self.out, 0, v);
        }
    }

    struct Probe {
        inp: InPort,
        seen: Vec<f64>,
    }
    impl TdfModule for Probe {
        fn processing(&mut self, io: &mut Io<'_>) {
            self.seen.push(io.read(self.inp, 0));
        }
    }

    /// Downsampler: consumes 2, produces 1 (their average).
    struct Decimate {
        inp: InPort,
        out: OutPort,
    }
    impl TdfModule for Decimate {
        fn processing(&mut self, io: &mut Io<'_>) {
            let v = 0.5 * (io.read(self.inp, 0) + io.read(self.inp, 1));
            io.write(self.out, 0, v);
        }
    }

    #[test]
    fn single_rate_pipeline() {
        let mut g = TdfGraph::new();
        let c_out = g.out_port(1);
        let (s_a, s_b, s_out) = (g.in_port(1), g.in_port(1), g.out_port(1));
        let p_in = g.in_port(1);
        let c2_out = g.out_port(1);
        g.connect(c_out, s_a, 0);
        g.connect(c2_out, s_b, 0);
        g.connect(s_out, p_in, 0);
        let m_const = g.add_module_named(
            "one",
            Const {
                out: c_out,
                value: 1.0,
            },
            &[],
            &[c_out],
        );
        g.add_module_named(
            "two",
            Const {
                out: c2_out,
                value: 2.0,
            },
            &[],
            &[c2_out],
        );
        g.add_module_named(
            "sum",
            Sum {
                a: s_a,
                b: s_b,
                out: s_out,
            },
            &[s_a, s_b],
            &[s_out],
        );
        let probe = g.add_module_named(
            "probe",
            Probe {
                inp: p_in,
                seen: Vec::new(),
            },
            &[p_in],
            &[],
        );
        g.set_timestep(m_const, SimTime::us(1));
        let mut exec = g.build().unwrap();
        assert_eq!(exec.period(), SimTime::us(1));
        exec.run_until(SimTime::us(5));
        assert_eq!(exec.now(), SimTime::us(5));
        let p: &Probe = exec.module(probe).unwrap();
        assert_eq!(p.seen, vec![3.0; 5]);
        assert_eq!(exec.firings(), 4 * 5);
    }

    #[test]
    fn multirate_repetition_vector() {
        // source (rate 1) → decimate (in rate 2, out rate 1) → probe.
        let mut g = TdfGraph::new();
        let src_out = g.out_port(1);
        let d_in = g.in_port(2);
        let d_out = g.out_port(1);
        let p_in = g.in_port(1);
        g.connect(src_out, d_in, 0);
        g.connect(d_out, p_in, 0);
        struct Counter {
            out: OutPort,
            next: f64,
        }
        impl TdfModule for Counter {
            fn processing(&mut self, io: &mut Io<'_>) {
                io.write(self.out, 0, self.next);
                self.next += 1.0;
            }
        }
        let src = g.add_module_named(
            "src",
            Counter {
                out: src_out,
                next: 0.0,
            },
            &[],
            &[src_out],
        );
        let dec = g.add_module_named(
            "dec",
            Decimate {
                inp: d_in,
                out: d_out,
            },
            &[d_in],
            &[d_out],
        );
        let probe = g.add_module_named(
            "probe",
            Probe {
                inp: p_in,
                seen: Vec::new(),
            },
            &[p_in],
            &[],
        );
        g.set_timestep(src, SimTime::ns(10));
        let mut exec = g.build().unwrap();
        // Source fires twice per period, decimator and probe once.
        assert_eq!(exec.repetitions(src), 2);
        assert_eq!(exec.repetitions(dec), 1);
        assert_eq!(exec.repetitions(probe), 1);
        assert_eq!(exec.period(), SimTime::ns(20));
        exec.run_until(SimTime::ns(60));
        let p: &Probe = exec.module(probe).unwrap();
        assert_eq!(p.seen, vec![0.5, 2.5, 4.5]);
    }

    #[test]
    fn feedback_needs_delay() {
        // accumulator: out = in + feedback(out) — schedulable only with a
        // delay sample on the feedback channel.
        struct Acc {
            inp: InPort,
            fb_in: InPort,
            out: OutPort,
            fb_out: OutPort,
        }
        impl TdfModule for Acc {
            fn processing(&mut self, io: &mut Io<'_>) {
                let v = io.read(self.inp, 0) + io.read(self.fb_in, 0);
                io.write(self.out, 0, v);
                io.write(self.fb_out, 0, v);
            }
        }
        let build = |delay: usize| {
            let mut g = TdfGraph::new();
            let src_out = g.out_port(1);
            let a_in = g.in_port(1);
            let fb_in = g.in_port(1);
            let a_out = g.out_port(1);
            let fb_out = g.out_port(1);
            let p_in = g.in_port(1);
            g.connect(src_out, a_in, 0);
            g.connect(fb_out, fb_in, delay);
            g.connect(a_out, p_in, 0);
            let src = g.add_module_named(
                "one",
                Const {
                    out: src_out,
                    value: 1.0,
                },
                &[],
                &[src_out],
            );
            g.add_module_named(
                "acc",
                Acc {
                    inp: a_in,
                    fb_in,
                    out: a_out,
                    fb_out,
                },
                &[a_in, fb_in],
                &[a_out, fb_out],
            );
            let probe = g.add_module_named(
                "probe",
                Probe {
                    inp: p_in,
                    seen: Vec::new(),
                },
                &[p_in],
                &[],
            );
            g.set_timestep(src, SimTime::ns(1));
            (g, probe)
        };
        let (g, _) = build(0);
        assert_eq!(g.build().unwrap_err(), TdfError::Deadlock);
        let (g, probe) = build(1);
        let mut exec = g.build().unwrap();
        exec.run_until(SimTime::ns(4));
        let p: &Probe = exec.module(probe).unwrap();
        assert_eq!(p.seen, vec![1.0, 2.0, 3.0, 4.0], "running sum");
    }

    #[test]
    fn elaboration_errors() {
        // Unconnected input.
        let mut g = TdfGraph::new();
        let i = g.in_port(1);
        g.add_module_named(
            "probe",
            Probe {
                inp: i,
                seen: Vec::new(),
            },
            &[i],
            &[],
        );
        assert!(matches!(
            g.build().unwrap_err(),
            TdfError::UnconnectedInput { .. }
        ));

        // Missing timestep.
        let mut g = TdfGraph::new();
        let o = g.out_port(1);
        g.add_module_named("c", Const { out: o, value: 0.0 }, &[], &[o]);
        assert_eq!(g.build().unwrap_err(), TdfError::NoTimestep);

        // Empty graph.
        assert_eq!(TdfGraph::new().build().unwrap_err(), TdfError::Empty);

        // Conflicting timesteps.
        let mut g = TdfGraph::new();
        let o = g.out_port(1);
        let i = g.in_port(1);
        g.connect(o, i, 0);
        let a = g.add_module_named("a", Const { out: o, value: 0.0 }, &[], &[o]);
        let b = g.add_module_named(
            "b",
            Probe {
                inp: i,
                seen: Vec::new(),
            },
            &[i],
            &[],
        );
        g.set_timestep(a, SimTime::ns(10));
        g.set_timestep(b, SimTime::ns(20));
        assert!(matches!(
            g.build().unwrap_err(),
            TdfError::InconsistentTimestep { .. }
        ));
    }

    #[test]
    fn fanout_duplicates_samples() {
        let mut g = TdfGraph::new();
        let o = g.out_port(1);
        let i1 = g.in_port(1);
        let i2 = g.in_port(1);
        g.connect(o, i1, 0);
        g.connect(o, i2, 0);
        let c = g.add_module_named("c", Const { out: o, value: 7.0 }, &[], &[o]);
        let p1 = g.add_module_named(
            "p1",
            Probe {
                inp: i1,
                seen: Vec::new(),
            },
            &[i1],
            &[],
        );
        let p2 = g.add_module_named(
            "p2",
            Probe {
                inp: i2,
                seen: Vec::new(),
            },
            &[i2],
            &[],
        );
        g.set_timestep(c, SimTime::ns(5));
        let mut exec = g.build().unwrap();
        exec.run_iteration();
        assert_eq!(exec.module::<Probe>(p1).unwrap().seen, vec![7.0]);
        assert_eq!(exec.module::<Probe>(p2).unwrap().seen, vec![7.0]);
    }
}
