//! Differential property test: batched VM vs scalar VM, bit-for-bit.
//!
//! [`Program::eval_lanes`] is the structure-of-arrays interpreter behind
//! lane-batched Newton; its contract is that lane `l` of the batched
//! evaluation performs the *same IEEE-754 operations in the same order*
//! as a scalar [`Program::eval`] over that lane's gathered slots — so the
//! results must match to the last bit, NaN payloads included. This is a
//! design requirement of the batching layer (waveform determinism across
//! execution modes), not a tolerance comparison.
//!
//! Coverage:
//! * every [`Func`] variant and every [`BinOp`] variant, exercised by a
//!   dedicated program each (deterministically reachable, not left to
//!   chance);
//! * seeded-random expression trees mixing negation, `Cond`, nested
//!   calls, and all binary operators;
//! * lane counts 1, 4, and 33 — one lane (degenerate), a small power of
//!   two, and an odd width that defeats any accidental stride assumption;
//! * poisoned inputs: NaN, ±∞, ±0.0, and denormals appear in lane slots.

use amsvp_expr::vm::{self, Program};
use amsvp_expr::{BinOp, Expr, Func};

const ALL_FUNCS: [Func; 17] = [
    Func::Exp,
    Func::Ln,
    Func::Log10,
    Func::Sin,
    Func::Cos,
    Func::Tan,
    Func::Sinh,
    Func::Cosh,
    Func::Tanh,
    Func::Atan,
    Func::Sqrt,
    Func::Abs,
    Func::Floor,
    Func::Ceil,
    Func::Min,
    Func::Max,
    Func::Pow,
];

const ALL_BINOPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::And,
    BinOp::Or,
];

const LANE_WIDTHS: [usize; 3] = [1, 4, 33];
const N_VARS: usize = 6;

/// Values that stress IEEE edge handling — injected alongside ordinary
/// finite draws so every program sees non-finite operands in some lane.
const POISON: [f64; 8] = [
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    0.0,
    -0.0,
    f64::MIN_POSITIVE,
    -f64::MIN_POSITIVE / 2.0, // negative denormal
    1e308,
];

/// Deterministic xorshift64* stream (same generator as `vm_roundtrip`).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform draw in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Finite draw in `(-3, 3)`.
    fn finite(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
    }

    /// Mostly-finite draw with a 1-in-4 chance of a poison value.
    fn slot_value(&mut self) -> f64 {
        if self.below(4) == 0 {
            POISON[self.below(POISON.len())]
        } else {
            self.finite()
        }
    }
}

fn compile(e: &Expr<usize>) -> Program {
    vm::compile(e, &mut |v: &usize, delay| {
        (delay == 0 && *v < N_VARS).then_some(*v as u32)
    })
    .expect("generated programs contain no analog ops")
}

/// Evaluate `prog` over `lanes` SoA lanes and assert each lane is
/// bit-identical to the scalar VM over that lane's gathered slots.
fn assert_lanes_match_scalar(prog: &Program, slots: &[f64], lanes: usize, ctx: &str) {
    let mut batch_stack = Vec::new();
    let mut out = vec![0.0; lanes];
    prog.eval_lanes(slots, lanes, &mut batch_stack, &mut out);

    let mut scalar_stack = Vec::new();
    let mut gathered = [0.0; N_VARS];
    for l in 0..lanes {
        for (s, g) in gathered.iter_mut().enumerate() {
            *g = slots[s * lanes + l];
        }
        let scalar = prog.eval(&gathered, &mut scalar_stack);
        assert_eq!(
            scalar.to_bits(),
            out[l].to_bits(),
            "{ctx}: lane {l}/{lanes} diverged: scalar {scalar:?} ({:#018x}) \
             vs batched {:?} ({:#018x}); gathered slots {gathered:?}",
            scalar.to_bits(),
            out[l],
            out[l].to_bits(),
        );
    }
}

/// Fill an SoA slot block `[slot][lane]`, guaranteeing at least one NaN
/// and one ±∞ land somewhere in the block (when it has room for them).
fn fill_slots(rng: &mut Rng, lanes: usize) -> Vec<f64> {
    let mut slots: Vec<f64> = (0..N_VARS * lanes).map(|_| rng.slot_value()).collect();
    let n = slots.len();
    slots[rng.below(n)] = f64::NAN;
    slots[rng.below(n)] = f64::INFINITY;
    slots[rng.below(n)] = f64::NEG_INFINITY;
    slots
}

fn var(i: usize) -> Expr<usize> {
    Expr::var(i)
}

/// Seeded-random expression tree of bounded depth. Leaves are variables
/// or constants; interior nodes draw from negation, `Cond`, every binary
/// operator, and every function variant.
fn gen_expr(rng: &mut Rng, depth: u32) -> Expr<usize> {
    if depth == 0 || rng.below(6) == 0 {
        return if rng.below(3) == 0 {
            Expr::num(rng.finite())
        } else {
            var(rng.below(N_VARS))
        };
    }
    match rng.below(8) {
        0 => -gen_expr(rng, depth - 1),
        1 => Expr::cond(
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
        2 | 3 => {
            let f = ALL_FUNCS[rng.below(ALL_FUNCS.len())];
            if f.arity() == 1 {
                Expr::call1(f, gen_expr(rng, depth - 1))
            } else {
                Expr::call2(f, gen_expr(rng, depth - 1), gen_expr(rng, depth - 1))
            }
        }
        _ => Expr::bin(
            ALL_BINOPS[rng.below(ALL_BINOPS.len())],
            gen_expr(rng, depth - 1),
            gen_expr(rng, depth - 1),
        ),
    }
}

#[test]
fn every_func_variant_is_lane_exact() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for f in ALL_FUNCS {
        let e = match f.arity() {
            1 => Expr::call1(f, var(0) + var(1) * Expr::num(0.5)),
            _ => Expr::call2(f, var(0), var(1)),
        };
        let prog = compile(&e);
        for lanes in LANE_WIDTHS {
            for round in 0..8 {
                let slots = fill_slots(&mut rng, lanes);
                assert_lanes_match_scalar(
                    &prog,
                    &slots,
                    lanes,
                    &format!("func {} round {round}", f.name()),
                );
            }
        }
    }
}

#[test]
fn every_binop_variant_is_lane_exact() {
    let mut rng = Rng(0xD1B54A32D192ED03);
    for op in ALL_BINOPS {
        let prog = compile(&Expr::bin(op, var(0), var(1)));
        for lanes in LANE_WIDTHS {
            for round in 0..8 {
                let slots = fill_slots(&mut rng, lanes);
                assert_lanes_match_scalar(
                    &prog,
                    &slots,
                    lanes,
                    &format!("binop {op:?} round {round}"),
                );
            }
        }
    }
}

#[test]
fn negation_const_and_select_are_lane_exact() {
    // Negation of a NaN-capable operand, constant broadcast, and a Cond
    // whose guard differs per lane (so Select takes both arms within one
    // batched evaluation).
    let e = Expr::cond(
        Expr::bin(BinOp::Gt, var(0), Expr::num(0.0)),
        -(var(1) * Expr::num(2.5)),
        Expr::num(7.25) / var(2),
    );
    let prog = compile(&e);
    let mut rng = Rng(0xA0761D6478BD642F);
    for lanes in LANE_WIDTHS {
        for round in 0..16 {
            let slots = fill_slots(&mut rng, lanes);
            assert_lanes_match_scalar(&prog, &slots, lanes, &format!("select round {round}"));
        }
    }
}

#[test]
fn random_programs_are_lane_exact() {
    let mut rng = Rng(0xE220A8397B1DCDAF);
    for program_idx in 0..96 {
        let e = gen_expr(&mut rng, 5);
        let prog = compile(&e);
        for lanes in LANE_WIDTHS {
            for round in 0..4 {
                let slots = fill_slots(&mut rng, lanes);
                assert_lanes_match_scalar(
                    &prog,
                    &slots,
                    lanes,
                    &format!("random program {program_idx} round {round}"),
                );
            }
        }
    }
}

#[test]
fn random_programs_agree_on_all_poison_lanes() {
    // A block where *every* slot is a poison value: NaN propagation,
    // ∞ − ∞, 0 × ∞, comparisons against NaN — the batched loop must make
    // exactly the scalar path's calls even when nothing is finite.
    let mut rng = Rng(0x2545F4914F6CDD1D);
    for program_idx in 0..32 {
        let e = gen_expr(&mut rng, 4);
        let prog = compile(&e);
        for lanes in LANE_WIDTHS {
            let slots: Vec<f64> = (0..N_VARS * lanes)
                .map(|_| POISON[rng.below(POISON.len())])
                .collect();
            assert_lanes_match_scalar(
                &prog,
                &slots,
                lanes,
                &format!("all-poison program {program_idx}"),
            );
        }
    }
}
