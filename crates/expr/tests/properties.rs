//! Property-based tests for the expression engine.
//!
//! The central invariant: `simplified()`, `linear_in()`, `solve_linear()`,
//! and VM compilation must all preserve the *value* of an expression at
//! every environment.

use amsvp_expr::vm::compile;
use amsvp_expr::{solve_linear, BinOp, Expr, Func};
use proptest::prelude::*;

type E = Expr<u8>;

/// Random arithmetic expression over variables 0..4, depth-limited.
fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-4.0f64..4.0).prop_map(Expr::num),
        (0u8..4).prop_map(Expr::var),
        (0u8..4).prop_map(Expr::prev),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            inner.clone().prop_map(|a| -a),
            inner.clone().prop_map(|a| Expr::call1(Func::Sin, a)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| Expr::cond(
                    Expr::bin(BinOp::Gt, c, Expr::num(0.0)),
                    t,
                    e
                )),
        ]
    })
}

/// Random *linear-in-variable-0* expression: built only from constructs the
/// linear analyzer must accept.
fn arb_linear_expr() -> impl Strategy<Value = E> {
    let free_leaf = prop_oneof![
        (-4.0f64..4.0).prop_map(Expr::num),
        (1u8..4).prop_map(Expr::var),
        (0u8..4).prop_map(Expr::prev),
    ];
    let target_leaf = Just(Expr::var(0u8)).boxed();
    let leaf = prop_oneof![free_leaf.clone(), target_leaf];
    leaf.prop_recursive(4, 48, 2, move |inner| {
        let free = free_leaf.clone();
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            inner.clone().prop_map(|a| -a),
            // multiply by a target-free factor only
            (inner.clone(), free.clone()).prop_map(|(a, k)| a * k),
            (free, inner.clone()).prop_map(|(k, a)| k * a),
        ]
    })
}

fn env_from<'a>(
    vals: &'a [f64; 4],
    prevs: &'a [f64; 4],
) -> impl FnMut(&u8, u32) -> Option<f64> + 'a {
    move |v: &u8, delay: u32| {
        let i = *v as usize;
        Some(if delay == 0 { vals[i] } else { prevs[i] })
    }
}

proptest! {
    /// simplified() never changes the value of an expression.
    #[test]
    fn simplify_preserves_value(
        e in arb_expr(),
        vals in prop::array::uniform4(-3.0f64..3.0),
        prevs in prop::array::uniform4(-3.0f64..3.0),
    ) {
        let s = e.simplified();
        let a = e.eval(&mut env_from(&vals, &prevs)).unwrap();
        let b = s.eval(&mut env_from(&vals, &prevs)).unwrap();
        // Tolerate tiny reassociation error; identical NaN/inf patterns are
        // not produced because operands stay finite and no division occurs.
        prop_assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "simplify changed value: {a} vs {b} for {e}"
        );
    }

    /// Compiled VM programs agree with tree evaluation.
    #[test]
    fn vm_matches_tree_eval(
        e in arb_expr(),
        vals in prop::array::uniform4(-3.0f64..3.0),
        prevs in prop::array::uniform4(-3.0f64..3.0),
    ) {
        // slots: 0..4 current, 4..8 previous
        let prog = compile(&e, &mut |v, delay| {
            Some(u32::from(*v) + if delay == 0 { 0 } else { 4 })
        }).unwrap();
        let mut slots = [0.0; 8];
        slots[..4].copy_from_slice(&vals);
        slots[4..].copy_from_slice(&prevs);
        let mut stack = Vec::new();
        let vm = prog.eval(&slots, &mut stack);
        let tree = e.eval(&mut env_from(&vals, &prevs)).unwrap();
        prop_assert!(
            (vm - tree).abs() <= 1e-12 * tree.abs().max(1.0),
            "vm {vm} != tree {tree} for {e}"
        );
    }

    /// linear_in() is a correct decomposition: coeff*x0 + rest == original,
    /// and neither part references x0 at the current step.
    #[test]
    fn linear_decomposition_is_faithful(
        e in arb_linear_expr(),
        vals in prop::array::uniform4(-3.0f64..3.0),
        prevs in prop::array::uniform4(-3.0f64..3.0),
    ) {
        let lp = e.linear_in(&0).expect("expression built to be linear");
        prop_assert!(!lp.coeff.contains_var(&0));
        prop_assert!(!lp.rest.contains_var(&0));
        let c = lp.coeff.eval(&mut env_from(&vals, &prevs)).unwrap();
        let r = lp.rest.eval(&mut env_from(&vals, &prevs)).unwrap();
        let orig = e.eval(&mut env_from(&vals, &prevs)).unwrap();
        let recomposed = c * vals[0] + r;
        prop_assert!(
            (recomposed - orig).abs() <= 1e-6 * orig.abs().max(1.0),
            "decomposition mismatch: {recomposed} vs {orig} for {e}"
        );
    }

    /// solve_linear() produces a target-free expression that satisfies the
    /// original equation when substituted back.
    #[test]
    fn solved_value_satisfies_equation(
        rhs in arb_linear_expr(),
        vals in prop::array::uniform4(-3.0f64..3.0),
        prevs in prop::array::uniform4(-3.0f64..3.0),
    ) {
        // Equation: x0 = rhs. Guarantee solvability: coefficient of x0 on
        // the RHS must not be 1 (else 0*x0 = rest). Skip those cases.
        let lhs = Expr::var(0u8);
        let Some(solved) = solve_linear(&lhs, &rhs, &0) else {
            return Ok(()); // degenerate coefficient — correctly rejected
        };
        prop_assert!(!solved.contains_var(&0));
        let x0 = solved.eval(&mut env_from(&vals, &prevs)).unwrap();
        prop_assume!(x0.is_finite());
        // Substitute back and check lhs == rhs.
        let mut v2 = vals;
        v2[0] = x0;
        let rhs_val = rhs.eval(&mut env_from(&v2, &prevs)).unwrap();
        prop_assert!(
            (x0 - rhs_val).abs() <= 1e-5 * x0.abs().max(1.0),
            "solution {x0} does not satisfy equation (rhs {rhs_val}) for {rhs}"
        );
    }

    /// derivative() matches central finite differences on smooth expressions.
    #[test]
    fn derivative_matches_finite_difference(
        e in arb_linear_expr(), // linear → derivative exists and is smooth
        vals in prop::array::uniform4(-2.0f64..2.0),
        prevs in prop::array::uniform4(-2.0f64..2.0),
    ) {
        let d = e.derivative(&0).expect("linear expressions differentiate");
        let dv = d.eval(&mut env_from(&vals, &prevs)).unwrap();
        let h = 1e-5;
        let mut vp = vals;
        vp[0] += h;
        let mut vm_ = vals;
        vm_[0] -= h;
        let fp = e.eval(&mut env_from(&vp, &prevs)).unwrap();
        let fm = e.eval(&mut env_from(&vm_, &prevs)).unwrap();
        let fd = (fp - fm) / (2.0 * h);
        prop_assert!(
            (dv - fd).abs() <= 1e-4 * dv.abs().max(1.0),
            "derivative {dv} vs finite difference {fd} for {e}"
        );
    }
}
