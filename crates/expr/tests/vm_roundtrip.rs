//! Exhaustive compile-vs-tree agreement for the expression VM.
//!
//! The VM is the production evaluation path of the reference simulator's
//! Newton loop, so every [`Func`] variant, every [`BinOp`], negation and
//! `Cond` must round-trip through [`vm::compile`] bit-for-bit against the
//! tree-walk `eval` on a spread of seeded pseudo-random inputs.

use amsvp_expr::vm::{self, CompileError};
use amsvp_expr::{BinOp, Expr, Func};

const ALL_FUNCS: [Func; 17] = [
    Func::Exp,
    Func::Ln,
    Func::Log10,
    Func::Sin,
    Func::Cos,
    Func::Tan,
    Func::Sinh,
    Func::Cosh,
    Func::Tanh,
    Func::Atan,
    Func::Sqrt,
    Func::Abs,
    Func::Floor,
    Func::Ceil,
    Func::Min,
    Func::Max,
    Func::Pow,
];

const ALL_BINOPS: [BinOp; 12] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::And,
    BinOp::Or,
];

/// Deterministic xorshift64* stream mapped into `(-3, 3)`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        let u = self.0.wrapping_mul(0x2545F4914F6CDD1D);
        ((u >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
    }
}

fn x() -> Expr<&'static str> {
    Expr::var("x")
}

fn y() -> Expr<&'static str> {
    Expr::var("y")
}

fn assert_agree(e: &Expr<&'static str>, xv: f64, yv: f64, ctx: &str) {
    let prog = vm::compile(e, &mut |v: &&str, delay| match (*v, delay) {
        ("x", 0) => Some(0),
        ("y", 0) => Some(1),
        _ => None,
    })
    .unwrap_or_else(|err| panic!("{ctx}: compile failed: {err}"));
    let mut stack = Vec::new();
    let vm_val = prog.eval(&[xv, yv], &mut stack);
    let tree = e
        .eval(&mut |v: &&str, _| match *v {
            "x" => Some(xv),
            "y" => Some(yv),
            _ => None,
        })
        .unwrap();
    let agree = (tree - vm_val).abs() <= 1e-12 * (1.0 + tree.abs())
        || (tree.is_nan() && vm_val.is_nan())
        || (tree.is_infinite() && vm_val == tree);
    assert!(agree, "{ctx} at ({xv}, {yv}): vm {vm_val} vs tree {tree}");
}

#[test]
fn every_func_variant_round_trips() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for f in ALL_FUNCS {
        let e = match f.arity() {
            1 => Expr::call1(f, x() + y() * Expr::num(0.5)),
            _ => Expr::call2(f, x(), y()),
        };
        for _ in 0..64 {
            let (xv, yv) = (rng.next(), rng.next());
            assert_agree(&e, xv, yv, f.name());
        }
        // Domain-edge probes (negative logs, zero denominators, exact
        // ties) must agree in their handling of NaN/∞ as well.
        for (xv, yv) in [(0.0, 0.0), (-1.0, -1.0), (1.0, 1.0), (-2.5, 0.0)] {
            assert_agree(&e, xv, yv, f.name());
        }
    }
}

#[test]
fn every_binop_round_trips() {
    let mut rng = Rng(0xD1B54A32D192ED03);
    for op in ALL_BINOPS {
        let e = Expr::bin(op, x(), y());
        for _ in 0..64 {
            let (xv, yv) = (rng.next(), rng.next());
            assert_agree(&e, xv, yv, &format!("{op:?}"));
        }
        for (xv, yv) in [(1.0, 1.0), (0.0, 0.0), (-1.0, 1.0), (2.0, 0.0)] {
            assert_agree(&e, xv, yv, &format!("{op:?}"));
        }
    }
}

#[test]
fn nested_composite_round_trips() {
    // Negation, Cond with a computed guard, Prev-free nesting across every
    // precedence level — the kind of tree the simulator actually compiles.
    let e = Expr::cond(
        Expr::bin(BinOp::Gt, x() * y(), Expr::num(0.25)),
        -(Expr::call1(Func::Tanh, x()) / (y() + Expr::num(2.0))),
        Expr::call2(Func::Pow, Expr::call1(Func::Abs, x()), Expr::num(1.5))
            + Expr::call2(Func::Min, x(), y()),
    );
    let mut rng = Rng(0xA076_1D64_78BD_642F);
    for _ in 0..256 {
        let (xv, yv) = (rng.next(), rng.next());
        assert_agree(&e, xv, yv, "composite");
    }
}

#[test]
fn unresolved_ddt_fails_compilation() {
    let e = Expr::num(2.0) * Expr::ddt(x());
    let err = vm::compile(&e, &mut |_: &&str, _| Some(0)).unwrap_err();
    assert_eq!(err, CompileError::UnresolvedAnalogOp);
}

#[test]
fn unresolved_idt_fails_compilation() {
    let e = Expr::idt(x() + Expr::num(1.0));
    let err = vm::compile(&e, &mut |_: &&str, _| Some(0)).unwrap_err();
    assert_eq!(err, CompileError::UnresolvedAnalogOp);
    // The error is descriptive — build()-time panics surface it verbatim.
    assert!(err.to_string().contains("ddt/idt"));
}
