use crate::{BinOp, Expr, Func};

impl<V: Clone + Ord> Expr<V> {
    /// Symbolic partial derivative with respect to `v`.
    ///
    /// Delayed values ([`Expr::Prev`]) are treated as constants — in a
    /// time-stepping solver they belong to the previous step and do not
    /// depend on the current unknowns. This is exactly what the reference
    /// conservative simulator needs to build analytic Newton Jacobians
    /// after discretization.
    ///
    /// Piecewise definitions differentiate *branch-wise*: a conditional
    /// keeps its guard and differentiates both arms, which yields the
    /// almost-everywhere derivative even when the guard depends on `v`
    /// (the standard piecewise-linearization a Newton solver wants).
    /// `pow(a, b)` with a target-dependent exponent uses the general rule
    /// `a^b · (b′·ln a + b·a′/a)`, valid on the `a > 0` domain where a
    /// real-valued variable exponent is defined.
    ///
    /// Returns `None` when the derivative is not expressible in this
    /// algebra: remaining `ddt`/`idt` operators, or relational/logical
    /// operators whose operands depend on `v` (the result is a 0/1 step
    /// in `v`, i.e. discontinuous).
    ///
    /// # Example
    ///
    /// ```
    /// use amsvp_expr::Expr;
    ///
    /// let e = Expr::var("x") * Expr::var("x"); // x²
    /// let d = e.derivative(&"x").unwrap();
    /// let v = d.eval(&mut |_: &&str, _| Some(3.0)).unwrap();
    /// assert_eq!(v, 6.0); // 2x at x = 3
    /// ```
    pub fn derivative(&self, v: &V) -> Option<Expr<V>> {
        let d = self.derivative_raw(v)?;
        Some(d.simplified())
    }

    fn derivative_raw(&self, v: &V) -> Option<Expr<V>> {
        if !self.contains_var(v) {
            return Some(Expr::Num(0.0));
        }
        Some(match self {
            Expr::Var(x) if x == v => Expr::Num(1.0),
            Expr::Neg(a) => -a.derivative_raw(v)?,
            Expr::Bin(BinOp::Add, a, b) => a.derivative_raw(v)? + b.derivative_raw(v)?,
            Expr::Bin(BinOp::Sub, a, b) => a.derivative_raw(v)? - b.derivative_raw(v)?,
            Expr::Bin(BinOp::Mul, a, b) => {
                a.derivative_raw(v)? * (**b).clone() + (**a).clone() * b.derivative_raw(v)?
            }
            Expr::Bin(BinOp::Div, a, b) => {
                let da = a.derivative_raw(v)?;
                let db = b.derivative_raw(v)?;
                (da * (**b).clone() - (**a).clone() * db) / ((**b).clone() * (**b).clone())
            }
            Expr::Call(f, args) => return derive_call(*f, args, v),
            // Branch-wise (almost-everywhere) derivative: the guard is kept
            // verbatim and both arms differentiate, even when the guard
            // itself depends on `v`. At the switching surface the result is
            // one-sided, which is exactly what piecewise device models
            // (clipping, limiting) need from a Newton linearization.
            Expr::Cond(c, t, e) => {
                Expr::cond((**c).clone(), t.derivative_raw(v)?, e.derivative_raw(v)?)
            }
            // Relational/logical results are piecewise-constant in v; their
            // derivative is zero almost everywhere, but a dependence on v
            // means the expression is discontinuous in v — reject it so the
            // Newton solver falls back to numeric differencing.
            Expr::Bin(_, _, _) => return None,
            Expr::Ddt(_) | Expr::Idt(_) => return None,
            // contains_var was true, so plain leaves cannot reach here.
            Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => unreachable!(),
        })
    }
}

fn derive_call<V: Clone + Ord>(f: Func, args: &[Expr<V>], v: &V) -> Option<Expr<V>> {
    let a = args[0].clone();
    let da = args[0].derivative_raw(v)?;
    let d = match f {
        Func::Exp => da * Expr::call1(Func::Exp, a),
        Func::Ln => da / a,
        Func::Log10 => da / (a * Expr::num(std::f64::consts::LN_10)),
        Func::Sin => da * Expr::call1(Func::Cos, a),
        Func::Cos => -(da * Expr::call1(Func::Sin, a)),
        Func::Tan => {
            let c = Expr::call1(Func::Cos, a);
            da / (c.clone() * c)
        }
        Func::Sinh => da * Expr::call1(Func::Cosh, a),
        Func::Cosh => da * Expr::call1(Func::Sinh, a),
        Func::Tanh => {
            let t = Expr::call1(Func::Tanh, a);
            da * (Expr::num(1.0) - t.clone() * t)
        }
        Func::Atan => da / (Expr::num(1.0) + a.clone() * a),
        Func::Sqrt => da / (Expr::num(2.0) * Expr::call1(Func::Sqrt, a)),
        Func::Abs => {
            // d|a|/dv = sign(a) * da, expressed piecewise.
            Expr::cond(Expr::bin(BinOp::Ge, a, Expr::num(0.0)), da.clone(), -da)
        }
        Func::Floor | Func::Ceil => Expr::num(0.0),
        Func::Min => {
            let b = args[1].clone();
            let db = args[1].derivative_raw(v)?;
            Expr::cond(Expr::bin(BinOp::Le, a, b), da, db)
        }
        Func::Max => {
            let b = args[1].clone();
            let db = args[1].derivative_raw(v)?;
            Expr::cond(Expr::bin(BinOp::Ge, a, b), da, db)
        }
        Func::Pow => {
            let b = &args[1];
            if b.contains_var(v) {
                // General rule via a^b = exp(b·ln a):
                // d(a^b)/dv = a^b · (db·ln a + b·da/a), defined for a > 0 —
                // the domain on which a real variable exponent makes sense.
                let db = b.derivative_raw(v)?;
                Expr::call2(Func::Pow, a.clone(), b.clone())
                    * (db * Expr::call1(Func::Ln, a.clone()) + b.clone() * da / a)
            } else {
                // d(a^b)/dv = b * a^(b-1) * da, for exponent independent of v.
                b.clone() * Expr::call2(Func::Pow, a, b.clone() - Expr::num(1.0)) * da
            }
        }
    };
    Some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr<&'static str> {
        Expr::var("x")
    }

    fn eval_at(e: &Expr<&'static str>, xv: f64) -> f64 {
        e.eval(&mut |v: &&str, _| (*v == "x").then_some(xv))
            .unwrap()
    }

    #[test]
    fn polynomial_rules() {
        let e = x() * x() * Expr::num(3.0) + x(); // 3x² + x → 6x + 1
        let d = e.derivative(&"x").unwrap();
        assert!((eval_at(&d, 2.0) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn quotient_rule() {
        let e = Expr::num(1.0) / x(); // -1/x²
        let d = e.derivative(&"x").unwrap();
        assert!((eval_at(&d, 2.0) + 0.25).abs() < 1e-12);
    }

    #[test]
    fn chain_rule_through_functions() {
        let e = Expr::call1(Func::Exp, Expr::num(2.0) * x());
        let d = e.derivative(&"x").unwrap();
        let expect = 2.0 * (2.0_f64 * 1.5).exp();
        assert!((eval_at(&d, 1.5) - expect).abs() < 1e-9);

        let e = Expr::call1(Func::Sin, x());
        let d = e.derivative(&"x").unwrap();
        assert!((eval_at(&d, 0.7) - 0.7_f64.cos()).abs() < 1e-12);

        let e = Expr::call1(Func::Tanh, x());
        let d = e.derivative(&"x").unwrap();
        let t = 0.3_f64.tanh();
        assert!((eval_at(&d, 0.3) - (1.0 - t * t)).abs() < 1e-12);
    }

    #[test]
    fn prev_is_constant() {
        let e = x() * Expr::prev("x");
        let d = e.derivative(&"x").unwrap();
        let v = d
            .eval(&mut |v: &&str, delay| match (*v, delay) {
                ("x", 0) => Some(2.0),
                ("x", 1) => Some(7.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 7.0);
    }

    #[test]
    fn abs_and_minmax_piecewise() {
        let e = Expr::call1(Func::Abs, x());
        let d = e.derivative(&"x").unwrap();
        assert_eq!(eval_at(&d, 3.0), 1.0);
        assert_eq!(eval_at(&d, -3.0), -1.0);

        let e = Expr::call2(Func::Max, x() * Expr::num(2.0), Expr::num(1.0));
        let d = e.derivative(&"x").unwrap();
        assert_eq!(eval_at(&d, 5.0), 2.0);
        assert_eq!(eval_at(&d, 0.0), 0.0);
    }

    #[test]
    fn pow_constant_exponent() {
        let e = Expr::call2(Func::Pow, x(), Expr::num(3.0));
        let d = e.derivative(&"x").unwrap();
        assert!((eval_at(&d, 2.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn unsupported_cases_return_none() {
        assert!(Expr::ddt(x()).derivative(&"x").is_none());
        assert!(Expr::idt(x()).derivative(&"x").is_none());
        // A bare relational result is a 0/1 step in x — discontinuous.
        let rel = Expr::bin(BinOp::Lt, x(), Expr::num(0.0));
        assert!(rel.derivative(&"x").is_none());
    }

    #[test]
    fn pow_variable_exponent_uses_general_rule() {
        // d(2^x)/dx = 2^x · ln 2.
        let e = Expr::call2(Func::Pow, Expr::num(2.0), x());
        let d = e.derivative(&"x").unwrap();
        let expect = 2.0_f64.powf(1.5) * 2.0_f64.ln();
        assert!((eval_at(&d, 1.5) - expect).abs() < 1e-12);
        // d(x^x)/dx = x^x · (ln x + 1).
        let e = Expr::call2(Func::Pow, x(), x());
        let d = e.derivative(&"x").unwrap();
        let expect = 3.0_f64.powf(3.0) * (3.0_f64.ln() + 1.0);
        assert!((eval_at(&d, 3.0) - expect).abs() < 1e-9);
    }

    #[test]
    fn cond_with_dependent_guard_differentiates_branch_wise() {
        // Clipping: if x > 1 { 1 } else { 2x } → derivative 0 / 2.
        let e = Expr::cond(
            Expr::bin(BinOp::Gt, x(), Expr::num(1.0)),
            Expr::num(1.0),
            x() * Expr::num(2.0),
        );
        let d = e.derivative(&"x").unwrap();
        assert_eq!(eval_at(&d, 5.0), 0.0);
        assert_eq!(eval_at(&d, 0.2), 2.0);
    }

    #[test]
    fn derivative_of_free_expression_is_zero() {
        let e = Expr::var("y") * Expr::num(5.0);
        assert_eq!(e.derivative(&"x").unwrap(), Expr::num(0.0));
    }
}
