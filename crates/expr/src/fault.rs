//! Deterministic fault injection for the bytecode VM.
//!
//! Compiled only under the `fault-inject` feature. A harness *poisons*
//! the next evaluation on the current thread; the VM then replaces the
//! computed value with NaN — modeling a residual evaluation that went
//! non-finite — without perturbing any arithmetic before or after.
//! Take-once semantics (the poison clears as it fires) plus
//! thread-local scoping keep the injection deterministic under
//! work-stealing: exactly one evaluation is poisoned per arming, and
//! only on the arming thread.

use std::cell::Cell;

thread_local! {
    static SCALAR_POISON: Cell<bool> = const { Cell::new(false) };
    /// Bitmask of lanes to poison on the next `eval_lanes` call.
    static LANE_POISON: Cell<u64> = const { Cell::new(0) };
}

/// Poisons the next [`Program::eval`](crate::vm::Program::eval) on this
/// thread: it computes normally, then returns NaN.
pub fn poison_next_eval() {
    SCALAR_POISON.with(|c| c.set(true));
}

/// Poisons lane `lane` of the next
/// [`Program::eval_lanes`](crate::vm::Program::eval_lanes) on this
/// thread; every other lane's value is untouched. Multiple calls before
/// the evaluation accumulate lanes.
///
/// # Panics
///
/// Panics if `lane >= 64` (the poison mask is a single word; batched
/// callers in this workspace cap lane counts well below that).
pub fn poison_next_eval_lane(lane: usize) {
    assert!(lane < 64, "lane poison mask supports lanes 0..64");
    LANE_POISON.with(|c| c.set(c.get() | (1u64 << lane)));
}

/// Clears any pending poison on this thread.
pub fn clear_poison() {
    SCALAR_POISON.with(|c| c.set(false));
    LANE_POISON.with(|c| c.set(0));
}

pub(crate) fn take_scalar_poison() -> bool {
    SCALAR_POISON.with(|c| c.take())
}

pub(crate) fn take_lane_poison() -> u64 {
    LANE_POISON.with(|c| c.take())
}
