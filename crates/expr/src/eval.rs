use std::error::Error;
use std::fmt;

use crate::Expr;

/// Error produced by [`Expr::eval`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable (current or delayed) had no value in the environment.
    /// Carries the `Display` rendering of the variable.
    UnknownVariable(String),
    /// A `ddt`/`idt` analog operator was still present; such expressions
    /// must be discretized before numeric evaluation.
    UnresolvedAnalogOp,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownVariable(name) => {
                write!(f, "unknown variable `{name}` during evaluation")
            }
            EvalError::UnresolvedAnalogOp => {
                write!(f, "ddt/idt operator not resolved before evaluation")
            }
        }
    }
}

impl Error for EvalError {}

impl<V: Clone + Ord + fmt::Display> Expr<V> {
    /// Evaluates the expression against a variable environment.
    ///
    /// The environment is a closure `(variable, delay) -> Option<f64>`;
    /// `delay == 0` requests the current value, `delay == k` the value `k`
    /// steps ago. Returning `None` aborts evaluation with
    /// [`EvalError::UnknownVariable`].
    ///
    /// # Errors
    ///
    /// * [`EvalError::UnknownVariable`] when the environment cannot resolve
    ///   a leaf.
    /// * [`EvalError::UnresolvedAnalogOp`] when the tree still contains
    ///   `ddt`/`idt` (see [`Expr::has_analog_op`]).
    ///
    /// # Example
    ///
    /// ```
    /// use amsvp_expr::Expr;
    ///
    /// let e = Expr::var("x") - Expr::prev("x");
    /// let v = e.eval(&mut |_: &&str, delay| Some(if delay == 0 { 5.0 } else { 3.0 }));
    /// assert_eq!(v.unwrap(), 2.0);
    /// ```
    pub fn eval(&self, env: &mut impl FnMut(&V, u32) -> Option<f64>) -> Result<f64, EvalError> {
        match self {
            Expr::Num(v) => Ok(*v),
            Expr::Var(v) => env(v, 0).ok_or_else(|| EvalError::UnknownVariable(v.to_string())),
            Expr::Prev(v, k) => env(v, *k).ok_or_else(|| EvalError::UnknownVariable(v.to_string())),
            Expr::Neg(a) => Ok(-a.eval(env)?),
            Expr::Bin(op, a, b) => Ok(op.apply(a.eval(env)?, b.eval(env)?)),
            Expr::Call(f, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(env)?);
                }
                Ok(f.apply(&vals))
            }
            Expr::Ddt(_) | Expr::Idt(_) => Err(EvalError::UnresolvedAnalogOp),
            Expr::Cond(c, t, e) => {
                if c.eval(env)? != 0.0 {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
        }
    }

    /// Evaluates an expression that contains no variables at all.
    ///
    /// # Errors
    ///
    /// Fails with [`EvalError::UnknownVariable`] if a variable is present,
    /// or [`EvalError::UnresolvedAnalogOp`] for `ddt`/`idt`.
    pub fn eval_const(&self) -> Result<f64, EvalError> {
        self.eval(&mut |_, _| None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Func};

    #[test]
    fn eval_arithmetic() {
        let e = (Expr::var("a") + Expr::num(2.0)) * Expr::var("b");
        let v = e
            .eval(&mut |v: &&str, _| match *v {
                "a" => Some(1.0),
                "b" => Some(3.0),
                _ => None,
            })
            .unwrap();
        assert_eq!(v, 9.0);
    }

    #[test]
    fn eval_functions_and_cond() {
        let e = Expr::cond(
            Expr::bin(BinOp::Gt, Expr::var("x"), Expr::num(0.0)),
            Expr::call1(Func::Sqrt, Expr::var("x")),
            Expr::num(-1.0),
        );
        assert_eq!(e.eval(&mut |_, _| Some(4.0)).unwrap(), 2.0);
        assert_eq!(e.eval(&mut |_, _| Some(-4.0)).unwrap(), -1.0);
    }

    #[test]
    fn eval_prev_uses_delay() {
        let e = Expr::prev_n("x", 2);
        let v = e
            .eval(&mut |_: &&str, k| Some(f64::from(k) * 10.0))
            .unwrap();
        assert_eq!(v, 20.0);
    }

    #[test]
    fn unknown_variable_reports_name() {
        let e = Expr::var("mystery");
        let err = e.eval(&mut |_: &&str, _| None).unwrap_err();
        assert_eq!(err, EvalError::UnknownVariable("mystery".into()));
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn analog_ops_refuse_evaluation() {
        let e = Expr::ddt(Expr::var("x"));
        assert_eq!(
            e.eval(&mut |_: &&str, _| Some(1.0)).unwrap_err(),
            EvalError::UnresolvedAnalogOp
        );
        let e = Expr::idt(Expr::var("x"));
        assert_eq!(
            e.eval(&mut |_: &&str, _| Some(1.0)).unwrap_err(),
            EvalError::UnresolvedAnalogOp
        );
    }

    #[test]
    fn eval_const_works_without_env() {
        let e: Expr<&str> = Expr::num(2.0) * Expr::num(21.0);
        assert_eq!(e.eval_const().unwrap(), 42.0);
        assert!(Expr::var("x").eval_const().is_err());
    }
}
