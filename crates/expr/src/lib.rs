//! Symbolic expression engine for the mixed-signal abstraction pipeline.
//!
//! Every stage of the DATE 2016 abstraction methodology manipulates the
//! right-hand sides of dipole/Kirchhoff equations as expression trees
//! ("values and variables are leaves of the tree whereas operators are
//! intermediate nodes", §IV-A of the paper). This crate provides that tree —
//! [`Expr`] — together with the operations those stages need:
//!
//! * arithmetic/relational operators, math functions, conditionals,
//!   and the analog operators `ddt`/`idt` ([`Expr::Ddt`], [`Expr::Idt`]);
//! * delayed-value references ([`Expr::Prev`]) that appear once derivatives
//!   have been discretized (the paper's "output value at −Δt");
//! * numeric evaluation against a variable environment ([`Expr::eval`]);
//! * algebraic simplification ([`Expr::simplified`]);
//! * linear-coefficient extraction and linear-equation solving
//!   ([`Expr::linear_in`], [`solve_linear`]) — the paper's Step 3 "solution
//!   of the linear equation";
//! * symbolic differentiation ([`Expr::derivative`]) used by the reference
//!   conservative simulator for analytic Jacobians;
//! * compilation to a compact stack-machine program ([`vm::compile`])
//!   so generated models evaluate at "plain C++" speed.
//!
//! Expressions are generic over the variable (symbol) type `V`; the netlist
//! layer instantiates `V` with electrical quantities like `V(out,gnd)`.
//!
//! # Example
//!
//! ```
//! use amsvp_expr::Expr;
//!
//! // (x + 1) * 2, evaluated at x = 3.
//! let e = (Expr::var("x") + Expr::num(1.0)) * Expr::num(2.0);
//! let v = e.eval(&mut |var: &&str, _prev| if *var == "x" { Some(3.0) } else { None });
//! assert_eq!(v.unwrap(), 8.0);
//! ```

mod derivative;
mod display;
mod eval;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod linear;
mod simplify;
pub mod vm;

pub use eval::EvalError;
pub use linear::{solve_linear, LinearPart};

use std::collections::BTreeSet;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
    /// `a / b`
    Div,
    /// `a < b` (1.0 / 0.0)
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// logical and (operands nonzero)
    And,
    /// logical or
    Or,
}

impl BinOp {
    /// Applies the operator to two numbers (relational operators yield
    /// `1.0`/`0.0`).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Lt => f64::from(a < b),
            BinOp::Le => f64::from(a <= b),
            BinOp::Gt => f64::from(a > b),
            BinOp::Ge => f64::from(a >= b),
            BinOp::Eq => f64::from(a == b),
            BinOp::Ne => f64::from(a != b),
            BinOp::And => f64::from(a != 0.0 && b != 0.0),
            BinOp::Or => f64::from(a != 0.0 || b != 0.0),
        }
    }

    /// Whether this operator produces a boolean (0/1) result.
    pub fn is_relational(self) -> bool {
        !matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
    }
}

/// Built-in math functions, mirroring the Verilog-AMS standard functions the
/// paper lists ("math functions (e.g., exp(x), sin(x))").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// `exp(x)`
    Exp,
    /// natural logarithm `ln(x)`
    Ln,
    /// base-10 logarithm
    Log10,
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `sinh(x)`
    Sinh,
    /// `cosh(x)`
    Cosh,
    /// `tanh(x)`
    Tanh,
    /// `atan(x)`
    Atan,
    /// `sqrt(x)`
    Sqrt,
    /// `abs(x)`
    Abs,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `min(a, b)`
    Min,
    /// `max(a, b)`
    Max,
    /// `pow(a, b)`
    Pow,
}

impl Func {
    /// Number of arguments the function takes.
    pub fn arity(self) -> usize {
        match self {
            Func::Min | Func::Max | Func::Pow => 2,
            _ => 1,
        }
    }

    /// The Verilog-AMS name of the function.
    pub fn name(self) -> &'static str {
        match self {
            Func::Exp => "exp",
            Func::Ln => "ln",
            Func::Log10 => "log",
            Func::Sin => "sin",
            Func::Cos => "cos",
            Func::Tan => "tan",
            Func::Sinh => "sinh",
            Func::Cosh => "cosh",
            Func::Tanh => "tanh",
            Func::Atan => "atan",
            Func::Sqrt => "sqrt",
            Func::Abs => "abs",
            Func::Floor => "floor",
            Func::Ceil => "ceil",
            Func::Min => "min",
            Func::Max => "max",
            Func::Pow => "pow",
        }
    }

    /// Looks a function up by its Verilog-AMS name.
    pub fn from_name(name: &str) -> Option<Func> {
        Some(match name {
            "exp" => Func::Exp,
            "ln" => Func::Ln,
            "log" | "log10" => Func::Log10,
            "sin" => Func::Sin,
            "cos" => Func::Cos,
            "tan" => Func::Tan,
            "sinh" => Func::Sinh,
            "cosh" => Func::Cosh,
            "tanh" => Func::Tanh,
            "atan" => Func::Atan,
            "sqrt" => Func::Sqrt,
            "abs" => Func::Abs,
            "floor" => Func::Floor,
            "ceil" => Func::Ceil,
            "min" => Func::Min,
            "max" => Func::Max,
            "pow" => Func::Pow,
            _ => return None,
        })
    }

    /// Applies the function to its arguments.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()`.
    pub fn apply(self, args: &[f64]) -> f64 {
        assert_eq!(args.len(), self.arity(), "{} arity mismatch", self.name());
        match self {
            Func::Exp => args[0].exp(),
            Func::Ln => args[0].ln(),
            Func::Log10 => args[0].log10(),
            Func::Sin => args[0].sin(),
            Func::Cos => args[0].cos(),
            Func::Tan => args[0].tan(),
            Func::Sinh => args[0].sinh(),
            Func::Cosh => args[0].cosh(),
            Func::Tanh => args[0].tanh(),
            Func::Atan => args[0].atan(),
            Func::Sqrt => args[0].sqrt(),
            Func::Abs => args[0].abs(),
            Func::Floor => args[0].floor(),
            Func::Ceil => args[0].ceil(),
            Func::Min => args[0].min(args[1]),
            Func::Max => args[0].max(args[1]),
            Func::Pow => args[0].powf(args[1]),
        }
    }
}

/// A symbolic expression over variables of type `V`.
///
/// `V` is any cloneable, ordered, displayable symbol type; the abstraction
/// pipeline instantiates it with electrical quantities, the parser with
/// plain identifiers.
///
/// The analog operators [`Expr::Ddt`] (time derivative) and [`Expr::Idt`]
/// (time integral) are *symbolic*: they cannot be numerically evaluated until
/// a discretization pass replaces them ([`EvalError::UnresolvedAnalogOp`]).
/// [`Expr::Prev`] refers to the value a variable held `k` time steps ago and
/// is what discretization produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr<V> {
    /// Numeric literal.
    Num(f64),
    /// Variable reference (current value).
    Var(V),
    /// Value of the variable `k ≥ 1` time steps in the past.
    Prev(V, u32),
    /// Arithmetic negation.
    Neg(Box<Expr<V>>),
    /// Binary operation.
    Bin(BinOp, Box<Expr<V>>, Box<Expr<V>>),
    /// Math function call.
    Call(Func, Vec<Expr<V>>),
    /// Time derivative (Verilog-AMS `ddt`).
    Ddt(Box<Expr<V>>),
    /// Time integral (Verilog-AMS `idt`).
    Idt(Box<Expr<V>>),
    /// Conditional: `if cond != 0 { then } else { other }`.
    Cond(Box<Expr<V>>, Box<Expr<V>>, Box<Expr<V>>),
}

impl<V> Expr<V> {
    /// Numeric literal constructor.
    pub fn num(v: f64) -> Self {
        Expr::Num(v)
    }

    /// Variable reference constructor.
    pub fn var(v: V) -> Self {
        Expr::Var(v)
    }

    /// Reference to the value of `v` one time step ago.
    pub fn prev(v: V) -> Self {
        Expr::Prev(v, 1)
    }

    /// Reference to the value of `v`, `k` time steps ago.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; use [`Expr::var`] for the current value.
    pub fn prev_n(v: V, k: u32) -> Self {
        assert!(k >= 1, "Prev delay must be at least one step");
        Expr::Prev(v, k)
    }

    /// Time derivative `ddt(e)`.
    pub fn ddt(e: Expr<V>) -> Self {
        Expr::Ddt(Box::new(e))
    }

    /// Time integral `idt(e)`.
    pub fn idt(e: Expr<V>) -> Self {
        Expr::Idt(Box::new(e))
    }

    /// Unary function application.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not unary.
    pub fn call1(f: Func, a: Expr<V>) -> Self {
        assert_eq!(f.arity(), 1, "{} is not unary", f.name());
        Expr::Call(f, vec![a])
    }

    /// Binary function application.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not binary.
    pub fn call2(f: Func, a: Expr<V>, b: Expr<V>) -> Self {
        assert_eq!(f.arity(), 2, "{} is not binary", f.name());
        Expr::Call(f, vec![a, b])
    }

    /// Conditional expression `if c != 0 { t } else { e }`.
    pub fn cond(c: Expr<V>, t: Expr<V>, e: Expr<V>) -> Self {
        Expr::Cond(Box::new(c), Box::new(t), Box::new(e))
    }

    /// Binary operation constructor.
    pub fn bin(op: BinOp, a: Expr<V>, b: Expr<V>) -> Self {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Whether the expression is the literal `0.0`.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Num(v) if *v == 0.0)
    }

    /// Whether the expression is the literal `1.0`.
    pub fn is_one(&self) -> bool {
        matches!(self, Expr::Num(v) if *v == 1.0)
    }

    /// Returns the constant value if the expression is a literal.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Expr::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Number of nodes in the tree (a size metric used by complexity
    /// benchmarks).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => 0,
            Expr::Neg(a) | Expr::Ddt(a) | Expr::Idt(a) => a.node_count(),
            Expr::Bin(_, a, b) => a.node_count() + b.node_count(),
            Expr::Call(_, args) => args.iter().map(Expr::node_count).sum(),
            Expr::Cond(c, t, e) => c.node_count() + t.node_count() + e.node_count(),
        }
    }

    /// Whether any `ddt`/`idt` analog operator remains in the tree.
    pub fn has_analog_op(&self) -> bool {
        match self {
            Expr::Ddt(_) | Expr::Idt(_) => true,
            Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => false,
            Expr::Neg(a) => a.has_analog_op(),
            Expr::Bin(_, a, b) => a.has_analog_op() || b.has_analog_op(),
            Expr::Call(_, args) => args.iter().any(Expr::has_analog_op),
            Expr::Cond(c, t, e) => c.has_analog_op() || t.has_analog_op() || e.has_analog_op(),
        }
    }
}

impl<V: Clone + Ord> Expr<V> {
    /// Collects the set of variables referenced (current *or* delayed).
    pub fn variables(&self) -> BTreeSet<V> {
        let mut out = BTreeSet::new();
        self.visit_vars(&mut |v, _| {
            out.insert(v.clone());
        });
        out
    }

    /// Collects only the variables referenced at the *current* time step
    /// (i.e. via [`Expr::Var`], not [`Expr::Prev`]).
    pub fn current_variables(&self) -> BTreeSet<V> {
        let mut out = BTreeSet::new();
        self.visit_vars(&mut |v, delayed| {
            if !delayed {
                out.insert(v.clone());
            }
        });
        out
    }

    /// Visits every variable leaf; `delayed` tells whether the reference is
    /// a [`Expr::Prev`].
    pub fn visit_vars(&self, f: &mut impl FnMut(&V, bool)) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => f(v, false),
            Expr::Prev(v, _) => f(v, true),
            Expr::Neg(a) | Expr::Ddt(a) | Expr::Idt(a) => a.visit_vars(f),
            Expr::Bin(_, a, b) => {
                a.visit_vars(f);
                b.visit_vars(f);
            }
            Expr::Call(_, args) => args.iter().for_each(|a| a.visit_vars(f)),
            Expr::Cond(c, t, e) => {
                c.visit_vars(f);
                t.visit_vars(f);
                e.visit_vars(f);
            }
        }
    }

    /// Whether `v` occurs at the current time step anywhere in the tree.
    pub fn contains_var(&self, v: &V) -> bool {
        let mut found = false;
        self.visit_vars(&mut |x, delayed| {
            if !delayed && x == v {
                found = true;
            }
        });
        found
    }

    /// Replaces every *current* occurrence of `v` with `replacement`.
    /// Delayed ([`Expr::Prev`]) occurrences are untouched.
    pub fn substitute(&self, v: &V, replacement: &Expr<V>) -> Expr<V> {
        match self {
            Expr::Var(x) if x == v => replacement.clone(),
            Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => self.clone(),
            Expr::Neg(a) => Expr::Neg(Box::new(a.substitute(v, replacement))),
            Expr::Ddt(a) => Expr::Ddt(Box::new(a.substitute(v, replacement))),
            Expr::Idt(a) => Expr::Idt(Box::new(a.substitute(v, replacement))),
            Expr::Bin(op, a, b) => Expr::bin(
                *op,
                a.substitute(v, replacement),
                b.substitute(v, replacement),
            ),
            Expr::Call(f, args) => Expr::Call(
                *f,
                args.iter().map(|a| a.substitute(v, replacement)).collect(),
            ),
            Expr::Cond(c, t, e) => Expr::cond(
                c.substitute(v, replacement),
                t.substitute(v, replacement),
                e.substitute(v, replacement),
            ),
        }
    }

    /// Maps the variable type, preserving structure.
    pub fn map_vars<W, F: FnMut(&V) -> W>(&self, f: &mut F) -> Expr<W> {
        match self {
            Expr::Num(v) => Expr::Num(*v),
            Expr::Var(v) => Expr::Var(f(v)),
            Expr::Prev(v, k) => Expr::Prev(f(v), *k),
            Expr::Neg(a) => Expr::Neg(Box::new(a.map_vars(f))),
            Expr::Ddt(a) => Expr::Ddt(Box::new(a.map_vars(f))),
            Expr::Idt(a) => Expr::Idt(Box::new(a.map_vars(f))),
            Expr::Bin(op, a, b) => Expr::bin(*op, a.map_vars(f), b.map_vars(f)),
            Expr::Call(func, args) => {
                Expr::Call(*func, args.iter().map(|a| a.map_vars(f)).collect())
            }
            Expr::Cond(c, t, e) => Expr::cond(c.map_vars(f), t.map_vars(f), e.map_vars(f)),
        }
    }
}

// Operator sugar: `a + b`, `a - b`, `a * b`, `a / b`, `-a` on owned
// expressions build the corresponding tree nodes.

impl<V> std::ops::Add for Expr<V> {
    type Output = Expr<V>;
    fn add(self, rhs: Expr<V>) -> Expr<V> {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl<V> std::ops::Sub for Expr<V> {
    type Output = Expr<V>;
    fn sub(self, rhs: Expr<V>) -> Expr<V> {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl<V> std::ops::Mul for Expr<V> {
    type Output = Expr<V>;
    fn mul(self, rhs: Expr<V>) -> Expr<V> {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl<V> std::ops::Div for Expr<V> {
    type Output = Expr<V>;
    fn div(self, rhs: Expr<V>) -> Expr<V> {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl<V> std::ops::Neg for Expr<V> {
    type Output = Expr<V>;
    fn neg(self) -> Expr<V> {
        Expr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_predicates() {
        let z: Expr<&str> = Expr::num(0.0);
        assert!(z.is_zero());
        assert!(!z.is_one());
        assert_eq!(Expr::<&str>::num(1.5).as_num(), Some(1.5));
        assert!(Expr::<&str>::num(1.0).is_one());
        assert_eq!(Expr::var("x").as_num(), None);
    }

    #[test]
    fn ops_build_trees() {
        let e = Expr::var("x") + Expr::num(1.0);
        assert_eq!(e.node_count(), 3);
        let e = -(Expr::var("x") * Expr::var("y"));
        assert_eq!(e.node_count(), 4);
    }

    #[test]
    fn variables_collects_all() {
        let e = Expr::var("a") + Expr::prev("b") * Expr::var("a");
        let vars = e.variables();
        assert!(vars.contains("a"));
        assert!(vars.contains("b"));
        assert_eq!(vars.len(), 2);
        let cur = e.current_variables();
        assert!(cur.contains("a"));
        assert!(!cur.contains("b"));
    }

    #[test]
    fn contains_var_ignores_prev() {
        let e = Expr::prev("x") + Expr::var("y");
        assert!(!e.contains_var(&"x"));
        assert!(e.contains_var(&"y"));
    }

    #[test]
    fn substitute_replaces_current_only() {
        let e = Expr::var("x") + Expr::prev("x");
        let s = e.substitute(&"x", &Expr::num(5.0));
        // Var replaced, Prev untouched.
        assert_eq!(s, Expr::num(5.0) + Expr::prev("x"));
    }

    #[test]
    fn map_vars_changes_type() {
        let e = Expr::var("ab") + Expr::num(1.0);
        let mapped: Expr<usize> = e.map_vars(&mut |s: &&str| s.len());
        assert!(mapped.contains_var(&2));
    }

    #[test]
    fn analog_op_detection() {
        let e = Expr::ddt(Expr::var("x")) * Expr::num(2.0);
        assert!(e.has_analog_op());
        let e2 = Expr::var("x") + Expr::num(1.0);
        assert!(!e2.has_analog_op());
        assert!(Expr::idt(Expr::<&str>::num(1.0)).has_analog_op());
    }

    #[test]
    fn func_metadata_roundtrip() {
        for f in [
            Func::Exp,
            Func::Ln,
            Func::Log10,
            Func::Sin,
            Func::Cos,
            Func::Tan,
            Func::Sinh,
            Func::Cosh,
            Func::Tanh,
            Func::Atan,
            Func::Sqrt,
            Func::Abs,
            Func::Floor,
            Func::Ceil,
            Func::Min,
            Func::Max,
            Func::Pow,
        ] {
            assert_eq!(Func::from_name(f.name()), Some(f));
        }
        assert_eq!(Func::from_name("nope"), None);
    }

    #[test]
    fn binop_apply_matrix() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
        assert_eq!(BinOp::Lt.apply(1.0, 2.0), 1.0);
        assert_eq!(BinOp::Ge.apply(1.0, 2.0), 0.0);
        assert_eq!(BinOp::And.apply(1.0, 0.0), 0.0);
        assert_eq!(BinOp::Or.apply(1.0, 0.0), 1.0);
        assert!(BinOp::Lt.is_relational());
        assert!(!BinOp::Mul.is_relational());
    }

    #[test]
    #[should_panic(expected = "Prev delay")]
    fn prev_zero_rejected() {
        let _ = Expr::prev_n("x", 0);
    }
}
