use crate::{BinOp, Expr};

/// Decomposition of an expression as `coeff * target + rest`, where neither
/// `coeff` nor `rest` references the target at the current time step.
///
/// Produced by [`Expr::linear_in`]. Delayed ([`Expr::Prev`]) references to
/// the target are allowed inside `rest` — they are the "output value at −Δt"
/// the paper explicitly keeps.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearPart<V> {
    /// Coefficient of the target variable.
    pub coeff: Expr<V>,
    /// Everything that does not multiply the target.
    pub rest: Expr<V>,
}

impl<V: Clone + Ord> Expr<V> {
    /// Decomposes `self` as `coeff * Var(target) + rest`.
    ///
    /// Returns `None` when the expression is not linear in `target` (for
    /// example `target * target`, `exp(target)`, or a `ddt(target)` that
    /// has not been discretized yet).
    ///
    /// Conditionals whose guard does not reference the target stay linear:
    /// both branches are decomposed and the parts recombined under the same
    /// guard, which is what makes the piecewise-linear extension of the
    /// paper (§III-C) work.
    ///
    /// # Example
    ///
    /// ```
    /// use amsvp_expr::Expr;
    ///
    /// // 3*x + y  →  coeff 3, rest y
    /// let e = Expr::num(3.0) * Expr::var("x") + Expr::var("y");
    /// let lp = e.linear_in(&"x").unwrap();
    /// assert_eq!(lp.coeff, Expr::num(3.0));
    /// assert_eq!(lp.rest, Expr::var("y"));
    /// ```
    pub fn linear_in(&self, target: &V) -> Option<LinearPart<V>> {
        let lp = self.linear_in_raw(target)?;
        Some(LinearPart {
            coeff: lp.coeff.simplified(),
            rest: lp.rest.simplified(),
        })
    }

    fn linear_in_raw(&self, target: &V) -> Option<LinearPart<V>> {
        if !self.contains_var(target) {
            return Some(LinearPart {
                coeff: Expr::Num(0.0),
                rest: self.clone(),
            });
        }
        match self {
            Expr::Var(v) if v == target => Some(LinearPart {
                coeff: Expr::Num(1.0),
                rest: Expr::Num(0.0),
            }),
            // contains_var returned true, so every other leaf case is
            // unreachable; handled by the catch-all below.
            Expr::Neg(a) => {
                let la = a.linear_in_raw(target)?;
                Some(LinearPart {
                    coeff: -la.coeff,
                    rest: -la.rest,
                })
            }
            Expr::Bin(BinOp::Add, a, b) => {
                let la = a.linear_in_raw(target)?;
                let lb = b.linear_in_raw(target)?;
                Some(LinearPart {
                    coeff: la.coeff + lb.coeff,
                    rest: la.rest + lb.rest,
                })
            }
            Expr::Bin(BinOp::Sub, a, b) => {
                let la = a.linear_in_raw(target)?;
                let lb = b.linear_in_raw(target)?;
                Some(LinearPart {
                    coeff: la.coeff - lb.coeff,
                    rest: la.rest - lb.rest,
                })
            }
            Expr::Bin(BinOp::Mul, a, b) => {
                // Exactly one side may reference the target.
                if !a.contains_var(target) {
                    let lb = b.linear_in_raw(target)?;
                    Some(LinearPart {
                        coeff: (**a).clone() * lb.coeff,
                        rest: (**a).clone() * lb.rest,
                    })
                } else if !b.contains_var(target) {
                    let la = a.linear_in_raw(target)?;
                    Some(LinearPart {
                        coeff: la.coeff * (**b).clone(),
                        rest: la.rest * (**b).clone(),
                    })
                } else {
                    None
                }
            }
            Expr::Bin(BinOp::Div, a, b) => {
                if b.contains_var(target) {
                    return None;
                }
                let la = a.linear_in_raw(target)?;
                Some(LinearPart {
                    coeff: la.coeff / (**b).clone(),
                    rest: la.rest / (**b).clone(),
                })
            }
            Expr::Cond(c, t, e) => {
                if c.contains_var(target) {
                    return None;
                }
                let lt = t.linear_in_raw(target)?;
                let le = e.linear_in_raw(target)?;
                Some(LinearPart {
                    coeff: Expr::cond((**c).clone(), lt.coeff, le.coeff),
                    rest: Expr::cond((**c).clone(), lt.rest, le.rest),
                })
            }
            // Relational operators, function calls, and analog operators on
            // the target are not linear.
            _ => None,
        }
    }
}

/// Solves the linear equation `lhs = rhs` for `target`.
///
/// This is the paper's final elaboration before code generation (§IV-C,
/// Fig. 7): occurrences of the output on the right-hand side of its own
/// equation are eliminated, leaving only inputs, other quantities, and
/// explicitly delayed values.
///
/// Returns `None` when the equation is not linear in `target` or the
/// coefficient of `target` is identically zero (the equation does not
/// constrain the target).
///
/// # Example
///
/// ```
/// use amsvp_expr::{solve_linear, Expr};
///
/// // x = u - 2*x  →  x = u / 3
/// let lhs = Expr::var("x");
/// let rhs = Expr::var("u") - Expr::num(2.0) * Expr::var("x");
/// let solved = solve_linear(&lhs, &rhs, &"x").unwrap();
/// let v = solved
///     .eval(&mut |v: &&str, _| if *v == "u" { Some(9.0) } else { None })
///     .unwrap();
/// assert!((v - 3.0).abs() < 1e-12);
/// ```
pub fn solve_linear<V: Clone + Ord>(lhs: &Expr<V>, rhs: &Expr<V>, target: &V) -> Option<Expr<V>> {
    // Bring everything to one side: lhs - rhs = 0 ≡ coeff*t + rest = 0.
    let combined = lhs.clone() - rhs.clone();
    let lp = combined.linear_in(target)?;
    if lp.coeff.as_num() == Some(0.0) {
        return None;
    }
    // t = -rest / coeff
    Some(((-lp.rest) / lp.coeff).simplified())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Func;

    fn x() -> Expr<&'static str> {
        Expr::var("x")
    }
    fn y() -> Expr<&'static str> {
        Expr::var("y")
    }

    #[test]
    fn simple_decomposition() {
        let e = Expr::num(2.0) * x() + y() * Expr::num(4.0);
        let lp = e.linear_in(&"x").unwrap();
        assert_eq!(lp.coeff, Expr::num(2.0));
        assert_eq!(lp.rest, y() * Expr::num(4.0));
    }

    #[test]
    fn free_expression_has_zero_coeff() {
        let e = y() + Expr::num(1.0);
        let lp = e.linear_in(&"x").unwrap();
        assert_eq!(lp.coeff, Expr::num(0.0));
        assert_eq!(lp.rest, e);
    }

    #[test]
    fn prev_target_counts_as_free() {
        let e = x() + Expr::prev("x");
        let lp = e.linear_in(&"x").unwrap();
        assert_eq!(lp.coeff, Expr::num(1.0));
        assert_eq!(lp.rest, Expr::prev("x"));
    }

    #[test]
    fn nested_linear_combination() {
        // (x + y) / 2 - (3 - x)  →  coeff 1.5, rest y/2 - 3
        let e = (x() + y()) / Expr::num(2.0) - (Expr::num(3.0) - x());
        let lp = e.linear_in(&"x").unwrap();
        let c = lp.coeff.eval_const().unwrap();
        assert!((c - 1.5).abs() < 1e-12);
        let r = lp
            .rest
            .eval(&mut |v: &&str, _| (*v == "y").then_some(4.0))
            .unwrap();
        assert!((r - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn nonlinear_cases_rejected() {
        assert!((x() * x()).linear_in(&"x").is_none());
        assert!(Expr::call1(Func::Exp, x()).linear_in(&"x").is_none());
        assert!((y() / x()).linear_in(&"x").is_none());
        assert!(Expr::ddt(x()).linear_in(&"x").is_none());
        // Guard referencing the target is rejected too.
        let c = Expr::cond(x(), y(), Expr::num(0.0));
        assert!(c.linear_in(&"x").is_none());
    }

    #[test]
    fn conditional_stays_linear() {
        // if y > 0 { 2x } else { 3x + 1 }
        let e = Expr::cond(
            Expr::bin(crate::BinOp::Gt, y(), Expr::num(0.0)),
            Expr::num(2.0) * x(),
            Expr::num(3.0) * x() + Expr::num(1.0),
        );
        let lp = e.linear_in(&"x").unwrap();
        let mut env_pos = |v: &&str, _: u32| (*v == "y").then_some(1.0);
        assert_eq!(lp.coeff.eval(&mut env_pos).unwrap(), 2.0);
        let mut env_neg = |v: &&str, _: u32| (*v == "y").then_some(-1.0);
        assert_eq!(lp.coeff.eval(&mut env_neg).unwrap(), 3.0);
        assert_eq!(lp.rest.eval(&mut env_neg).unwrap(), 1.0);
    }

    #[test]
    fn solve_backward_euler_shape() {
        // The RC pattern: v = u - k*(v - prev(v))
        let k = 2.5;
        let lhs = x();
        let rhs = Expr::var("u") - Expr::num(k) * (x() - Expr::prev("x"));
        let solved = solve_linear(&lhs, &rhs, &"x").unwrap();
        assert!(!solved.contains_var(&"x"));
        // v = (u + k*prev) / (1 + k)
        let u = 1.0;
        let prev = 0.5;
        let got = solved
            .eval(&mut |v: &&str, delay| match (*v, delay) {
                ("u", 0) => Some(u),
                ("x", 1) => Some(prev),
                _ => None,
            })
            .unwrap();
        let expect = (u + k * prev) / (1.0 + k);
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn solve_rejects_unconstrained() {
        // y = y + 1 has no x at all → coefficient of x is zero.
        assert!(solve_linear(&y(), &(y() + Expr::num(1.0)), &"x").is_none());
        // x = x is degenerate (0*x = 0).
        assert!(solve_linear(&x(), &x(), &"x").is_none());
    }

    #[test]
    fn solve_plain_algebra() {
        // 3x + 6 = 0 → x = -2
        let solved = solve_linear(
            &(Expr::num(3.0) * x() + Expr::num(6.0)),
            &Expr::num(0.0),
            &"x",
        )
        .unwrap();
        assert_eq!(solved.eval_const().unwrap(), -2.0);
    }
}
