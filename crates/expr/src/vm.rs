//! A compact stack-machine compiler/evaluator for resolved expressions.
//!
//! The paper's end target is *generated C++*: constant-coefficient update
//! statements executed in a tight loop. The closest honest Rust analogue —
//! short of emitting and invoking `rustc` — is compiling the expression
//! trees once into flat bytecode and evaluating that in a loop without any
//! tree walking or hashing. That is what powers the "C++" rows of the
//! reproduced tables.
//!
//! Variables are compiled down to *slot* indices into a flat `f64` state
//! array supplied at evaluation time; the caller decides the slot layout
//! (current values, delayed values, inputs — all just slots).
//!
//! # Example
//!
//! ```
//! use amsvp_expr::vm::compile;
//! use amsvp_expr::Expr;
//!
//! // slot 0 = x, slot 1 = prev(x)
//! let e = Expr::var("x") * Expr::num(2.0) + Expr::prev("x");
//! let prog = compile(&e, &mut |_v, delay| Some(if delay == 0 { 0 } else { 1 }))
//!     .expect("resolvable");
//! let mut stack = Vec::new();
//! assert_eq!(prog.eval(&[3.0, 1.0], &mut stack), 7.0);
//! ```

use crate::{BinOp, Expr, Func};
use std::error::Error;
use std::fmt;

/// One bytecode instruction of the expression VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push a constant.
    Const(f64),
    /// Push the value of a state slot.
    Load(u32),
    /// Negate the top of stack.
    Neg,
    /// Pop two, apply the operator, push the result.
    Bin(BinOp),
    /// Pop one argument, apply the function, push.
    Call1(Func),
    /// Pop two arguments, apply the function, push.
    Call2(Func),
    /// Pop `else`, `then`, `cond`; push `cond != 0 ? then : else`.
    Select,
}

/// Error produced by [`compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// `ddt`/`idt` must be discretized before compilation.
    UnresolvedAnalogOp,
    /// The slot resolver returned `None` for a variable (rendered with
    /// `Display`).
    UnresolvedVariable(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnresolvedAnalogOp => {
                write!(f, "ddt/idt operator not resolved before compilation")
            }
            CompileError::UnresolvedVariable(v) => {
                write!(f, "no slot assigned for variable `{v}`")
            }
        }
    }
}

impl Error for CompileError {}

/// A compiled expression: flat bytecode plus the stack depth it needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    code: Vec<Instr>,
    max_stack: usize,
}

impl Program {
    /// The instruction sequence (for inspection/tests).
    pub fn code(&self) -> &[Instr] {
        &self.code
    }

    /// Maximum operand-stack depth the program can reach.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Evaluates the program against a slot array.
    ///
    /// `stack` is scratch space reused across calls to avoid allocation in
    /// simulation loops; it is cleared on entry.
    ///
    /// # Panics
    ///
    /// Panics if a `Load` references a slot outside `slots` (a compile-time
    /// resolver bug) or if the program is empty.
    #[inline]
    pub fn eval(&self, slots: &[f64], stack: &mut Vec<f64>) -> f64 {
        stack.clear();
        stack.reserve(self.max_stack);
        for instr in &self.code {
            match *instr {
                Instr::Const(v) => stack.push(v),
                Instr::Load(slot) => stack.push(slots[slot as usize]),
                Instr::Neg => {
                    let a = stack.last_mut().expect("stack underflow");
                    *a = -*a;
                }
                Instr::Bin(op) => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.last_mut().expect("stack underflow");
                    *a = op.apply(*a, b);
                }
                Instr::Call1(f) => {
                    let a = stack.last_mut().expect("stack underflow");
                    *a = f.apply(&[*a]);
                }
                Instr::Call2(f) => {
                    let b = stack.pop().expect("stack underflow");
                    let a = stack.last_mut().expect("stack underflow");
                    *a = f.apply(&[*a, b]);
                }
                Instr::Select => {
                    let e = stack.pop().expect("stack underflow");
                    let t = stack.pop().expect("stack underflow");
                    let c = stack.last_mut().expect("stack underflow");
                    *c = if *c != 0.0 { t } else { e };
                }
            }
        }
        debug_assert_eq!(stack.len(), 1, "program left a non-singleton stack");
        let result = stack.pop().expect("empty program");
        #[cfg(feature = "fault-inject")]
        if crate::fault::take_scalar_poison() {
            return f64::NAN;
        }
        result
    }

    /// Evaluates the program over `lanes` independent slot blocks at once
    /// — the structure-of-arrays hot path of batched scenario sweeps.
    ///
    /// `slots` is laid out `[slot][lane]` with the lane index contiguous:
    /// slot `s` of lane `l` lives at `slots[s * lanes + l]`, so the inner
    /// lane loops below run over adjacent memory and auto-vectorize. The
    /// result for lane `l` is written to `out[l]`.
    ///
    /// # Determinism
    ///
    /// Each lane executes exactly the IEEE-754 operations [`Program::eval`]
    /// would execute on that lane's slots, in the same order — batching
    /// only changes the loop nesting, never the arithmetic — so every
    /// `out[l]` is **bit-identical** to a scalar evaluation of lane `l`
    /// (NaN payloads included). This is a design requirement the batched
    /// solver relies on, not a tolerance.
    ///
    /// `stack` is scratch space of `max_stack * lanes` values, reused
    /// across calls; it is resized on entry.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != lanes`, if a `Load` references a slot
    /// outside `slots` for the given lane count, or if the program is
    /// empty.
    pub fn eval_lanes(&self, slots: &[f64], lanes: usize, stack: &mut Vec<f64>, out: &mut [f64]) {
        assert_eq!(out.len(), lanes, "output lane count");
        if lanes == 0 {
            return;
        }
        stack.clear();
        stack.resize(self.max_stack.max(1) * lanes, 0.0);
        let mut depth = 0usize;
        for instr in &self.code {
            match *instr {
                Instr::Const(v) => {
                    stack[depth * lanes..(depth + 1) * lanes].fill(v);
                    depth += 1;
                }
                Instr::Load(slot) => {
                    let src = &slots[slot as usize * lanes..(slot as usize + 1) * lanes];
                    stack[depth * lanes..(depth + 1) * lanes].copy_from_slice(src);
                    depth += 1;
                }
                Instr::Neg => {
                    for v in &mut stack[(depth - 1) * lanes..depth * lanes] {
                        *v = -*v;
                    }
                }
                Instr::Bin(op) => {
                    depth -= 1;
                    let (lo, hi) = stack.split_at_mut(depth * lanes);
                    let a = &mut lo[(depth - 1) * lanes..];
                    let b = &hi[..lanes];
                    // Dispatch on the operator once per instruction, not
                    // once per lane: the four arithmetic ops are the hot
                    // path and must compile to straight-line lane loops.
                    match op {
                        BinOp::Add => {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x += y;
                            }
                        }
                        BinOp::Sub => {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x -= y;
                            }
                        }
                        BinOp::Mul => {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x *= y;
                            }
                        }
                        BinOp::Div => {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x /= y;
                            }
                        }
                        other => {
                            for (x, y) in a.iter_mut().zip(b) {
                                *x = other.apply(*x, *y);
                            }
                        }
                    }
                }
                Instr::Call1(f) => {
                    for v in &mut stack[(depth - 1) * lanes..depth * lanes] {
                        *v = f.apply(&[*v]);
                    }
                }
                Instr::Call2(f) => {
                    depth -= 1;
                    let (lo, hi) = stack.split_at_mut(depth * lanes);
                    let a = &mut lo[(depth - 1) * lanes..];
                    let b = &hi[..lanes];
                    for (x, y) in a.iter_mut().zip(b) {
                        *x = f.apply(&[*x, *y]);
                    }
                }
                Instr::Select => {
                    depth -= 2;
                    let (lo, hi) = stack.split_at_mut(depth * lanes);
                    let c = &mut lo[(depth - 1) * lanes..];
                    let (t, e) = hi.split_at(lanes);
                    for l in 0..lanes {
                        c[l] = if c[l] != 0.0 { t[l] } else { e[l] };
                    }
                }
            }
        }
        assert_eq!(depth, 1, "program left a non-singleton stack");
        out.copy_from_slice(&stack[..lanes]);
        #[cfg(feature = "fault-inject")]
        {
            let mask = crate::fault::take_lane_poison();
            if mask != 0 {
                for (l, v) in out.iter_mut().enumerate().take(64) {
                    if mask & (1u64 << l) != 0 {
                        *v = f64::NAN;
                    }
                }
            }
        }
    }
}

/// Compiles a resolved expression into a [`Program`].
///
/// `resolve` maps `(variable, delay)` to a slot index; `delay == 0` is the
/// current value, `delay == k` the value `k` steps ago. The caller owns the
/// slot layout and is responsible for shifting delayed slots between steps.
///
/// # Errors
///
/// * [`CompileError::UnresolvedAnalogOp`] if `ddt`/`idt` nodes remain.
/// * [`CompileError::UnresolvedVariable`] if `resolve` returns `None`.
pub fn compile<V: Clone + Ord + fmt::Display>(
    expr: &Expr<V>,
    resolve: &mut impl FnMut(&V, u32) -> Option<u32>,
) -> Result<Program, CompileError> {
    let mut code = Vec::new();
    emit(expr, resolve, &mut code)?;
    let max_stack = simulate_stack(&code);
    Ok(Program { code, max_stack })
}

fn emit<V: Clone + Ord + fmt::Display>(
    expr: &Expr<V>,
    resolve: &mut impl FnMut(&V, u32) -> Option<u32>,
    code: &mut Vec<Instr>,
) -> Result<(), CompileError> {
    match expr {
        Expr::Num(v) => code.push(Instr::Const(*v)),
        Expr::Var(v) => {
            let slot =
                resolve(v, 0).ok_or_else(|| CompileError::UnresolvedVariable(v.to_string()))?;
            code.push(Instr::Load(slot));
        }
        Expr::Prev(v, k) => {
            let slot =
                resolve(v, *k).ok_or_else(|| CompileError::UnresolvedVariable(v.to_string()))?;
            code.push(Instr::Load(slot));
        }
        Expr::Neg(a) => {
            emit(a, resolve, code)?;
            code.push(Instr::Neg);
        }
        Expr::Bin(op, a, b) => {
            emit(a, resolve, code)?;
            emit(b, resolve, code)?;
            code.push(Instr::Bin(*op));
        }
        Expr::Call(f, args) => {
            for a in args {
                emit(a, resolve, code)?;
            }
            code.push(match f.arity() {
                1 => Instr::Call1(*f),
                _ => Instr::Call2(*f),
            });
        }
        Expr::Ddt(_) | Expr::Idt(_) => return Err(CompileError::UnresolvedAnalogOp),
        Expr::Cond(c, t, e) => {
            emit(c, resolve, code)?;
            emit(t, resolve, code)?;
            emit(e, resolve, code)?;
            code.push(Instr::Select);
        }
    }
    Ok(())
}

fn simulate_stack(code: &[Instr]) -> usize {
    let mut depth = 0usize;
    let mut max = 0usize;
    for instr in code {
        match instr {
            Instr::Const(_) | Instr::Load(_) => depth += 1,
            Instr::Neg | Instr::Call1(_) => {}
            Instr::Bin(_) | Instr::Call2(_) => depth -= 1,
            Instr::Select => depth -= 2,
        }
        max = max.max(depth);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Expr<&'static str> {
        Expr::var("x")
    }

    fn compile_xy(e: &Expr<&'static str>) -> Program {
        // x → slot 0, y → slot 1, prev(x) → slot 2
        compile(e, &mut |v, delay| match (*v, delay) {
            ("x", 0) => Some(0),
            ("y", 0) => Some(1),
            ("x", 1) => Some(2),
            _ => None,
        })
        .unwrap()
    }

    #[test]
    fn arithmetic_matches_eval() {
        let e = (x() + Expr::var("y")) * Expr::num(2.0) - Expr::prev("x");
        let prog = compile_xy(&e);
        let mut stack = Vec::new();
        let got = prog.eval(&[3.0, 4.0, 1.0], &mut stack);
        assert_eq!(got, 13.0);
        // Reuse of the scratch stack must not change results.
        assert_eq!(prog.eval(&[3.0, 4.0, 1.0], &mut stack), 13.0);
    }

    #[test]
    fn functions_and_select() {
        let e = Expr::cond(
            Expr::bin(BinOp::Gt, x(), Expr::num(0.0)),
            Expr::call1(Func::Sqrt, x()),
            Expr::call2(Func::Max, x(), Expr::num(-1.0)),
        );
        let prog = compile_xy(&e);
        let mut stack = Vec::new();
        assert_eq!(prog.eval(&[9.0, 0.0, 0.0], &mut stack), 3.0);
        assert_eq!(prog.eval(&[-5.0, 0.0, 0.0], &mut stack), -1.0);
    }

    #[test]
    fn stack_depth_is_tracked() {
        let e = (x() + x()) * (x() + (x() * x()));
        let prog = compile_xy(&e);
        assert!(prog.max_stack() >= 3);
        assert!(!prog.code().is_empty());
        let mut stack = Vec::new();
        assert_eq!(prog.eval(&[2.0, 0.0, 0.0], &mut stack), 24.0);
    }

    #[test]
    fn unresolved_variable_is_reported() {
        let e = Expr::var("ghost");
        let err = compile(&e, &mut |_: &&str, _| None).unwrap_err();
        assert_eq!(err, CompileError::UnresolvedVariable("ghost".into()));
    }

    #[test]
    fn analog_ops_rejected() {
        let e = Expr::ddt(x());
        let err = compile(&e, &mut |_, _| Some(0)).unwrap_err();
        assert_eq!(err, CompileError::UnresolvedAnalogOp);
    }

    #[test]
    fn lanes_match_scalar_bitwise() {
        let e = Expr::cond(
            Expr::bin(BinOp::Gt, x(), Expr::num(0.0)),
            Expr::call1(Func::Exp, x() * Expr::num(0.5)) / (Expr::var("y") + Expr::num(1.0)),
            Expr::call2(Func::Pow, Expr::var("y"), x()) - Expr::prev("x"),
        );
        let prog = compile_xy(&e);
        // 3 slots × 5 lanes, SoA: slot s lane l at [s * 5 + l]. Lane 3
        // carries NaN, lane 4 an infinity — payloads must survive bitwise.
        let lanes = 5;
        let per_lane = [
            [4.0, 1.0, 0.5],
            [-2.0, 3.0, 0.25],
            [0.0, -1.0, 7.0],
            [f64::NAN, 2.0, 1.0],
            [f64::INFINITY, -0.5, 2.0],
        ];
        let mut soa = vec![0.0; 3 * lanes];
        for (l, vals) in per_lane.iter().enumerate() {
            for (s, v) in vals.iter().enumerate() {
                soa[s * lanes + l] = *v;
            }
        }
        let mut stack = Vec::new();
        let mut out = vec![0.0; lanes];
        prog.eval_lanes(&soa, lanes, &mut stack, &mut out);
        let mut scalar_stack = Vec::new();
        for (l, vals) in per_lane.iter().enumerate() {
            let scalar = prog.eval(vals, &mut scalar_stack);
            assert_eq!(
                scalar.to_bits(),
                out[l].to_bits(),
                "lane {l}: scalar {scalar} vs batch {}",
                out[l]
            );
        }
        // Scratch reuse across calls must not change results.
        let mut out2 = vec![0.0; lanes];
        prog.eval_lanes(&soa, lanes, &mut stack, &mut out2);
        for (a, b) in out.iter().zip(&out2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn single_lane_is_the_scalar_path() {
        let e = (x() + Expr::var("y")) * Expr::num(2.0) - Expr::prev("x");
        let prog = compile_xy(&e);
        let slots = [3.0, 4.0, 1.0];
        let mut stack = Vec::new();
        let mut out = [0.0];
        prog.eval_lanes(&slots, 1, &mut stack, &mut out);
        assert_eq!(out[0], 13.0);
        let mut none: [f64; 0] = [];
        prog.eval_lanes(&[], 0, &mut stack, &mut none); // no-op, no panic
    }

    #[test]
    fn agreement_with_tree_eval_on_composite() {
        let e = Expr::call1(Func::Exp, x() * Expr::num(0.1))
            + Expr::call1(Func::Sin, Expr::var("y"))
            - x() / (Expr::var("y") + Expr::num(2.0));
        let prog = compile_xy(&e);
        let mut stack = Vec::new();
        for (xv, yv) in [(0.0, 0.0), (1.0, -0.5), (-2.0, 3.0)] {
            let tree = e
                .eval(&mut |v: &&str, _| match *v {
                    "x" => Some(xv),
                    "y" => Some(yv),
                    _ => None,
                })
                .unwrap();
            let vm = prog.eval(&[xv, yv, 0.0], &mut stack);
            assert!((tree - vm).abs() < 1e-12);
        }
    }
}
