use crate::{BinOp, Expr};

impl<V: Clone + Ord> Expr<V> {
    /// Returns an algebraically simplified copy of the expression.
    ///
    /// Simplification performs constant folding and the usual identities —
    /// `x + 0`, `x * 1`, `x * 0`, `0 / x`, `--x`, constant conditionals —
    /// bottom-up. It never changes the value of the expression at any
    /// environment (the property tests in this crate check exactly that),
    /// with the standard caveat that `x * 0 → 0` assumes finite `x`.
    ///
    /// # Example
    ///
    /// ```
    /// use amsvp_expr::Expr;
    ///
    /// let e = (Expr::var("x") * Expr::num(1.0)) + Expr::num(0.0);
    /// assert_eq!(e.simplified(), Expr::var("x"));
    /// ```
    pub fn simplified(&self) -> Expr<V> {
        match self {
            Expr::Num(_) | Expr::Var(_) | Expr::Prev(..) => self.clone(),
            Expr::Neg(a) => {
                let a = a.simplified();
                match a {
                    Expr::Num(v) => Expr::Num(-v),
                    // --x → x
                    Expr::Neg(inner) => *inner,
                    other => Expr::Neg(Box::new(other)),
                }
            }
            Expr::Ddt(a) => {
                let a = a.simplified();
                if let Some(v) = a.as_num() {
                    // d/dt of a constant is zero.
                    let _ = v;
                    Expr::Num(0.0)
                } else {
                    Expr::Ddt(Box::new(a))
                }
            }
            Expr::Idt(a) => Expr::Idt(Box::new(a.simplified())),
            Expr::Bin(op, a, b) => simplify_bin(*op, a.simplified(), b.simplified()),
            Expr::Call(f, args) => {
                let args: Vec<Expr<V>> = args.iter().map(Expr::simplified).collect();
                if let Some(vals) = args.iter().map(Expr::as_num).collect::<Option<Vec<f64>>>() {
                    Expr::Num(f.apply(&vals))
                } else {
                    Expr::Call(*f, args)
                }
            }
            Expr::Cond(c, t, e) => {
                let c = c.simplified();
                let t = t.simplified();
                let e = e.simplified();
                match c.as_num() {
                    Some(v) if v != 0.0 => t,
                    Some(_) => e,
                    None if t == e => t,
                    None => Expr::cond(c, t, e),
                }
            }
        }
    }
}

fn simplify_bin<V: Clone + Ord>(op: BinOp, a: Expr<V>, b: Expr<V>) -> Expr<V> {
    // Constant folding first.
    if let (Some(x), Some(y)) = (a.as_num(), b.as_num()) {
        return Expr::Num(op.apply(x, y));
    }
    match op {
        BinOp::Add => {
            if a.is_zero() {
                return b;
            }
            if b.is_zero() {
                return a;
            }
            // a + (-b) → a - b
            if let Expr::Neg(nb) = b {
                return Expr::bin(BinOp::Sub, a, *nb);
            }
        }
        BinOp::Sub => {
            if b.is_zero() {
                return a;
            }
            if a.is_zero() {
                return Expr::Neg(Box::new(b)).simplified();
            }
            // a - (-b) → a + b
            if let Expr::Neg(nb) = b {
                return Expr::bin(BinOp::Add, a, *nb);
            }
            if a == b {
                return Expr::Num(0.0);
            }
        }
        BinOp::Mul => {
            if a.is_zero() || b.is_zero() {
                return Expr::Num(0.0);
            }
            if a.is_one() {
                return b;
            }
            if b.is_one() {
                return a;
            }
            if a.as_num() == Some(-1.0) {
                return Expr::Neg(Box::new(b)).simplified();
            }
            if b.as_num() == Some(-1.0) {
                return Expr::Neg(Box::new(a)).simplified();
            }
        }
        BinOp::Div => {
            if a.is_zero() {
                return Expr::Num(0.0);
            }
            if b.is_one() {
                return a;
            }
            // x / c → x * (1/c) keeps later passes simpler and matches the
            // constant-coefficient style of the generated code.
            if let Some(c) = b.as_num() {
                if c != 0.0 {
                    return simplify_bin(BinOp::Mul, a, Expr::Num(1.0 / c));
                }
            }
        }
        _ => {}
    }
    Expr::bin(op, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Func;

    fn x() -> Expr<&'static str> {
        Expr::var("x")
    }

    #[test]
    fn additive_identities() {
        assert_eq!((x() + Expr::num(0.0)).simplified(), x());
        assert_eq!((Expr::num(0.0) + x()).simplified(), x());
        assert_eq!((x() - Expr::num(0.0)).simplified(), x());
        assert_eq!((Expr::num(0.0) - x()).simplified(), -x());
    }

    #[test]
    fn multiplicative_identities() {
        assert_eq!((x() * Expr::num(1.0)).simplified(), x());
        assert_eq!((x() * Expr::num(0.0)).simplified(), Expr::num(0.0));
        assert_eq!((Expr::num(0.0) / x()).simplified(), Expr::num(0.0));
        assert_eq!((x() / Expr::num(1.0)).simplified(), x());
        assert_eq!((x() * Expr::num(-1.0)).simplified(), -x());
    }

    #[test]
    fn division_by_constant_becomes_multiplication() {
        let e = (x() / Expr::num(4.0)).simplified();
        assert_eq!(e, x() * Expr::num(0.25));
    }

    #[test]
    fn constant_folding_recurses() {
        let e = (Expr::num(2.0) + Expr::num(3.0)) * (Expr::num(4.0) - Expr::num(1.0));
        assert_eq!(e.simplified(), Expr::<&str>::num(15.0));
        let f = Expr::call1(Func::Sqrt, Expr::num(9.0) * Expr::num(1.0));
        assert_eq!(f.simplified(), Expr::<&str>::num(3.0));
    }

    #[test]
    fn double_negation_cancels() {
        assert_eq!((-(-x())).simplified(), x());
        assert_eq!((-Expr::<&str>::num(2.0)).simplified(), Expr::num(-2.0));
    }

    #[test]
    fn sub_self_is_zero() {
        assert_eq!((x() - x()).simplified(), Expr::num(0.0));
    }

    #[test]
    fn add_neg_becomes_sub() {
        let e = (x() + (-Expr::var("y"))).simplified();
        assert_eq!(e, x() - Expr::var("y"));
        let e = (x() - (-Expr::var("y"))).simplified();
        assert_eq!(e, x() + Expr::var("y"));
    }

    #[test]
    fn cond_with_constant_guard() {
        let c = Expr::cond(Expr::num(1.0), x(), Expr::var("y"));
        assert_eq!(c.simplified(), x());
        let c = Expr::cond(Expr::num(0.0), x(), Expr::var("y"));
        assert_eq!(c.simplified(), Expr::var("y"));
        let c = Expr::cond(Expr::var("c"), x(), x());
        assert_eq!(c.simplified(), x());
    }

    #[test]
    fn ddt_of_constant_is_zero() {
        let e = Expr::<&str>::ddt(Expr::num(3.0) * Expr::num(2.0));
        assert_eq!(e.simplified(), Expr::num(0.0));
    }

    #[test]
    fn simplify_preserves_value_spot_check() {
        let e = ((x() * Expr::num(1.0) + Expr::num(0.0)) / Expr::num(2.0)) - (-Expr::var("y"));
        let s = e.simplified();
        for (xv, yv) in [(1.0, 2.0), (-3.5, 0.25), (0.0, 0.0)] {
            let mut env = |v: &&str, _: u32| match *v {
                "x" => Some(xv),
                "y" => Some(yv),
                _ => None,
            };
            assert!((e.eval(&mut env).unwrap() - s.eval(&mut env).unwrap()).abs() < 1e-12);
        }
    }
}
