use std::fmt;

use crate::{BinOp, Expr};

/// Operator precedence for parenthesization (higher binds tighter).
fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne => 3,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
        BinOp::Add | BinOp::Sub => 5,
        BinOp::Mul | BinOp::Div => 6,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

impl<V: fmt::Display> Expr<V> {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        match self {
            Expr::Num(v) => {
                if *v < 0.0 && parent > 5 {
                    write!(f, "({v})")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Prev(v, 1) => write!(f, "prev({v})"),
            Expr::Prev(v, k) => write!(f, "prev({v}, {k})"),
            Expr::Neg(a) => {
                write!(f, "-")?;
                a.fmt_prec(f, 7)
            }
            Expr::Bin(op, a, b) => {
                let p = precedence(*op);
                let needs_parens = p < parent;
                if needs_parens {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, p)?;
                write!(f, " {} ", op_str(*op))?;
                // Right operand gets p+1 so non-associative `-`/`/` chains
                // print their grouping.
                b.fmt_prec(f, p + 1)?;
                if needs_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Expr::Call(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    a.fmt_prec(f, 0)?;
                }
                write!(f, ")")
            }
            Expr::Ddt(a) => {
                write!(f, "ddt(")?;
                a.fmt_prec(f, 0)?;
                write!(f, ")")
            }
            Expr::Idt(a) => {
                write!(f, "idt(")?;
                a.fmt_prec(f, 0)?;
                write!(f, ")")
            }
            Expr::Cond(c, t, e) => {
                write!(f, "(")?;
                c.fmt_prec(f, 0)?;
                write!(f, " ? ")?;
                t.fmt_prec(f, 0)?;
                write!(f, " : ")?;
                e.fmt_prec(f, 0)?;
                write!(f, ")")
            }
        }
    }
}

impl<V: fmt::Display> fmt::Display for Expr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Func;

    fn x() -> Expr<&'static str> {
        Expr::var("x")
    }
    fn y() -> Expr<&'static str> {
        Expr::var("y")
    }

    #[test]
    fn precedence_parenthesization() {
        let e = (x() + y()) * Expr::num(2.0);
        assert_eq!(e.to_string(), "(x + y) * 2");
        let e = x() + y() * Expr::num(2.0);
        assert_eq!(e.to_string(), "x + y * 2");
    }

    #[test]
    fn subtraction_grouping_is_explicit() {
        let e = x() - (y() - Expr::num(1.0));
        assert_eq!(e.to_string(), "x - (y - 1)");
        let e = (x() - y()) - Expr::num(1.0);
        assert_eq!(e.to_string(), "x - y - 1");
    }

    #[test]
    fn functions_and_analog_ops() {
        let e = Expr::call1(Func::Exp, x()) + Expr::ddt(y());
        assert_eq!(e.to_string(), "exp(x) + ddt(y)");
        let e = Expr::call2(Func::Max, x(), Expr::num(0.0));
        assert_eq!(e.to_string(), "max(x, 0)");
    }

    #[test]
    fn prev_and_cond() {
        let e = Expr::cond(
            Expr::bin(crate::BinOp::Gt, x(), Expr::num(0.0)),
            Expr::prev("x"),
            Expr::prev_n("x", 2),
        );
        assert_eq!(e.to_string(), "(x > 0 ? prev(x) : prev(x, 2))");
    }

    #[test]
    fn negative_literal_in_product() {
        let e = x() * Expr::num(-3.0);
        assert_eq!(e.to_string(), "x * (-3)");
    }

    #[test]
    fn neg_binds_tightly() {
        let e = -(x() + y());
        assert_eq!(e.to_string(), "-(x + y)");
        let e = -x() + y();
        assert_eq!(e.to_string(), "-x + y");
    }
}
