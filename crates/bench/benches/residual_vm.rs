//! Tree-walk vs. compiled-VM residual evaluation on the paper's Figure 2
//! circuit (the active filter with op-amp clipping).
//!
//! The reference simulator's Newton loop evaluates every residual once per
//! iteration; this bench isolates that cost for both evaluation paths to
//! show what compiling the `QExpr` trees to bytecode buys. The full
//! per-step cost (residuals + Jacobian reuse + LU solve) is printed
//! alongside for context.

use amsim::Simulation;
use amsvp_bench::microbench;

const FIG2: &str = include_str!("../../vams-parser/tests/fixtures/active_filter.va");

fn main() {
    let module = vams_parser::parse_module(FIG2).expect("Figure 2 fixture parses");
    let mut sim = Simulation::new(&module)
        .dt(50e-9)
        .output("V(out)")
        .build()
        .expect("active filter lowers");
    // Step to a representative operating point so the residuals see
    // non-trivial slot values (history, clipping region).
    for _ in 0..100 {
        sim.step(&[1.0]);
    }
    let n = sim.dim();
    let mut out = vec![0.0; n];

    microbench("residual_eval", "tree_walk/active_filter", || {
        sim.residuals_tree(&mut out);
        out[0]
    });
    microbench("residual_eval", "vm/active_filter", || {
        sim.residuals_vm(&mut out);
        out[0]
    });
    microbench("residual_eval", "full_step/active_filter", || {
        sim.step(&[1.0]);
        sim.output(0)
    });
}
