//! Complexity scaling of the methodology's steps (§IV: acquisition O(|B|),
//! enrichment O(|N|²)+O(|N|³)+O(|B|²), assemble/solve O(|N|³)) and of the
//! generated models, over RC ladders of growing depth.

use amsvp_bench::microbench;
use amsvp_core::acquire::acquire;
use amsvp_core::assemble::assemble;
use amsvp_core::circuits::rc_ladder;
use amsvp_core::enrich::enrich;
use amsvp_core::{Abstraction, Quantity};

const SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    for n in SIZES {
        let source = rc_ladder(n);
        let module = vams_parser::parse_module(&source).unwrap();
        microbench("scaling_pipeline", &format!("acquire/{n}"), || {
            acquire(&module).unwrap()
        });
        let model = acquire(&module).unwrap();
        microbench("scaling_pipeline", &format!("enrich/{n}"), || {
            enrich(&model).unwrap()
        });
        microbench("scaling_pipeline", &format!("assemble/{n}"), || {
            let mut table = enrich(&model).unwrap();
            assemble(&mut table, &[Quantity::node_v("out")], 50e-9).unwrap()
        });
    }

    for n in SIZES {
        let source = rc_ladder(n);
        let module = vams_parser::parse_module(&source).unwrap();
        let mut model = Abstraction::new(&module).dt(50e-9).build().unwrap();
        microbench("scaling_generated_step", &format!("step/{n}"), || {
            model.step(&[1.0]);
            model.output(0)
        });
    }
}
