//! Complexity scaling of the methodology's steps (§IV: acquisition O(|B|),
//! enrichment O(|N|²)+O(|N|³)+O(|B|²), assemble/solve O(|N|³)) and of the
//! generated models, over RC ladders of growing depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use amsvp_core::acquire::acquire;
use amsvp_core::assemble::assemble;
use amsvp_core::circuits::rc_ladder;
use amsvp_core::enrich::enrich;
use amsvp_core::{Abstraction, Quantity};

const SIZES: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn pipeline_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_pipeline");
    group.sample_size(10);
    for n in SIZES {
        let source = rc_ladder(n);
        let module = vams_parser::parse_module(&source).unwrap();
        group.bench_function(BenchmarkId::new("acquire", n), |b| {
            b.iter(|| acquire(&module).unwrap());
        });
        let model = acquire(&module).unwrap();
        group.bench_function(BenchmarkId::new("enrich", n), |b| {
            b.iter(|| enrich(&model).unwrap());
        });
        group.bench_function(BenchmarkId::new("assemble", n), |b| {
            b.iter(|| {
                let mut table = enrich(&model).unwrap();
                assemble(&mut table, &[Quantity::node_v("out")], 50e-9).unwrap()
            });
        });
    }
    group.finish();
}

fn generated_model_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_generated_step");
    for n in SIZES {
        let source = rc_ladder(n);
        let module = vams_parser::parse_module(&source).unwrap();
        let mut model = Abstraction::new(&module).dt(50e-9).build().unwrap();
        group.bench_function(BenchmarkId::new("step", n), |b| {
            b.iter(|| {
                model.step(&[1.0]);
                model.output(0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, pipeline_steps, generated_model_step);
criterion_main!(benches);
