//! Table I / Table II — per-step simulation cost of each integration
//! level for each benchmark circuit, in isolation.
//!
//! The paper reports wall-clock times for 100 ms (Table I) and 10 s
//! (Table II) of simulated time; with a fixed 50 ns step, those are pure
//! multiples of the per-step costs measured here. The complete-run tables
//! (including NRMSE columns) are printed by `examples/table1.rs` and
//! `examples/table2.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use amsvp_bench::{abstracted_model, paper_circuits, Workload};
use amsvp_core::circuits::SquareWave;
use amsim::AmsSimulator;
use eln::{ElnSolver, Method};

fn per_step(c: &mut Criterion) {
    let wl = Workload::table1(1e-3);
    let stim = SquareWave::paper();
    let mut group = c.benchmark_group("table1_per_step");
    group.sample_size(20);

    for spec in paper_circuits() {
        // Verilog-AMS reference (interpreted Newton + LU per step).
        group.bench_function(BenchmarkId::new("verilog_ams", spec.label), |b| {
            let mut sim = AmsSimulator::new(&spec.module, wl.dt, &["V(out)"]).unwrap();
            let mut buf = vec![0.0; spec.inputs];
            let mut k = 0u64;
            b.iter(|| {
                let u = stim.value(k as f64 * wl.dt);
                buf.iter_mut().for_each(|v| *v = u);
                sim.step(&buf);
                k += 1;
                sim.output(0)
            });
        });

        // SystemC-AMS/ELN analogue: back-substitution solve per step.
        group.bench_function(BenchmarkId::new("eln", spec.label), |b| {
            let (net, sources, out) = &spec.eln;
            let mut solver = ElnSolver::new(net, wl.dt, Method::BackwardEuler).unwrap();
            let mut k = 0u64;
            b.iter(|| {
                let u = stim.value(k as f64 * wl.dt);
                for &s in sources {
                    solver.set_source(s, u);
                }
                solver.step();
                k += 1;
                solver.node_voltage(*out)
            });
        });

        // Abstracted model (the numerics behind the TDF/DE/C++ rows); the
        // kernel overheads of TDF and DE are measured in `ablation.rs`.
        group.bench_function(BenchmarkId::new("cpp", spec.label), |b| {
            let mut model = abstracted_model(&spec, &wl);
            let mut buf = vec![0.0; spec.inputs];
            let mut k = 0u64;
            b.iter(|| {
                let u = stim.value(k as f64 * wl.dt);
                buf.iter_mut().for_each(|v| *v = u);
                model.step(&buf);
                k += 1;
                model.output(0)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, per_step);
criterion_main!(benches);
