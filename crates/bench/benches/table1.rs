//! Table I / Table II — per-step simulation cost of each integration
//! level for each benchmark circuit, in isolation.
//!
//! The paper reports wall-clock times for 100 ms (Table I) and 10 s
//! (Table II) of simulated time; with a fixed 50 ns step, those are pure
//! multiples of the per-step costs measured here. The complete-run tables
//! (including NRMSE columns) are printed by `examples/table1.rs` and
//! `examples/table2.rs`.

use amsim::Simulation;
use amsvp_bench::{abstracted_model, microbench, paper_circuits, Workload};
use amsvp_core::circuits::SquareWave;
use eln::{Method, Transient};

fn main() {
    let wl = Workload::table1(1e-3);
    let stim = SquareWave::paper();

    for spec in paper_circuits() {
        // Verilog-AMS reference (compiled-VM Newton, LU reuse).
        {
            let mut sim = Simulation::new(&spec.module)
                .dt(wl.dt)
                .output("V(out)")
                .build()
                .unwrap();
            let mut buf = vec![0.0; spec.inputs];
            let mut k = 0u64;
            microbench(
                "table1_per_step",
                &format!("verilog_ams/{}", spec.label),
                || {
                    let u = stim.value(k as f64 * wl.dt);
                    buf.iter_mut().for_each(|v| *v = u);
                    sim.step(&buf);
                    k += 1;
                    sim.output(0)
                },
            );
        }

        // SystemC-AMS/ELN analogue: back-substitution solve per step.
        {
            let (net, sources, out) = &spec.eln;
            let mut solver = Transient::new(net)
                .dt(wl.dt)
                .method(Method::BackwardEuler)
                .build()
                .unwrap();
            let mut k = 0u64;
            microbench("table1_per_step", &format!("eln/{}", spec.label), || {
                let u = stim.value(k as f64 * wl.dt);
                for &s in sources {
                    solver.set_source(s, u);
                }
                solver.try_step().unwrap();
                k += 1;
                solver.node_voltage(*out)
            });
        }

        // Abstracted model (the numerics behind the TDF/DE/C++ rows); the
        // kernel overheads of TDF and DE are measured in `ablation.rs`.
        {
            let mut model = abstracted_model(&spec, &wl);
            let mut buf = vec![0.0; spec.inputs];
            let mut k = 0u64;
            microbench("table1_per_step", &format!("cpp/{}", spec.label), || {
                let u = stim.value(k as f64 * wl.dt);
                buf.iter_mut().for_each(|v| *v = u);
                model.step(&buf);
                k += 1;
                model.output(0)
            });
        }
    }
}
