//! Runtime of the abstraction tool itself (§V-A: "The abstraction tool
//! spent 7.67 s to process the most complex model, i.e., RC20").
//!
//! Benchmarks the complete pipeline — parse, acquire, enrich, assemble,
//! compile — per benchmark circuit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use amsvp_bench::paper_circuits;
use amsvp_core::Abstraction;

fn tool_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("abstraction_tool");
    group.sample_size(20);
    for spec in paper_circuits() {
        group.bench_function(BenchmarkId::new("full_pipeline", spec.label), |b| {
            b.iter(|| {
                let module = vams_parser::parse_module(&spec.source).unwrap();
                Abstraction::new(&module)
                    .dt(50e-9)
                    .output("V(out)")
                    .build()
                    .unwrap()
            });
        });
        group.bench_function(BenchmarkId::new("assembly_only", spec.label), |b| {
            b.iter(|| {
                Abstraction::new(&spec.module)
                    .dt(50e-9)
                    .output("V(out)")
                    .assembly()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, tool_runtime);
criterion_main!(benches);
