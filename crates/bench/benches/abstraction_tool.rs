//! Runtime of the abstraction tool itself (§V-A: "The abstraction tool
//! spent 7.67 s to process the most complex model, i.e., RC20").
//!
//! Benchmarks the complete pipeline — parse, acquire, enrich, assemble,
//! compile — per benchmark circuit.

use amsvp_bench::{microbench, paper_circuits};
use amsvp_core::Abstraction;

fn main() {
    for spec in paper_circuits() {
        microbench(
            "abstraction_tool",
            &format!("full_pipeline/{}", spec.label),
            || {
                let module = vams_parser::parse_module(&spec.source).unwrap();
                Abstraction::new(&module)
                    .dt(50e-9)
                    .output("V(out)")
                    .build()
                    .unwrap()
            },
        );
        microbench(
            "abstraction_tool",
            &format!("assembly_only/{}", spec.label),
            || {
                Abstraction::new(&spec.module)
                    .dt(50e-9)
                    .output("V(out)")
                    .assembly()
                    .unwrap()
            },
        );
    }
}
