//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//!
//! * MoC wrapper overhead: the same abstracted model stepped bare (the
//!   "C++" row), inside the TDF static schedule, and inside the DE kernel
//!   — isolating scheduler cost from numerics;
//! * ELN discretization method: backward Euler vs trapezoidal;
//! * implicit vs sequential (literal §IV-C) elaboration on RC1, the one
//!   circuit where both are stable;
//! * co-simulation synchronization: in-process stepping vs a full thread
//!   round trip per step;
//! * raw DE-kernel event throughput, with the default no-op collector and
//!   with a recording collector attached (the instrumentation ablation).

use amsim::cosim::CosimHandle;
use amsim::Simulation;
use amsvp_bench::{abstracted_model, microbench, paper_circuits, Workload};
use amsvp_core::circuits::{rc_ladder, SquareWave};
use amsvp_core::{Abstraction, SolveMode};
use de::{Kernel, ProcCtx, Process, SimTime};
use eln::{Method, Transient};
use obs::Obs;
use vp::{build_tdf_cluster, new_bridge, CompiledAnalog};

fn moc_wrapper_overhead() {
    let wl = Workload::table1(1e-3);
    let spec = &paper_circuits()[1]; // RC1
    let stim = SquareWave::paper();

    {
        let mut model = abstracted_model(spec, &wl);
        let mut k = 0u64;
        microbench("ablation_moc_overhead", "bare_model_step", || {
            model.step(&[stim.value(k as f64 * wl.dt)]);
            k += 1;
        });
    }

    {
        let bridge = new_bridge();
        let mut exec = build_tdf_cluster(abstracted_model(spec, &wl), bridge, stim).unwrap();
        microbench("ablation_moc_overhead", "tdf_cluster_step", || {
            exec.run_iteration()
        });
    }

    {
        let bridge = new_bridge();
        let mut k = Kernel::new();
        k.register(CompiledAnalog::new(
            abstracted_model(spec, &wl),
            bridge,
            stim,
        ));
        let step = SimTime::from_seconds(wl.dt);
        let mut t = SimTime::ZERO;
        microbench("ablation_moc_overhead", "de_kernel_step", || {
            t += step;
            k.run_until(t).unwrap();
        });
    }
}

fn eln_method() {
    let spec = &paper_circuits()[2]; // RC20 — biggest MNA system
    let stim = SquareWave::paper();
    for (name, method) in [
        ("backward_euler", Method::BackwardEuler),
        ("trapezoidal", Method::Trapezoidal),
    ] {
        let (net, sources, out) = &spec.eln;
        let mut solver = Transient::new(net)
            .dt(50e-9)
            .method(method)
            .build()
            .unwrap();
        let mut k = 0u64;
        microbench("ablation_eln_method", name, || {
            let u = stim.value(k as f64 * 50e-9);
            for &s in sources {
                solver.set_source(s, u);
            }
            solver.try_step().unwrap();
            k += 1;
            solver.node_voltage(*out)
        });
    }
}

fn solve_mode() {
    let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
    for (name, mode) in [
        ("implicit", SolveMode::Implicit),
        ("sequential", SolveMode::Sequential),
    ] {
        microbench("ablation_solve_mode", &format!("elaborate_{name}"), || {
            Abstraction::new(&module)
                .dt(50e-9)
                .mode(mode)
                .output("V(out)")
                .assembly()
                .unwrap()
        });
        let mut model = Abstraction::new(&module)
            .dt(50e-9)
            .mode(mode)
            .output("V(out)")
            .build()
            .unwrap();
        microbench("ablation_solve_mode", &format!("step_{name}"), || {
            model.step(&[1.0]);
            model.output(0)
        });
    }
}

fn cosim_sync() {
    let spec = &paper_circuits()[1]; // RC1
    {
        let mut sim = Simulation::new(&spec.module)
            .dt(50e-9)
            .output("V(out)")
            .build()
            .unwrap();
        microbench("ablation_cosim_sync", "in_process_step", || {
            sim.step(&[1.0]);
            sim.output(0)
        });
    }
    {
        let sim = Simulation::new(&spec.module)
            .dt(50e-9)
            .output("V(out)")
            .build()
            .unwrap();
        let mut handle = CosimHandle::spawn(sim, 1);
        microbench("ablation_cosim_sync", "cosim_round_trip_step", || {
            handle.step(&[1.0]).unwrap()
        });
    }
}

fn kernel_throughput() {
    struct Ticker {
        period: SimTime,
    }
    impl Process for Ticker {
        fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.notify_self_after(self.period);
        }
    }
    // The no-op collector is the default; the recording variant bounds the
    // instrumentation cost when a collector is actually attached.
    for (name, obs) in [
        ("event_dispatch", Obs::none()),
        ("event_dispatch_recording", Obs::recording()),
    ] {
        let mut k = Kernel::new();
        k.set_collector(obs);
        k.register(Ticker {
            period: SimTime::ns(10),
        });
        let mut t = SimTime::ZERO;
        microbench("ablation_kernel", name, || {
            t += SimTime::ns(10);
            k.run_until(t).unwrap();
        });
    }
}

fn main() {
    moc_wrapper_overhead();
    eln_method();
    solve_mode();
    cosim_sync();
    kernel_throughput();
}
