//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//!
//! * MoC wrapper overhead: the same abstracted model stepped bare (the
//!   "C++" row), inside the TDF static schedule, and inside the DE kernel
//!   — isolating scheduler cost from numerics;
//! * ELN discretization method: backward Euler vs trapezoidal;
//! * implicit vs sequential (literal §IV-C) elaboration on RC1, the one
//!   circuit where both are stable;
//! * co-simulation synchronization: in-process stepping vs a full thread
//!   round trip per step;
//! * raw DE-kernel event throughput.

use criterion::{criterion_group, criterion_main, Criterion};

use amsvp_bench::{abstracted_model, paper_circuits, Workload};
use amsvp_core::circuits::{rc_ladder, SquareWave};
use amsvp_core::{Abstraction, SolveMode};
use amsim::cosim::CosimHandle;
use amsim::AmsSimulator;
use de::{Kernel, ProcCtx, Process, SimTime};
use eln::{ElnSolver, Method};
use vp::{build_tdf_cluster, new_bridge, CompiledAnalog};

fn moc_wrapper_overhead(c: &mut Criterion) {
    let wl = Workload::table1(1e-3);
    let spec = &paper_circuits()[1]; // RC1
    let stim = SquareWave::paper();
    let mut group = c.benchmark_group("ablation_moc_overhead");
    group.sample_size(20);

    group.bench_function("bare_model_step", |b| {
        let mut model = abstracted_model(spec, &wl);
        let mut k = 0u64;
        b.iter(|| {
            model.step(&[stim.value(k as f64 * wl.dt)]);
            k += 1;
        });
    });

    group.bench_function("tdf_cluster_step", |b| {
        let bridge = new_bridge();
        let mut exec =
            build_tdf_cluster(abstracted_model(spec, &wl), bridge, stim).unwrap();
        b.iter(|| exec.run_iteration());
    });

    group.bench_function("de_kernel_step", |b| {
        let bridge = new_bridge();
        let mut k = Kernel::new();
        k.register(CompiledAnalog::new(abstracted_model(spec, &wl), bridge, stim));
        let step = SimTime::from_seconds(wl.dt);
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += step;
            k.run_until(t).unwrap();
        });
    });
    group.finish();
}

fn eln_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_eln_method");
    group.sample_size(20);
    let spec = &paper_circuits()[2]; // RC20 — biggest MNA system
    let stim = SquareWave::paper();
    for (name, method) in [
        ("backward_euler", Method::BackwardEuler),
        ("trapezoidal", Method::Trapezoidal),
    ] {
        group.bench_function(name, |b| {
            let (net, sources, out) = &spec.eln;
            let mut solver = ElnSolver::new(net, 50e-9, method).unwrap();
            let mut k = 0u64;
            b.iter(|| {
                let u = stim.value(k as f64 * 50e-9);
                for &s in sources {
                    solver.set_source(s, u);
                }
                solver.step();
                k += 1;
                solver.node_voltage(*out)
            });
        });
    }
    group.finish();
}

fn solve_mode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_solve_mode");
    group.sample_size(20);
    let module = vams_parser::parse_module(&rc_ladder(1)).unwrap();
    for (name, mode) in [
        ("implicit", SolveMode::Implicit),
        ("sequential", SolveMode::Sequential),
    ] {
        group.bench_function(format!("elaborate_{name}"), |b| {
            b.iter(|| {
                Abstraction::new(&module)
                    .dt(50e-9)
                    .mode(mode)
                    .output("V(out)")
                    .assembly()
                    .unwrap()
            });
        });
        group.bench_function(format!("step_{name}"), |b| {
            let mut model = Abstraction::new(&module)
                .dt(50e-9)
                .mode(mode)
                .output("V(out)")
                .build()
                .unwrap();
            b.iter(|| {
                model.step(&[1.0]);
                model.output(0)
            });
        });
    }
    group.finish();
}

fn cosim_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_cosim_sync");
    group.sample_size(20);
    let spec = &paper_circuits()[1]; // RC1
    group.bench_function("in_process_step", |b| {
        let mut sim = AmsSimulator::new(&spec.module, 50e-9, &["V(out)"]).unwrap();
        b.iter(|| {
            sim.step(&[1.0]);
            sim.output(0)
        });
    });
    group.bench_function("cosim_round_trip_step", |b| {
        let sim = AmsSimulator::new(&spec.module, 50e-9, &["V(out)"]).unwrap();
        let mut handle = CosimHandle::spawn(sim, 1);
        b.iter(|| handle.step(&[1.0]).unwrap());
    });
    group.finish();
}

fn kernel_throughput(c: &mut Criterion) {
    struct Ticker {
        period: SimTime,
    }
    impl Process for Ticker {
        fn activate(&mut self, ctx: &mut ProcCtx<'_>) {
            ctx.notify_self_after(self.period);
        }
    }
    let mut group = c.benchmark_group("ablation_kernel");
    group.sample_size(20);
    group.bench_function("event_dispatch", |b| {
        let mut k = Kernel::new();
        k.register(Ticker {
            period: SimTime::ns(10),
        });
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimTime::ns(10);
            k.run_until(t).unwrap();
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    moc_wrapper_overhead,
    eln_method,
    solve_mode,
    cosim_sync,
    kernel_throughput
);
criterion_main!(benches);
