//! Table III — whole virtual-platform runs with the analog component
//! integrated at each abstraction level.
//!
//! Each benchmark simulates the full smart system (MIPS CPU + bus + UART +
//! analog component) for a short simulated window; relative costs between
//! rows reproduce the shape of the paper's Table III. The printable
//! complete table lives in `examples/table3.rs`.

use amsim::cosim::CosimHandle;
use amsim::Simulation;
use amsvp_bench::{abstracted_model, microbench, paper_circuits, Workload};
use de::SimTime;
use eln::{Method, Transient};
use vp::{monitor_firmware, run_de_platform, run_fast_platform, AnalogIntegration, PlatformConfig};

/// Simulated window per iteration (50 ns analog step ⇒ 2 000 analog
/// steps and 5 000 CPU cycles).
const SIM: f64 = 100e-6;

fn main() {
    let wl = Workload::table1(SIM);

    for spec in paper_circuits() {
        let config = PlatformConfig::new(monitor_firmware());

        microbench(
            "table3_platform",
            &format!("cosim_vams/{}", spec.label),
            || {
                let sim = Simulation::new(&spec.module)
                    .dt(wl.dt)
                    .output("V(out)")
                    .build()
                    .unwrap();
                let handle = CosimHandle::spawn(sim, 1);
                run_de_platform(
                    AnalogIntegration::Cosim {
                        handle,
                        inputs: spec.inputs,
                        dt: wl.dt,
                    },
                    &config,
                    SimTime::from_seconds(SIM),
                )
            },
        );

        microbench("table3_platform", &format!("eln/{}", spec.label), || {
            let (net, sources, out) = &spec.eln;
            let solver = Transient::new(net)
                .dt(wl.dt)
                .method(Method::BackwardEuler)
                .build()
                .unwrap();
            run_de_platform(
                AnalogIntegration::Eln {
                    solver,
                    sources: sources.clone(),
                    output: *out,
                },
                &config,
                SimTime::from_seconds(SIM),
            )
        });

        microbench("table3_platform", &format!("tdf/{}", spec.label), || {
            run_de_platform(
                AnalogIntegration::Tdf(abstracted_model(&spec, &wl)),
                &config,
                SimTime::from_seconds(SIM),
            )
        });

        microbench("table3_platform", &format!("de/{}", spec.label), || {
            run_de_platform(
                AnalogIntegration::CompiledDe(abstracted_model(&spec, &wl)),
                &config,
                SimTime::from_seconds(SIM),
            )
        });

        microbench("table3_platform", &format!("cpp/{}", spec.label), || {
            run_fast_platform(abstracted_model(&spec, &wl), &config, SIM)
        });
    }
}
