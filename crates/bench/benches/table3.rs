//! Table III — whole virtual-platform runs with the analog component
//! integrated at each abstraction level.
//!
//! Each benchmark simulates the full smart system (MIPS CPU + bus + UART +
//! analog component) for a short simulated window; relative costs between
//! rows reproduce the shape of the paper's Table III. The printable
//! complete table lives in `examples/table3.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use amsvp_bench::{abstracted_model, paper_circuits, Workload};
use amsim::cosim::CosimHandle;
use amsim::AmsSimulator;
use de::SimTime;
use eln::{ElnSolver, Method};
use vp::{
    monitor_firmware, run_de_platform, run_fast_platform, AnalogIntegration,
    PlatformConfig,
};

/// Simulated window per iteration (50 ns analog step ⇒ 2 000 analog
/// steps and 5 000 CPU cycles).
const SIM: f64 = 100e-6;

fn platform(c: &mut Criterion) {
    let wl = Workload::table1(SIM);
    let mut group = c.benchmark_group("table3_platform");
    group.sample_size(10);

    for spec in paper_circuits() {
        let config = PlatformConfig::new(monitor_firmware());

        group.bench_function(BenchmarkId::new("cosim_vams", spec.label), |b| {
            b.iter(|| {
                let sim = AmsSimulator::new(&spec.module, wl.dt, &["V(out)"]).unwrap();
                let handle = CosimHandle::spawn(sim, 1);
                run_de_platform(
                    AnalogIntegration::Cosim {
                        handle,
                        inputs: spec.inputs,
                        dt: wl.dt,
                    },
                    &config,
                    SimTime::from_seconds(SIM),
                )
            });
        });

        group.bench_function(BenchmarkId::new("eln", spec.label), |b| {
            b.iter(|| {
                let (net, sources, out) = &spec.eln;
                let solver =
                    ElnSolver::new(net, wl.dt, Method::BackwardEuler).unwrap();
                run_de_platform(
                    AnalogIntegration::Eln {
                        solver,
                        sources: sources.clone(),
                        output: *out,
                    },
                    &config,
                    SimTime::from_seconds(SIM),
                )
            });
        });

        group.bench_function(BenchmarkId::new("tdf", spec.label), |b| {
            b.iter(|| {
                run_de_platform(
                    AnalogIntegration::Tdf(abstracted_model(&spec, &wl)),
                    &config,
                    SimTime::from_seconds(SIM),
                )
            });
        });

        group.bench_function(BenchmarkId::new("de", spec.label), |b| {
            b.iter(|| {
                run_de_platform(
                    AnalogIntegration::CompiledDe(abstracted_model(&spec, &wl)),
                    &config,
                    SimTime::from_seconds(SIM),
                )
            });
        });

        group.bench_function(BenchmarkId::new("cpp", spec.label), |b| {
            b.iter(|| run_fast_platform(abstracted_model(&spec, &wl), &config, SIM));
        });
    }
    group.finish();
}

criterion_group!(benches, platform);
criterion_main!(benches);
